# Convenience targets mirroring the CI workflow (.github/workflows/ci.yml)

.PHONY: test lint bench

test:
	PYTHONPATH=src python -m pytest -x -q

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed — skipping lint (CI runs it)"; \
	fi

bench:
	PYTHONPATH=src python -m pytest benchmarks --benchmark-only -s
