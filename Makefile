# Convenience targets mirroring the CI workflow (.github/workflows/ci.yml)

.PHONY: test lint lint-analysis sanitize docs-check doc-links profile \
	bench chaos retrieval-fuzz serve serve-smoke snapshot-smoke \
	store-torture

test:
	PYTHONPATH=src python -m pytest -x -q

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed — skipping lint (CI runs it)"; \
	fi

# the in-repo static-analysis gates: the repo-invariant linter
# (RP001-RP011, including the cross-module lock-order rules), the
# query-graph validator sweep over MVQA, and mypy (when installed —
# CI always runs it)
lint-analysis:
	PYTHONPATH=src python -m repro lint-code
	PYTHONPATH=src python -m repro lint-queries --fast
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro; \
	else \
		echo "mypy not installed — skipping type check (CI runs it)"; \
	fi

# deterministic runtime lock/race sanitizer sweep: run the pipeline
# with every lock instrumented and fail on any inversion or race
sanitize:
	PYTHONPATH=src python -m repro sanitize

# docstring coverage gate on the documented packages (ruff pydocstyle
# D rules, scoped — the rest of the tree is exempt)
docs-check:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check --select D100,D101,D102,D103,D104,D105,D419 \
			src/repro/core src/repro/observability \
			src/repro/graph src/repro/serve src/repro/resilience; \
	else \
		echo "ruff not installed — skipping docs check (CI runs it)"; \
	fi

# every relative markdown link and path/to/file.py:line reference in
# the documentation tier must resolve against the working tree
doc-links:
	python scripts/check_doc_links.py

# deterministic per-stage profile of the fast MVQA suite; writes the
# artifacts the CI observability job byte-diffs
profile:
	PYTHONPATH=src python -m repro profile --fast \
		--snapshot metrics_snapshot.json --spans spans.jsonl \
		--baseline BENCH_baseline.json

bench:
	PYTHONPATH=src python -m pytest benchmarks --benchmark-only -s

# seeded fault-injection sweep over MVQA: accuracy must decay
# gracefully (no unhandled exception, every degraded answer attributed)
chaos:
	PYTHONPATH=src python -m repro chaos --fast

# extensional-equivalence fuzz of the retrieval tier: the ANN index
# must equal the linear rank_scores/max_score scans outright, and the
# BM25 fallback must keep its normalized confidence in [0, 1]
retrieval-fuzz:
	PYTHONPATH=src python -m pytest -x -q tests/nlp/test_ann.py \
		tests/nlp/test_embed_cache.py tests/retrieval \
		tests/core/test_executor_retrieval.py

# long-lived QA server over the movie scenario (POST /ask,
# GET /healthz, GET /metrics)
serve:
	PYTHONPATH=src python -m repro serve

# boot a real server on an ephemeral port and exercise all three
# endpoints over HTTP (the CI serve-smoke job runs the same script)
serve-smoke:
	python scripts/serve_smoke.py

# write a snapshot, boot a cold and a warm server, and byte-diff the
# /ask and /metrics transcripts (warm start must be indistinguishable)
snapshot-smoke:
	python scripts/snapshot_smoke.py

# exhaustive crash-torture sweep: damage every snapshot/WAL byte
# boundary and assert recovery never yields a silent partial load
store-torture:
	PYTHONPATH=src python -m repro store-torture --seed 0
