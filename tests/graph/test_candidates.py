"""Unit and equivalence tests for the VertexCandidateIndex.

The index must return exactly the label set (and order) of the old
linear ``_labels_match`` scan — the equivalence classes at the bottom
fuzz that contract over the MVQA vocabulary and randomly mutated
synthetic graphs.
"""

import random

import pytest

from repro.core import SVQA, SVQAConfig
from repro.core.aggregator import MergeStats
from repro.core.executor import MergedGraph, QueryGraphExecutor, _is_category
from repro.dataset.mvqa import build_mvqa
from repro.graph import Graph, VertexCandidateIndex
from repro.graph.candidates import (
    label_bigrams,
    length_compatible,
    max_edit_distance,
    occurrence_keys,
)
from repro.nlp.dword import within_distance

THRESHOLD = 0.34


def make_index(*labels):
    index = VertexCandidateIndex()
    for label in labels:
        index.add_label(label)
    return index


def ordered_labels(index):
    """Every indexed label in graph insertion order (the order the old
    linear scan compared them in)."""
    return sorted(index._refs, key=index._order.__getitem__)


@pytest.fixture(scope="module")
def reference():
    """An executor over an empty graph — only its ``_labels_match``
    reference predicate (and default config) is used."""
    graph = Graph(name="empty")
    stats = MergeStats({}, [], 0.0, 0.0, 0, 0, 0)
    return QueryGraphExecutor(
        MergedGraph(graph=graph, stats=stats, instance_ids=[])
    )


def assert_scan_equivalent(index, executor, queries):
    """The index must accept exactly the labels ``_labels_match``
    accepts, in the same order."""
    base = ordered_labels(index)
    threshold = executor.config.ld_threshold
    for query in queries:
        match = index.match(query, threshold,
                            include_synonyms=not _is_category(query))
        expected = tuple(
            candidate for candidate in base
            if executor._labels_match(query, candidate)
        )
        assert match.labels == expected, (
            f"query {query!r}: index {match.labels} != scan {expected}"
        )
        assert match.total == len(base)


class TestPruningHelpers:
    def test_bigrams(self):
        assert label_bigrams("dog") == {"do", "og"}
        assert label_bigrams("a") == set()

    def test_occurrence_keys_count_duplicates(self):
        assert occurrence_keys("moo") == [("m", 0), ("o", 0), ("o", 1)]

    def test_length_compatible_matches_distance_floor(self):
        # the minimal normalized distance between lengths a and b is
        # |a-b|/max(a,b); the filter must agree with within_distance on
        # the best case (identical prefix, pure insertion suffix)
        for a in range(5, 12):
            for b in range(5, 12):
                best = "x" * min(a, b)
                padded = "x" * max(a, b)
                assert length_compatible(a, b, THRESHOLD) == \
                    within_distance(best, padded, THRESHOLD)

    def test_max_edit_distance_is_exact(self):
        # d_max must be the largest d with 2d/(a+b+d) < t, under the
        # exact float expression within_distance evaluates
        for a in range(5, 12):
            for b in range(5, 12):
                d_max = max_edit_distance(a, b, THRESHOLD)
                total = a + b
                assert (2.0 * d_max) / (total + d_max) < THRESHOLD
                d_next = d_max + 1
                assert (2.0 * d_next) / (total + d_next) >= THRESHOLD


class TestBuckets:
    def test_exact_case_insensitive(self):
        index = make_index("Dog", "cat")
        assert index.match("dog", THRESHOLD).labels == ("Dog",)

    def test_number_normalized(self):
        index = make_index("dog", "cat")
        assert index.match("dogs", THRESHOLD).labels == ("dog",)

    def test_synonym_cluster(self):
        index = make_index("dog", "cat")
        assert "dog" in index.match("puppy", THRESHOLD).labels

    def test_category_query_skips_synonyms(self):
        index = make_index("dog", "cat")
        match = index.match("puppy", THRESHOLD, include_synonyms=False)
        assert match.labels == ()

    def test_levenshtein_fallback(self):
        index = make_index("glasses", "clothes")
        assert index.match("glases", THRESHOLD).labels == ("glasses",)

    def test_short_words_never_fuzzy(self):
        index = make_index("car", "cart")
        assert index.match("cat", THRESHOLD).labels == ()


class TestRefcounting:
    def test_duplicate_labels_survive_one_removal(self):
        index = make_index("dog", "dog")
        assert index.count("dog") == 2
        index.remove_label("dog")
        assert "dog" in index
        assert index.match("dog", THRESHOLD).labels == ("dog",)
        index.remove_label("dog")
        assert "dog" not in index
        assert len(index) == 0
        assert index.match("dog", THRESHOLD).labels == ()

    def test_remove_unknown_label_raises(self):
        index = make_index("dog")
        with pytest.raises(KeyError):
            index.remove_label("cat")

    def test_readded_label_moves_to_end_of_order(self):
        index = make_index("glasses", "classes")
        index.remove_label("glasses")
        index.add_label("glasses")
        # re-insertion order mirrors the vertex store: last added, last
        # scanned
        assert index.match("glases", THRESHOLD).labels == \
            ("classes", "glasses")


class TestAccounting:
    def test_examined_counts_bucket_entries(self):
        index = make_index("dog", "dog", "cat")
        match = index.match("dog", THRESHOLD)
        # "dog" sits in both the exact and singular buckets; distinct
        # labels, not vertices, are what the lookup examines
        assert match.labels == ("dog",)
        assert match.examined >= 1
        assert match.total == 2

    def test_pruning_skips_most_of_a_large_index(self):
        index = make_index(*(f"filler{i:04d}" for i in range(200)),
                           "glasses")
        match = index.match("glases", THRESHOLD)
        assert match.labels == ("glasses",)
        assert match.total == 201
        assert match.examined < 20
        assert match.pruned > 180


class TestGraphMaintenance:
    def test_add_vertex_indexes_label(self):
        graph = Graph(name="g")
        graph.add_vertex("dog", {})
        assert "dog" in graph.candidate_index

    def test_remove_vertex_unindexes_last_copy(self):
        graph = Graph(name="g")
        a = graph.add_vertex("dog", {})
        graph.add_vertex("dog", {})
        graph.remove_vertex(a.id)
        assert graph.candidate_index.count("dog") == 1

    def test_relabel_vertex_moves_label(self):
        graph = Graph(name="g")
        v = graph.add_vertex("dog", {})
        graph.relabel_vertex(v.id, "cat")
        assert "dog" not in graph.candidate_index
        assert "cat" in graph.candidate_index

    def test_every_mutator_bumps_the_epoch(self):
        graph = Graph(name="g")
        seen = [graph.epoch]

        def bumped():
            seen.append(graph.epoch)
            assert seen[-1] > seen[-2]

        a = graph.add_vertex("dog", {})
        bumped()
        b = graph.add_vertex("cat", {})
        bumped()
        edge = graph.add_edge(a.id, b.id, "near")
        bumped()
        graph.remove_edge(edge.id)
        bumped()
        graph.relabel_vertex(b.id, "sofa")
        bumped()
        graph.remove_vertex(b.id)
        bumped()


#: labels/queries rich in plurals, synonym-cluster members, and
#: length >= 5 near-misses that exercise the Levenshtein buckets
FUZZ_VOCAB = [
    "dog", "dogs", "puppy", "hound", "cat", "kitten", "feline",
    "person", "woman", "girl", "glasses", "glases", "classes",
    "clothes", "clothing", "vehicle", "vehicles", "vehicel", "grass",
    "grasses", "dress", "fence", "horse", "house", "mouse", "table",
    "cable", "stable", "apple", "apples", "banana", "robe", "rope",
    "coat", "goat", "Neville Longbottom",
]
FUZZ_QUERIES = FUZZ_VOCAB + [
    "dogg", "cattle", "glas", "vehicl", "persons", "women", "housee",
    "tables", "grase", "animal", "animals", "pet",
]


class TestScanEquivalence:
    """The index-backed matcher is extensionally equal to the linear
    ``_labels_match`` scan — the contract the executor relies on."""

    def test_mvqa_vocabulary(self, reference):
        dataset = build_mvqa(seed=7, pool_size=1_200, image_count=400)
        svqa = SVQA(dataset.scenes, dataset.kg, SVQAConfig(workers=1))
        svqa.build()
        index = svqa.merged.graph.candidate_index
        words = sorted({
            word.strip("?,.'\"").lower()
            for question in dataset.questions
            for word in question.text.split()
            if word.strip("?,.'\"")
        })
        assert len(words) > 50
        assert_scan_equivalent(index, reference, words)

    def test_interleaved_mutations(self, reference):
        rng = random.Random(1234)
        for round_index in range(6):
            graph = Graph(name=f"fuzz-{round_index}")
            live = []
            for step in range(60):
                op = rng.random()
                if op < 0.55 or not live:
                    vertex = graph.add_vertex(rng.choice(FUZZ_VOCAB), {})
                    live.append(vertex.id)
                elif op < 0.8:
                    graph.remove_vertex(
                        live.pop(rng.randrange(len(live)))
                    )
                else:
                    graph.relabel_vertex(rng.choice(live),
                                         rng.choice(FUZZ_VOCAB))
                if step % 10 == 9:
                    assert_scan_equivalent(
                        graph.candidate_index, reference, FUZZ_QUERIES
                    )
