"""Unit tests for the core graph model."""

import pytest

from repro.errors import (
    DuplicateVertexError,
    EdgeNotFoundError,
    VertexNotFoundError,
)
from repro.graph import Graph


@pytest.fixture
def triangle():
    """a -> b -> c -> a with distinct labels."""
    g = Graph(name="triangle")
    a = g.add_vertex("a")
    b = g.add_vertex("b")
    c = g.add_vertex("c")
    g.add_edge(a.id, b.id, "ab")
    g.add_edge(b.id, c.id, "bc")
    g.add_edge(c.id, a.id, "ca")
    return g, a, b, c


class TestVertices:
    def test_add_vertex_assigns_dense_ids(self):
        g = Graph()
        ids = [g.add_vertex(f"v{i}").id for i in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_vertex_lookup(self):
        g = Graph()
        v = g.add_vertex("dog", {"image_id": 7})
        got = g.vertex(v.id)
        assert got.label == "dog"
        assert got.props == {"image_id": 7}

    def test_vertex_lookup_missing_raises(self):
        g = Graph()
        with pytest.raises(VertexNotFoundError):
            g.vertex(99)

    def test_explicit_vertex_id(self):
        g = Graph()
        v = g.add_vertex("x", vertex_id=10)
        assert v.id == 10
        # next auto id continues past the explicit one
        assert g.add_vertex("y").id == 11

    def test_duplicate_vertex_id_raises(self):
        g = Graph()
        g.add_vertex("x", vertex_id=3)
        with pytest.raises(DuplicateVertexError):
            g.add_vertex("y", vertex_id=3)

    def test_props_are_copied(self):
        g = Graph()
        props = {"k": 1}
        v = g.add_vertex("x", props)
        props["k"] = 2
        assert v.props["k"] == 1

    def test_contains(self):
        g = Graph()
        v = g.add_vertex("x")
        assert v.id in g
        assert 999 not in g

    def test_relabel_updates_index(self):
        g = Graph()
        v = g.add_vertex("old")
        g.relabel_vertex(v.id, "new")
        assert [u.id for u in g.find_vertices("new")] == [v.id]
        assert g.find_vertices("old") == []

    def test_remove_vertex_removes_incident_edges(self, triangle):
        g, a, b, c = triangle
        g.remove_vertex(b.id)
        assert g.vertex_count == 2
        assert g.edge_count == 1  # only c -> a survives
        labels = [e.label for e in g.edges()]
        assert labels == ["ca"]

    def test_remove_missing_vertex_raises(self):
        g = Graph()
        with pytest.raises(VertexNotFoundError):
            g.remove_vertex(0)


class TestEdges:
    def test_add_edge_requires_endpoints(self):
        g = Graph()
        v = g.add_vertex("x")
        with pytest.raises(VertexNotFoundError):
            g.add_edge(v.id, 42, "r")
        with pytest.raises(VertexNotFoundError):
            g.add_edge(42, v.id, "r")

    def test_multigraph_allows_parallel_edges(self):
        g = Graph()
        a = g.add_vertex("dog")
        b = g.add_vertex("man")
        g.add_edge(a.id, b.id, "near")
        g.add_edge(a.id, b.id, "in front of")
        assert len(g.edges_between(a.id, b.id)) == 2

    def test_self_loop(self):
        g = Graph()
        a = g.add_vertex("x")
        g.add_edge(a.id, a.id, "self")
        assert g.out_degree(a.id) == 1
        assert g.in_degree(a.id) == 1

    def test_remove_edge(self, triangle):
        g, a, b, c = triangle
        edge = g.edges_between(a.id, b.id)[0]
        g.remove_edge(edge.id)
        assert g.edges_between(a.id, b.id) == []
        assert g.edge_count == 2

    def test_remove_missing_edge_raises(self):
        g = Graph()
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(0)

    def test_edge_lookup(self, triangle):
        g, a, b, _ = triangle
        edge = g.edges_between(a.id, b.id)[0]
        assert g.edge(edge.id).label == "ab"


class TestAdjacency:
    def test_successors_predecessors(self, triangle):
        g, a, b, c = triangle
        assert [v.id for v in g.successors(a.id)] == [b.id]
        assert [v.id for v in g.predecessors(a.id)] == [c.id]

    def test_neighbors_dedup(self):
        g = Graph()
        a = g.add_vertex("a")
        b = g.add_vertex("b")
        g.add_edge(a.id, b.id, "x")
        g.add_edge(b.id, a.id, "y")
        assert [v.id for v in g.neighbors(a.id)] == [b.id]

    def test_degrees(self, triangle):
        g, a, _, _ = triangle
        assert g.out_degree(a.id) == 1
        assert g.in_degree(a.id) == 1

    def test_degree_of_missing_vertex_raises(self):
        g = Graph()
        with pytest.raises(VertexNotFoundError):
            g.out_degree(0)


class TestLabelIndex:
    def test_find_vertices_by_label(self):
        g = Graph()
        ids = [g.add_vertex("dog").id for _ in range(3)]
        g.add_vertex("cat")
        assert [v.id for v in g.find_vertices("dog")] == ids

    def test_find_edges_by_label(self, triangle):
        g, a, b, _ = triangle
        assert len(g.find_edges("ab")) == 1
        assert g.find_edges("nope") == []

    def test_label_counts(self):
        g = Graph()
        for _ in range(4):
            g.add_vertex("dog")
        g.add_vertex("cat")
        counts = g.vertex_labels.counts()
        assert counts == {"dog": 4, "cat": 1}

    def test_index_updated_on_removal(self):
        g = Graph()
        v = g.add_vertex("dog")
        g.remove_vertex(v.id)
        assert g.find_vertices("dog") == []

    def test_repr(self, triangle):
        g, *_ = triangle
        assert "vertices=3" in repr(g)
        assert "edges=3" in repr(g)
