"""DurableStore: WAL round trips, damage handling, guard degradation.

The invariant under test everywhere: recovery yields a graph
extensionally equal to some durable prefix of the mutation history,
or an attributed rebuild verdict — never a silent partial load.  The
exhaustive damage sweep lives in :mod:`repro.graph.torture`; these
are the targeted unit cases plus the fault-injection seams.
"""

import pytest

from repro.errors import FaultToleranceError
from repro.graph import (
    DurableStore,
    Graph,
    extensional_digest,
    graphs_equal,
    read_snapshot,
)
from repro.resilience import ResilienceConfig, ResilienceManager
from repro.resilience.faults import FaultSpec


def build_base() -> Graph:
    g = Graph(name="base")
    a = g.add_vertex("dog", {"image_id": 1})
    b = g.add_vertex("man")
    c = g.add_vertex("tree")
    g.add_edge(a.id, b.id, "near")
    g.add_edge(b.id, c.id, "under", {"score": 0.5})
    return g


def mutate(g: Graph) -> None:
    d = g.add_vertex("cat", {"note": "café"})
    g.add_edge(d.id, 0, "chases")
    g.relabel_vertex(1, "woman")
    g.remove_edge(1)
    g.remove_vertex(0)  # cascades through remaining incident edges


def manager_with(site: str, rate: float = 1.0) -> ResilienceManager:
    return ResilienceManager(ResilienceConfig(
        seed=0,
        fault_specs={site: FaultSpec(rate=rate,
                                     persistent_fraction=1.0)},
    ))


class TestWalRoundTrip:
    def test_recover_replays_to_the_live_state(self, tmp_path):
        g = build_base()
        store = DurableStore(tmp_path)
        store.snapshot(g)
        store.attach(g)
        mutate(g)
        store.close()
        result = DurableStore(tmp_path).recover()
        assert result.report.source == "snapshot"
        assert result.report.wal_records_replayed > 0
        assert graphs_equal(result.graph, g)
        assert result.graph.epoch == g.epoch

    def test_snapshot_rotates_the_wal(self, tmp_path):
        g = build_base()
        store = DurableStore(tmp_path)
        store.snapshot(g)
        store.attach(g)
        mutate(g)
        store.snapshot(g)  # WAL resets to a begin record
        store.close()
        result = DurableStore(tmp_path).recover()
        assert result.report.wal_records_replayed == 0
        assert graphs_equal(result.graph, g)

    def test_merged_meta_round_trips(self, tmp_path):
        g = build_base()
        meta = {"instance_ids": [0, 1], "skipped_images": [7]}
        store = DurableStore(tmp_path)
        store.snapshot(g, merged_meta=meta)
        store.close()
        assert DurableStore(tmp_path).recover().merged_meta == meta


class TestDamage:
    def history(self, tmp_path):
        g = build_base()
        store = DurableStore(tmp_path)
        store.snapshot(g)
        base_epoch = g.epoch
        store.attach(g)
        mutate(g)
        store.close()
        return g, base_epoch

    def test_torn_tail_truncates_to_the_good_prefix(self, tmp_path):
        g, base_epoch = self.history(tmp_path)
        wal = tmp_path / DurableStore.WAL_NAME
        raw = wal.read_bytes()
        wal.write_bytes(raw[:-5])
        store = DurableStore(tmp_path)
        result = store.recover()
        assert result.report.source == "snapshot"
        assert result.report.quarantined[0]["reason"] == "torn-record"
        assert result.graph.epoch == g.epoch - 1
        # the torn tail was rewritten away: a second recovery is clean
        second = DurableStore(tmp_path).recover()
        assert not second.report.quarantined
        assert graphs_equal(second.graph, result.graph)

    def test_stale_wal_is_quarantined(self, tmp_path):
        g, base_epoch = self.history(tmp_path)
        wal = tmp_path / DurableStore.WAL_NAME
        lines = wal.read_bytes().split(b"\n")
        from repro.graph.store import frame_record

        lines[0] = frame_record({
            "op": "begin", "snapshot_digest": "0" * 32,
            "epoch": base_epoch}).rstrip(b"\n")
        wal.write_bytes(b"\n".join(lines))
        result = DurableStore(tmp_path).recover()
        assert result.report.source == "snapshot"
        assert result.report.epoch == base_epoch
        assert result.report.quarantined[0]["reason"] == "stale-wal"
        assert result.report.wal_records_replayed == 0

    def test_orphaned_wal_forces_attributed_rebuild(self, tmp_path):
        self.history(tmp_path)
        (tmp_path / DurableStore.SNAPSHOT_NAME).unlink()
        result = DurableStore(tmp_path).recover()
        assert result.graph is None
        assert result.report.source == "rebuild"
        assert result.report.quarantined[0]["reason"] == "orphaned-wal"
        assert (tmp_path / DurableStore.QUARANTINE_DIR
                / DurableStore.WAL_NAME).exists()

    def test_quarantined_record_is_preserved_on_disk(self, tmp_path):
        self.history(tmp_path)
        wal = tmp_path / DurableStore.WAL_NAME
        raw = wal.read_bytes()
        cut = raw.rstrip(b"\n").rfind(b"\n") + 1
        pos = cut + (len(raw) - cut) // 2
        damaged = raw[:pos] + b"#" + raw[pos + 1:]
        wal.write_bytes(damaged)
        result = DurableStore(tmp_path).recover()
        lineno = result.report.quarantined[0]["lineno"]
        rec = tmp_path / DurableStore.QUARANTINE_DIR \
            / f"wal-{lineno:06d}.rec"
        assert rec.exists()
        assert rec.read_bytes() == damaged[cut:]


class TestGuards:
    def test_wal_append_exhaustion_degrades_to_memory_only(
            self, tmp_path):
        g = build_base()
        store = DurableStore(tmp_path,
                             resilience=manager_with("store.wal_append"))
        store.snapshot(g)
        base_epoch = g.epoch
        store.attach(g)
        mutate(g)
        assert not store.wal_healthy
        store.close()
        # the durable prefix is exactly the snapshot: no partial WAL
        result = DurableStore(tmp_path).recover()
        assert result.report.epoch == base_epoch
        assert result.report.wal_records_replayed == 0

    def test_snapshot_exhaustion_keeps_the_previous_pair(self, tmp_path):
        g = build_base()
        store = DurableStore(tmp_path)
        store.snapshot(g)
        before = (tmp_path / DurableStore.SNAPSHOT_NAME).read_bytes()
        store.close()
        g.add_vertex("more")
        faulty = DurableStore(tmp_path,
                              resilience=manager_with("store.snapshot"))
        with pytest.raises(FaultToleranceError):
            faulty.snapshot(g)
        faulty.close()
        assert (tmp_path / DurableStore.SNAPSHOT_NAME).read_bytes() \
            == before

    def test_recover_exhaustion_degrades_to_rebuild(self, tmp_path):
        g = build_base()
        store = DurableStore(tmp_path)
        store.snapshot(g)
        store.close()
        result = DurableStore(
            tmp_path,
            resilience=manager_with("store.recover")).recover()
        assert result.graph is None
        assert result.report.source == "rebuild"
        assert result.report.notes

    def test_healthy_snapshot_resets_wal_degradation(self, tmp_path):
        g = build_base()
        store = DurableStore(tmp_path,
                             resilience=manager_with("store.wal_append"))
        store.snapshot(g)
        store.attach(g)
        g.add_vertex("dropped")
        assert not store.wal_healthy
        store.snapshot(g)
        assert store.wal_healthy
        store.close()
        result = DurableStore(tmp_path).recover()
        assert graphs_equal(result.graph, g)


class TestMetricsIsolation:
    def test_store_metrics_live_on_a_private_registry(self, tmp_path):
        g = build_base()
        store = DurableStore(tmp_path)
        store.snapshot(g)
        store.close()
        assert "svqa_store_snapshots_total" in \
            store.metrics.to_prometheus()
        from repro.core.stats import ExecutorStats

        assert "svqa_store_snapshots_total" not in \
            ExecutorStats().registry.to_prometheus()

    def test_extensional_digest_matches_snapshot_read(self, tmp_path):
        g = build_base()
        store = DurableStore(tmp_path)
        store.snapshot(g)
        store.close()
        loaded = read_snapshot(tmp_path / DurableStore.SNAPSHOT_NAME)
        assert extensional_digest(loaded.graph) == extensional_digest(g)
