"""The crash-torture harness itself: full sweep + determinism gate."""

from repro.graph.torture import run_torture


class TestTortureSweep:
    def test_every_damage_point_recovers_safely(self, tmp_path):
        report = run_torture(seed=0, root=tmp_path)
        assert report.passed, "\n".join(report.failures)
        assert report.final_epoch > report.base_epoch
        kinds = {case.kind for case in report.cases}
        assert kinds == {
            "snapshot-truncate-boundary", "snapshot-truncate-mid",
            "snapshot-corrupt", "wal-truncate-boundary",
            "wal-truncate-mid", "wal-corrupt",
        }
        # snapshot damage always degrades to an attributed rebuild;
        # WAL damage always recovers a durable prefix
        for case in report.cases:
            expected = "rebuild" if case.kind.startswith("snapshot") \
                else "prefix"
            assert case.outcome == expected, case

    def test_same_seed_reports_are_identical(self, tmp_path):
        first = run_torture(seed=1, root=tmp_path / "a")
        second = run_torture(seed=1, root=tmp_path / "b")
        assert first.to_json() == second.to_json()
        assert first.render() == second.render()
        assert first.passed
