"""Unit tests for graph persistence and statistics."""

import json

import pytest

from repro.errors import StoreError
from repro.graph import Graph, graph_stats, load_graph, save_graph


@pytest.fixture
def sample():
    g = Graph(name="sample")
    a = g.add_vertex("dog", {"image_id": 1})
    b = g.add_vertex("man")
    g.add_vertex("dog")
    g.add_edge(a.id, b.id, "in front of", {"score": 0.9})
    return g


class TestRoundTrip:
    def test_round_trip_preserves_everything(self, sample, tmp_path):
        path = tmp_path / "g.jsonl"
        save_graph(sample, path)
        loaded = load_graph(path)
        assert loaded.name == "sample"
        assert loaded.vertex_count == sample.vertex_count
        assert loaded.edge_count == sample.edge_count
        assert loaded.vertex(0).props == {"image_id": 1}
        edge = next(iter(loaded.edges()))
        assert edge.label == "in front of"
        assert edge.props == {"score": 0.9}

    def test_round_trip_preserves_label_index(self, sample, tmp_path):
        path = tmp_path / "g.jsonl"
        save_graph(sample, path)
        loaded = load_graph(path)
        assert len(loaded.find_vertices("dog")) == 2

    def test_empty_graph_round_trip(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        save_graph(Graph(name="e"), path)
        loaded = load_graph(path)
        assert loaded.vertex_count == 0
        assert loaded.name == "e"


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StoreError):
            load_graph(tmp_path / "nope.jsonl")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "z.jsonl"
        path.write_text("")
        with pytest.raises(StoreError):
            load_graph(path)

    def test_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(StoreError):
            load_graph(path)

    def test_missing_header(self, tmp_path):
        path = tmp_path / "noheader.jsonl"
        path.write_text(json.dumps({"type": "vertex", "id": 0, "label": "x"}) + "\n")
        with pytest.raises(StoreError):
            load_graph(path)

    def test_bad_version(self, tmp_path):
        path = tmp_path / "v9.jsonl"
        path.write_text(json.dumps({"type": "header", "version": 9}) + "\n")
        with pytest.raises(StoreError):
            load_graph(path)

    def test_unknown_record_type(self, tmp_path):
        path = tmp_path / "weird.jsonl"
        lines = [
            json.dumps({"type": "header", "version": 1, "name": "x"}),
            json.dumps({"type": "mystery"}),
        ]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(StoreError):
            load_graph(path)


class TestAttributedErrors:
    def test_missing_header_carries_lineno(self, tmp_path):
        path = tmp_path / "noheader.jsonl"
        path.write_text(
            json.dumps({"type": "vertex", "id": 0, "label": "x"}) + "\n")
        with pytest.raises(StoreError) as err:
            load_graph(path)
        assert err.value.reason == "missing-header"
        assert err.value.lineno == 1
        assert str(path) in str(err.value)

    def test_duplicate_header_is_rejected(self, tmp_path):
        path = tmp_path / "dup.jsonl"
        header = json.dumps({"type": "header", "version": 1, "name": "x"})
        path.write_text(header + "\n" + header + "\n")
        with pytest.raises(StoreError) as err:
            load_graph(path)
        assert err.value.reason == "duplicate-header"
        assert err.value.lineno == 2

    def test_unknown_version_is_attributed(self, tmp_path):
        path = tmp_path / "v9.jsonl"
        path.write_text(
            json.dumps({"type": "header", "version": 9, "name": "x"})
            + "\n")
        with pytest.raises(StoreError) as err:
            load_graph(path)
        assert err.value.reason == "bad-version"
        assert err.value.lineno == 1

    def test_bad_json_carries_lineno(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"type": "header", "version": 1, "name": "x"})
            + "\n{not json\n")
        with pytest.raises(StoreError) as err:
            load_graph(path)
        assert err.value.reason == "bad-json"
        assert err.value.lineno == 2


class TestAtomicSave:
    def test_no_temp_file_left_behind(self, sample, tmp_path):
        path = tmp_path / "g.jsonl"
        save_graph(sample, path)
        leftovers = [p for p in tmp_path.iterdir() if p != path]
        assert leftovers == []

    def test_crashed_rewrite_keeps_the_old_file(self, sample, tmp_path,
                                                monkeypatch):
        path = tmp_path / "g.jsonl"
        save_graph(sample, path)
        before = path.read_bytes()

        import os as _os

        def crash(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(_os, "replace", crash)
        bigger = Graph(name="bigger")
        bigger.add_vertex("x")
        with pytest.raises(StoreError) as err:
            save_graph(bigger, path)
        assert err.value.reason == "unwritable"
        monkeypatch.undo()
        assert path.read_bytes() == before
        assert load_graph(path).name == "sample"


# -- property-based round trips (gnarly props) ------------------------

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the image
    HAVE_HYPOTHESIS = False

if HAVE_HYPOTHESIS:
    json_scalars = st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**53), max_value=2**53),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=20),  # includes "", unicode, surrogates-free
    )
    json_values = st.recursive(
        json_scalars,
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.text(max_size=8), children, max_size=4),
        ),
        max_leaves=12,
    )
    props = st.dictionaries(st.text(max_size=10), json_values,
                            max_size=4)
    labels = st.text(min_size=1, max_size=20)

    @pytest.mark.skipif(not HAVE_HYPOTHESIS,
                        reason="hypothesis not installed")
    class TestPropertyRoundTrip:
        @settings(max_examples=50, deadline=None)
        @given(records=st.lists(st.tuples(labels, props), min_size=1,
                                max_size=6),
               edge_props=props, edge_label=labels)
        def test_gnarly_props_round_trip(self, tmp_path_factory,
                                         records, edge_props,
                                         edge_label):
            g = Graph(name="prop")
            ids = [g.add_vertex(label, p).id for label, p in records]
            if len(ids) >= 2:
                g.add_edge(ids[0], ids[1], edge_label, edge_props)
            path = tmp_path_factory.mktemp("rt") / "g.jsonl"
            save_graph(g, path)
            loaded = load_graph(path)
            assert loaded.name == g.name
            assert loaded.vertex_count == g.vertex_count
            assert loaded.edge_count == g.edge_count
            for vertex in g.vertices():
                twin = loaded.vertex(vertex.id)
                assert twin.label == vertex.label
                assert twin.props == vertex.props
            for edge in g.edges():
                twins = [e for e in loaded.edges() if e.id == edge.id]
                assert twins and twins[0].props == edge.props
                assert twins[0].label == edge.label

        @settings(max_examples=50, deadline=None)
        @given(records=st.lists(st.tuples(labels, props), min_size=1,
                                max_size=6))
        def test_snapshot_round_trip_is_extensional(
                self, tmp_path_factory, records):
            from repro.graph import (
                graphs_equal,
                read_snapshot,
                write_snapshot,
            )

            g = Graph(name="prop")
            for label, p in records:
                g.add_vertex(label, p)
            path = tmp_path_factory.mktemp("snap") / "s.jsonl"
            write_snapshot(g, path)
            assert graphs_equal(read_snapshot(path).graph, g)


class TestStats:
    def test_stats_counts(self, sample):
        stats = graph_stats(sample)
        assert stats.vertex_count == 3
        assert stats.edge_count == 1
        assert stats.vertex_label_count == 2
        assert stats.top_vertex_labels[0] == ("dog", 2)

    def test_stats_empty_graph(self):
        stats = graph_stats(Graph())
        assert stats.vertex_count == 0
        assert stats.max_out_degree == 0

    def test_stats_degrees(self):
        g = Graph()
        hub = g.add_vertex("hub").id
        for i in range(3):
            leaf = g.add_vertex(f"l{i}").id
            g.add_edge(hub, leaf, "spoke")
        stats = graph_stats(g)
        assert stats.max_out_degree == 3
        assert stats.max_in_degree == 1
