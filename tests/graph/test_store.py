"""Unit tests for graph persistence and statistics."""

import json

import pytest

from repro.errors import StoreError
from repro.graph import Graph, graph_stats, load_graph, save_graph


@pytest.fixture
def sample():
    g = Graph(name="sample")
    a = g.add_vertex("dog", {"image_id": 1})
    b = g.add_vertex("man")
    g.add_vertex("dog")
    g.add_edge(a.id, b.id, "in front of", {"score": 0.9})
    return g


class TestRoundTrip:
    def test_round_trip_preserves_everything(self, sample, tmp_path):
        path = tmp_path / "g.jsonl"
        save_graph(sample, path)
        loaded = load_graph(path)
        assert loaded.name == "sample"
        assert loaded.vertex_count == sample.vertex_count
        assert loaded.edge_count == sample.edge_count
        assert loaded.vertex(0).props == {"image_id": 1}
        edge = next(iter(loaded.edges()))
        assert edge.label == "in front of"
        assert edge.props == {"score": 0.9}

    def test_round_trip_preserves_label_index(self, sample, tmp_path):
        path = tmp_path / "g.jsonl"
        save_graph(sample, path)
        loaded = load_graph(path)
        assert len(loaded.find_vertices("dog")) == 2

    def test_empty_graph_round_trip(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        save_graph(Graph(name="e"), path)
        loaded = load_graph(path)
        assert loaded.vertex_count == 0
        assert loaded.name == "e"


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StoreError):
            load_graph(tmp_path / "nope.jsonl")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "z.jsonl"
        path.write_text("")
        with pytest.raises(StoreError):
            load_graph(path)

    def test_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(StoreError):
            load_graph(path)

    def test_missing_header(self, tmp_path):
        path = tmp_path / "noheader.jsonl"
        path.write_text(json.dumps({"type": "vertex", "id": 0, "label": "x"}) + "\n")
        with pytest.raises(StoreError):
            load_graph(path)

    def test_bad_version(self, tmp_path):
        path = tmp_path / "v9.jsonl"
        path.write_text(json.dumps({"type": "header", "version": 9}) + "\n")
        with pytest.raises(StoreError):
            load_graph(path)

    def test_unknown_record_type(self, tmp_path):
        path = tmp_path / "weird.jsonl"
        lines = [
            json.dumps({"type": "header", "version": 1, "name": "x"}),
            json.dumps({"type": "mystery"}),
        ]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(StoreError):
            load_graph(path)


class TestStats:
    def test_stats_counts(self, sample):
        stats = graph_stats(sample)
        assert stats.vertex_count == 3
        assert stats.edge_count == 1
        assert stats.vertex_label_count == 2
        assert stats.top_vertex_labels[0] == ("dog", 2)

    def test_stats_empty_graph(self):
        stats = graph_stats(Graph())
        assert stats.vertex_count == 0
        assert stats.max_out_degree == 0

    def test_stats_degrees(self):
        g = Graph()
        hub = g.add_vertex("hub").id
        for i in range(3):
            leaf = g.add_vertex(f"l{i}").id
            g.add_edge(hub, leaf, "spoke")
        stats = graph_stats(g)
        assert stats.max_out_degree == 3
        assert stats.max_in_degree == 1
