"""Unit tests for induced subgraph views and G[S(t,k)] extraction."""

import pytest

from repro.graph import (
    Graph,
    induced_subgraph_view,
    k_hop_subgraph,
    materialize,
)


@pytest.fixture
def sample():
    """fence <-> man -> dog -> frisbee, man -> grass"""
    g = Graph()
    fence = g.add_vertex("Fence").id
    man = g.add_vertex("Man").id
    dog = g.add_vertex("Dog").id
    frisbee = g.add_vertex("Frisbee").id
    grass = g.add_vertex("Grass").id
    g.add_edge(fence, man, "behind")
    g.add_edge(man, fence, "in front of")
    g.add_edge(man, dog, "watching")
    g.add_edge(dog, frisbee, "catching")
    g.add_edge(man, grass, "standing on")
    return g, dict(fence=fence, man=man, dog=dog, frisbee=frisbee, grass=grass)


class TestView:
    def test_view_membership(self, sample):
        g, ids = sample
        view = induced_subgraph_view(g, {ids["fence"], ids["man"]})
        assert ids["fence"] in view
        assert ids["dog"] not in view

    def test_view_edges_are_induced(self, sample):
        g, ids = sample
        view = induced_subgraph_view(g, {ids["fence"], ids["man"]})
        labels = sorted(e.label for e in view.edges())
        assert labels == ["behind", "in front of"]

    def test_view_label_lookup(self, sample):
        g, ids = sample
        view = induced_subgraph_view(g, {ids["fence"], ids["man"]})
        assert [v.id for v in view.find_vertices("Man")] == [ids["man"]]
        assert view.find_vertices("Dog") == []

    def test_view_validates_ids(self, sample):
        g, _ = sample
        from repro.errors import VertexNotFoundError

        with pytest.raises(VertexNotFoundError):
            induced_subgraph_view(g, {999})


class TestKHopSubgraph:
    def test_one_hop_around_fence(self, sample):
        g, ids = sample
        view = k_hop_subgraph(g, ids["fence"], 1)
        assert view.vertex_ids == frozenset({ids["fence"], ids["man"]})
        assert view.anchor == ids["fence"]

    def test_two_hop_around_fence(self, sample):
        g, ids = sample
        view = k_hop_subgraph(g, ids["fence"], 2)
        expected = {ids["fence"], ids["man"], ids["dog"], ids["grass"]}
        assert view.vertex_ids == frozenset(expected)

    def test_vertex_count(self, sample):
        g, ids = sample
        assert k_hop_subgraph(g, ids["fence"], 1).vertex_count == 2


class TestMaterialize:
    def test_materialize_preserves_ids_and_edges(self, sample):
        g, ids = sample
        view = k_hop_subgraph(g, ids["fence"], 2)
        copy = materialize(view)
        assert copy.vertex_count == view.vertex_count
        assert copy.vertex(ids["man"]).label == "Man"
        # the man->dog edge is inside the 2-hop view
        assert len(copy.edges_between(ids["man"], ids["dog"])) == 1

    def test_materialize_is_independent(self, sample):
        g, ids = sample
        view = k_hop_subgraph(g, ids["fence"], 1)
        copy = materialize(view)
        copy.add_vertex("NewThing")
        assert g.find_vertices("NewThing") == []
