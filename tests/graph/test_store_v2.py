"""Store v2: record framing, checksummed snapshots, digests.

Every snapshot byte is covered by two checksums (per-record frame
digest + whole-file payload digest in the manifest); these tests pin
the framing grammar, the round-trip fidelity (ids, insertion order,
epoch, id watermarks), and the attributed failure reason for each
class of damage.
"""

import pytest

from repro.errors import StoreError
from repro.graph import (
    Graph,
    extensional_digest,
    graphs_equal,
    read_snapshot,
    write_snapshot,
)
from repro.graph.store import canonical_payload, frame_record, parse_frame


@pytest.fixture
def sample():
    g = Graph(name="sample")
    a = g.add_vertex("dog", {"image_id": 1})
    b = g.add_vertex("man", {"note": "café ☃"})
    c = g.add_vertex("dog")
    g.add_edge(a.id, b.id, "in front of", {"score": 0.9})
    g.add_edge(b.id, c.id, "next to")
    g.remove_vertex(c.id)  # leaves an id hole + a higher watermark
    return g


class TestFraming:
    def test_frame_parse_round_trip(self):
        record = {"op": "add_vertex", "label": "café ☃",
                  "props": {"x": [1, 2.5, None, ""]}}
        assert parse_frame(frame_record(record).rstrip(b"\n")) == record

    def test_torn_frame_is_attributed(self):
        line = frame_record({"a": 1}).rstrip(b"\n")
        with pytest.raises(StoreError) as err:
            parse_frame(line[:-3], "wal.jsonl", 7)
        assert err.value.reason == "torn-record"
        assert err.value.lineno == 7

    def test_flipped_payload_byte_is_bad_digest(self):
        line = frame_record({"a": 1}).rstrip(b"\n")
        mangled = line[:-2] + b"#" + line[-1:]
        with pytest.raises(StoreError) as err:
            parse_frame(mangled)
        assert err.value.reason == "bad-digest"

    def test_digest_valid_non_object_is_bad_record(self):
        payload = canonical_payload([1, 2])
        import hashlib

        digest = hashlib.blake2b(payload, digest_size=16).hexdigest()
        line = b"%d|%s|%s" % (len(payload), digest.encode(), payload)
        with pytest.raises(StoreError) as err:
            parse_frame(line)
        assert err.value.reason == "bad-record"


class TestSnapshotRoundTrip:
    def test_round_trip_is_extensional_identity(self, sample, tmp_path):
        path = tmp_path / "snap.jsonl"
        manifest = write_snapshot(sample, path)
        loaded = read_snapshot(path)
        assert graphs_equal(sample, loaded.graph)
        assert loaded.graph.epoch == sample.epoch
        assert extensional_digest(loaded.graph) == \
            extensional_digest(sample)
        assert manifest["vertices"] == sample.vertex_count
        assert manifest["edges"] == sample.edge_count

    def test_id_watermarks_survive_the_round_trip(self, sample,
                                                  tmp_path):
        path = tmp_path / "snap.jsonl"
        write_snapshot(sample, path)
        loaded = read_snapshot(path).graph
        fresh = loaded.add_vertex("new")
        assert fresh.id == sample.add_vertex("new").id
        live_edge = sample.add_edge(0, 1, "x")
        assert loaded.add_edge(0, 1, "x").id == live_edge.id

    def test_insertion_order_is_preserved(self, sample, tmp_path):
        path = tmp_path / "snap.jsonl"
        write_snapshot(sample, path)
        loaded = read_snapshot(path).graph
        assert [v.id for v in loaded.vertices()] == \
            [v.id for v in sample.vertices()]
        assert [e.id for e in loaded.edges()] == \
            [e.id for e in sample.edges()]

    def test_merged_meta_rides_along(self, sample, tmp_path):
        path = tmp_path / "snap.jsonl"
        meta = {"instance_ids": [1, 2], "skipped_images": []}
        write_snapshot(sample, path, merged_meta=meta)
        loaded = read_snapshot(path)
        assert loaded.merged_meta == meta
        bare = tmp_path / "bare.jsonl"
        write_snapshot(sample, bare)
        assert read_snapshot(bare).merged_meta is None


class TestSnapshotDamage:
    def damage(self, sample, tmp_path, mutate):
        path = tmp_path / "snap.jsonl"
        write_snapshot(sample, path)
        path.write_bytes(mutate(path.read_bytes()))
        with pytest.raises(StoreError) as err:
            read_snapshot(path)
        return err.value

    def test_truncated_tail_is_detected(self, sample, tmp_path):
        err = self.damage(sample, tmp_path,
                          lambda raw: raw[:raw.rstrip().rfind(b"\n")])
        assert err.reason in ("record-count", "bad-digest")

    def test_mid_record_truncation_is_torn(self, sample, tmp_path):
        err = self.damage(sample, tmp_path, lambda raw: raw[:-4])
        assert err.reason == "torn-record"

    def test_flipped_body_byte_is_detected(self, sample, tmp_path):
        def flip(raw):
            pos = len(raw) // 2
            return raw[:pos] + b"#" + raw[pos + 1:]

        err = self.damage(sample, tmp_path, flip)
        assert err.reason in ("bad-digest", "torn-record")

    def test_extra_record_breaks_whole_file_digest(self, sample,
                                                   tmp_path):
        err = self.damage(
            sample, tmp_path,
            lambda raw: raw + frame_record(
                {"type": "vertex", "id": 99, "label": "x",
                 "props": {}}))
        assert err.reason in ("record-count", "bad-digest")

    def test_empty_file_is_missing_manifest(self, sample, tmp_path):
        err = self.damage(sample, tmp_path, lambda raw: b"")
        assert err.reason == "missing-manifest"


class TestExtensionalDigest:
    def test_same_content_same_digest(self):
        a, b = Graph(name="g"), Graph(name="g")
        for g in (a, b):
            g.add_vertex("x", vertex_id=0)
            g.add_vertex("y", vertex_id=1)
            g.add_edge(0, 1, "r")
        assert extensional_digest(a) == extensional_digest(b)
        assert graphs_equal(a, b)

    def test_epoch_is_part_of_the_digest(self):
        a, b = Graph(name="g"), Graph(name="g")
        a.add_vertex("x", vertex_id=0)
        b.add_vertex("x", vertex_id=0)
        b.relabel_vertex(0, "y")
        b.relabel_vertex(0, "x")
        assert not graphs_equal(a, b)
        assert extensional_digest(a) != extensional_digest(b)
