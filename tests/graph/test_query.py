"""Unit tests for pattern-matching primitives."""

import pytest

from repro.graph import (
    Graph,
    relations_between,
    relations_from,
    relations_to,
    vertices_with_label,
)


@pytest.fixture
def scene():
    """Two wizards wearing clothes, one muggle."""
    g = Graph()
    w1 = g.add_vertex("wizard")
    w2 = g.add_vertex("wizard")
    robe = g.add_vertex("robe")
    hat = g.add_vertex("hat")
    muggle = g.add_vertex("muggle")
    g.add_edge(w1.id, robe.id, "wearing")
    g.add_edge(w2.id, hat.id, "wearing")
    g.add_edge(muggle.id, hat.id, "holding")
    return g, [w1, w2], [robe, hat], muggle


class TestVertexLookup:
    def test_finds_all_with_label(self, scene):
        g, wizards, _, _ = scene
        assert vertices_with_label(g, "wizard") == wizards

    def test_unknown_label_empty(self, scene):
        g, *_ = scene
        assert vertices_with_label(g, "dragon") == []


class TestRelations:
    def test_relations_between(self, scene):
        g, wizards, clothes, _ = scene
        pairs = relations_between(g, wizards, clothes)
        triples = sorted(p.triple for p in pairs)
        assert triples == [
            ("wizard", "wearing", "hat"),
            ("wizard", "wearing", "robe"),
        ]

    def test_relations_between_excludes_other_subjects(self, scene):
        g, wizards, clothes, muggle = scene
        pairs = relations_between(g, wizards, clothes)
        assert all(p.subject.label == "wizard" for p in pairs)

    def test_relations_from_open_object(self, scene):
        g, wizards, _, _ = scene
        pairs = relations_from(g, wizards)
        assert {p.object.label for p in pairs} == {"robe", "hat"}

    def test_relations_to_open_subject(self, scene):
        g, _, clothes, _ = scene
        hat = [c for c in clothes if c.label == "hat"]
        pairs = relations_to(g, hat)
        assert {p.subject.label for p in pairs} == {"wizard", "muggle"}

    def test_include_reverse(self):
        g = Graph()
        a = g.add_vertex("a")
        b = g.add_vertex("b")
        g.add_edge(b.id, a.id, "rev")
        assert relations_between(g, [a], [b]) == []
        pairs = relations_between(g, [a], [b], include_reverse=True)
        assert [p.edge.label for p in pairs] == ["rev"]

    def test_empty_inputs(self, scene):
        g, wizards, _, _ = scene
        assert relations_between(g, [], []) == []
        assert relations_from(g, []) == []
        assert relations_to(g, []) == []

    def test_triple_property(self, scene):
        g, wizards, clothes, _ = scene
        pair = relations_between(g, wizards, clothes)[0]
        s, p, o = pair.triple
        assert s == "wizard" and p == "wearing"
