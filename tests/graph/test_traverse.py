"""Unit tests for graph traversal (BFS/DFS, k-hop, components)."""

import pytest

from repro.graph import (
    Graph,
    bfs_order,
    connected_components,
    dfs_order,
    hop_distances,
    iter_paths,
    k_hop_neighborhood,
)


@pytest.fixture
def chain():
    """0 -> 1 -> 2 -> 3 -> 4"""
    g = Graph()
    ids = [g.add_vertex(str(i)).id for i in range(5)]
    for a, b in zip(ids, ids[1:], strict=False):
        g.add_edge(a, b, "next")
    return g, ids


@pytest.fixture
def star():
    """center -> leaf_i for i in 0..3"""
    g = Graph()
    center = g.add_vertex("center").id
    leaves = [g.add_vertex(f"leaf{i}").id for i in range(4)]
    for leaf in leaves:
        g.add_edge(center, leaf, "spoke")
    return g, center, leaves


class TestBFS:
    def test_bfs_covers_reachable(self, chain):
        g, ids = chain
        assert bfs_order(g, ids[0]) == ids

    def test_bfs_respects_direction(self, chain):
        g, ids = chain
        assert bfs_order(g, ids[2]) == ids[2:]

    def test_bfs_undirected(self, chain):
        g, ids = chain
        assert set(bfs_order(g, ids[2], directed=False)) == set(ids)

    def test_bfs_start_validated(self, chain):
        g, _ = chain
        from repro.errors import VertexNotFoundError

        with pytest.raises(VertexNotFoundError):
            bfs_order(g, 999)


class TestDFS:
    def test_dfs_preorder_on_star(self, star):
        g, center, leaves = star
        order = dfs_order(g, center)
        assert order[0] == center
        assert set(order[1:]) == set(leaves)
        # first edge added explored first
        assert order[1] == leaves[0]

    def test_dfs_single_vertex(self):
        g = Graph()
        v = g.add_vertex("only")
        assert dfs_order(g, v.id) == [v.id]


class TestKHop:
    def test_zero_hops_is_self(self, chain):
        g, ids = chain
        assert k_hop_neighborhood(g, ids[0], 0) == {ids[0]}

    def test_one_hop_on_chain(self, chain):
        g, ids = chain
        # undirected by default (matches Example 3 of the paper)
        assert k_hop_neighborhood(g, ids[2], 1) == {ids[1], ids[2], ids[3]}

    def test_k_hop_directed(self, chain):
        g, ids = chain
        assert k_hop_neighborhood(g, ids[2], 1, directed=True) == {ids[2], ids[3]}

    def test_k_hop_saturates(self, chain):
        g, ids = chain
        assert k_hop_neighborhood(g, ids[0], 100) == set(ids)

    def test_negative_k_raises(self, chain):
        g, ids = chain
        with pytest.raises(ValueError):
            k_hop_neighborhood(g, ids[0], -1)

    def test_paper_example3_fence_man(self):
        # S("Fence", 1) contains Fence and Man (Example 3)
        g = Graph()
        fence = g.add_vertex("Fence").id
        man = g.add_vertex("Man").id
        far = g.add_vertex("Dog").id
        g.add_edge(fence, man, "behind")
        g.add_edge(man, fence, "in front of")
        g.add_edge(man, far, "watching")
        s = k_hop_neighborhood(g, fence, 1)
        assert s == {fence, man}


class TestDistances:
    def test_hop_distances(self, chain):
        g, ids = chain
        d = hop_distances(g, ids[0], directed=True)
        assert [d[i] for i in ids] == [0, 1, 2, 3, 4]

    def test_hop_distances_limit(self, chain):
        g, ids = chain
        d = hop_distances(g, ids[0], directed=True, limit=2)
        assert set(d) == set(ids[:3])


class TestComponents:
    def test_single_component(self, chain):
        g, ids = chain
        comps = connected_components(g)
        assert comps == [set(ids)]

    def test_two_components(self):
        g = Graph()
        a = g.add_vertex("a").id
        b = g.add_vertex("b").id
        g.add_edge(a, b, "x")
        c = g.add_vertex("c").id
        comps = connected_components(g)
        assert {frozenset(s) for s in comps} == {frozenset({a, b}), frozenset({c})}

    def test_empty_graph(self):
        assert connected_components(Graph()) == []


class TestPaths:
    def test_iter_paths_finds_multi_hop(self, chain):
        g, ids = chain
        paths = list(iter_paths(g, ids[0], lambda v: v == ids[3], max_depth=5))
        assert paths == [[ids[0], ids[1], ids[2], ids[3]]]

    def test_iter_paths_depth_capped(self, chain):
        g, ids = chain
        paths = list(iter_paths(g, ids[0], lambda v: v == ids[4], max_depth=2))
        assert paths == []

    def test_iter_paths_simple_only(self):
        # cycle: ensure no infinite revisit
        g = Graph()
        a = g.add_vertex("a").id
        b = g.add_vertex("b").id
        g.add_edge(a, b, "x")
        g.add_edge(b, a, "y")
        paths = list(iter_paths(g, a, lambda v: v == b, max_depth=10))
        assert paths == [[a, b]]
