"""Unit tests for scene model, geometry, and rendering."""

import pytest

from repro.errors import SceneError
from repro.synth import (
    Box,
    CANVAS,
    SceneObject,
    SceneRelation,
    SyntheticScene,
    complete_spatial_relations,
    iou,
    overlap_fraction,
    relation_index,
    spatial_relation,
)
from repro.synth.taxonomy import category_index


class TestBox:
    def test_derived_coordinates(self):
        box = Box(10, 20, 30, 40)
        assert box.x2 == 40
        assert box.y2 == 60
        assert box.area == 1200
        assert box.center == (25.0, 40.0)

    def test_clipping(self):
        box = Box(-5, 120, 30, 40).clipped()
        assert box.x == 0
        assert box.y2 <= CANVAS

    def test_iou_disjoint(self):
        assert iou(Box(0, 0, 10, 10), Box(50, 50, 10, 10)) == 0.0

    def test_iou_identical(self):
        box = Box(5, 5, 10, 10)
        assert iou(box, box) == pytest.approx(1.0)

    def test_iou_partial(self):
        a = Box(0, 0, 10, 10)
        b = Box(5, 0, 10, 10)
        assert iou(a, b) == pytest.approx(50 / 150)

    def test_overlap_fraction_directional(self):
        small = Box(0, 0, 10, 10)
        large = Box(0, 0, 100, 100)
        assert overlap_fraction(small, large) == pytest.approx(1.0)
        assert overlap_fraction(large, small) == pytest.approx(0.01)


class TestSceneValidation:
    def test_indices_must_be_dense(self):
        obj = SceneObject(1, "dog", Box(0, 0, 10, 10), 0.5)
        with pytest.raises(SceneError):
            SyntheticScene(0, [obj], [])

    def test_relation_endpoints_validated(self):
        obj = SceneObject(0, "dog", Box(0, 0, 10, 10), 0.5)
        with pytest.raises(SceneError):
            SyntheticScene(0, [obj], [SceneRelation(0, 5, "near")])

    def test_self_relation_rejected(self):
        obj = SceneObject(0, "dog", Box(0, 0, 10, 10), 0.5)
        with pytest.raises(SceneError):
            SyntheticScene(0, [obj], [SceneRelation(0, 0, "near")])

    def test_unknown_predicate_rejected(self):
        with pytest.raises(KeyError):
            SceneRelation(0, 1, "teleporting above")

    def test_unknown_category_rejected(self):
        with pytest.raises(KeyError):
            SceneObject(0, "dragon", Box(0, 0, 10, 10), 0.5)


class TestRendering:
    @pytest.fixture
    def scene(self):
        objects = [
            SceneObject(0, "grass", Box(0, 64, 128, 64), 0.9),
            SceneObject(1, "dog", Box(30, 60, 20, 20), 0.3),
            SceneObject(2, "frisbee", Box(45, 65, 6, 6), 0.2),
        ]
        relations = [
            SceneRelation(1, 0, "standing on"),
            SceneRelation(1, 2, "catching"),
        ]
        return SyntheticScene(7, objects, relations)

    def test_raster_shape(self, scene):
        raster = scene.render()
        assert raster.shape == (CANVAS, CANVAS)

    def test_closer_object_occludes(self, scene):
        raster = scene.render()
        # the frisbee (depth 0.2) paints over the dog (0.3)
        assert raster.labels[67, 47] == category_index("frisbee")
        assert raster.instances[67, 47] == 2

    def test_background_is_zero(self, scene):
        raster = scene.render()
        assert raster.labels[0, 0] == 0
        assert raster.instances[0, 0] == -1

    def test_interaction_signals(self, scene):
        raster = scene.render()
        catching = relation_index("catching")
        assert raster.subject_signals[1, catching] == 1.0
        assert raster.object_signals[2, catching] == 1.0
        assert raster.subject_signals[2, catching] == 0.0

    def test_relations_of(self, scene):
        assert len(scene.relations_of(1)) == 2
        assert len(scene.relations_of(0)) == 1


class TestSpatialRelation:
    def make(self, index, category, box, depth):
        return SceneObject(index, category, box, depth)

    def test_on_top(self):
        surface = self.make(0, "grass", Box(0, 60, 100, 60), 0.9)
        dog = self.make(1, "dog", Box(20, 45, 20, 20), 0.3)
        assert spatial_relation(dog, surface) in {"on", "above"}

    def test_inside(self):
        car = self.make(0, "car", Box(20, 20, 60, 50), 0.6)
        cat = self.make(1, "cat", Box(40, 35, 12, 12), 0.4)
        assert spatial_relation(cat, car) == "in"

    def test_near_when_close(self):
        a = self.make(0, "dog", Box(10, 10, 20, 20), 0.4)
        b = self.make(1, "cat", Box(32, 12, 18, 18), 0.4)
        assert spatial_relation(a, b) in {"near", "next to"}

    def test_none_when_far(self):
        a = self.make(0, "dog", Box(0, 0, 10, 10), 0.4)
        b = self.make(1, "cat", Box(110, 110, 10, 10), 0.4)
        assert spatial_relation(a, b) is None

    def test_depth_gives_front_behind(self):
        front = self.make(0, "dog", Box(10, 10, 20, 20), 0.2)
        back = self.make(1, "man", Box(32, 10, 22, 30), 0.7)
        assert spatial_relation(front, back) == "in front of"
        assert spatial_relation(back, front) == "behind"

    def test_deterministic(self):
        a = self.make(0, "dog", Box(10, 10, 20, 20), 0.3)
        b = self.make(1, "man", Box(25, 5, 20, 35), 0.5)
        assert spatial_relation(a, b) == spatial_relation(a, b)


class TestCompleteSpatialRelations:
    def test_adds_spatial_edges(self):
        objects = [
            SceneObject(0, "dog", Box(20, 40, 20, 20), 0.3),
            SceneObject(1, "man", Box(45, 30, 20, 35), 0.5),
        ]
        relations = complete_spatial_relations(objects, [])
        assert relations, "expected at least one spatial relation"

    def test_does_not_override_asserted(self):
        objects = [
            SceneObject(0, "dog", Box(20, 40, 20, 20), 0.3),
            SceneObject(1, "frisbee", Box(36, 45, 6, 6), 0.25),
        ]
        asserted = [SceneRelation(0, 1, "catching")]
        relations = complete_spatial_relations(objects, asserted)
        pairs = [(r.src, r.dst) for r in relations]
        assert pairs.count((0, 1)) == 1
        assert relations[0].predicate == "catching"

    def test_per_object_cap(self):
        objects = [
            SceneObject(i, "dog", Box(10 + 6 * i, 40, 10, 10), 0.3)
            for i in range(6)
        ]
        relations = complete_spatial_relations(objects, [], max_per_object=2)
        outgoing = {}
        for r in relations:
            outgoing[r.src] = outgoing.get(r.src, 0) + 1
        assert all(v <= 2 for v in outgoing.values())
