"""Unit tests for the scene-pool generator."""

import pytest

from repro.synth import (
    SceneGenerator,
    SEMANTIC_RELATIONS,
    TEMPLATES,
    category_by_name,
)


class TestDeterminism:
    def test_same_seed_same_pool(self):
        a = SceneGenerator(seed=11).generate_pool(20)
        b = SceneGenerator(seed=11).generate_pool(20)
        for sa, sb in zip(a, b, strict=True):
            assert sa.categories == sb.categories
            assert [(r.src, r.dst, r.predicate) for r in sa.relations] == \
                [(r.src, r.dst, r.predicate) for r in sb.relations]

    def test_different_seed_differs(self):
        a = SceneGenerator(seed=1).generate_pool(30)
        b = SceneGenerator(seed=2).generate_pool(30)
        assert any(sa.categories != sb.categories for sa, sb in zip(a, b, strict=True))


class TestPoolShape:
    @pytest.fixture(scope="class")
    def pool(self):
        return SceneGenerator(seed=3).generate_pool(100)

    def test_ids_sequential(self, pool):
        assert [s.image_id for s in pool] == list(range(100))

    def test_scene_sizes_reasonable(self, pool):
        for scene in pool:
            assert 2 <= len(scene.objects) <= 10

    def test_every_scene_has_relations(self, pool):
        assert all(scene.relations for scene in pool)

    def test_semantic_relations_present(self, pool):
        semantic = sum(
            1 for s in pool for r in s.relations
            if r.predicate in SEMANTIC_RELATIONS
        )
        assert semantic > 50

    def test_captions_describe_semantics(self, pool):
        with_caption = [s for s in pool if s.caption]
        assert len(with_caption) > 80
        assert all(s.caption.endswith(".") for s in with_caption)

    def test_boxes_inside_canvas(self, pool):
        for scene in pool:
            for obj in scene.objects:
                assert 0 <= obj.box.x < 128
                assert 0 <= obj.box.y < 128
                assert obj.box.x2 <= 128
                assert obj.box.y2 <= 128


class TestTemplates:
    def test_template_slots_use_known_categories(self):
        for template in TEMPLATES:
            for slot in template.slots:
                for category in slot.categories:
                    category_by_name(category)  # raises on unknown

    def test_template_relations_reference_slots(self):
        for template in TEMPLATES:
            slot_names = {slot.name for slot in template.slots}
            for src, _, dst in template.relations:
                assert src in slot_names
                assert dst in slot_names

    def test_each_template_generates(self):
        gen = SceneGenerator(seed=5)
        for i, template in enumerate(TEMPLATES):
            scene = gen.generate_from_template(i, template)
            assert len(scene.objects) >= len(template.slots)
            asserted = {r.predicate for r in scene.relations}
            template_predicates = {p for _, p, _ in template.relations}
            assert template_predicates <= asserted

    def test_semantic_relation_geometry_is_plausible(self):
        # a held/caught object must be close to its holder
        from repro.synth.scene import center_distance

        gen = SceneGenerator(seed=9)
        pool = gen.generate_pool(150)
        for scene in pool:
            for relation in scene.relations:
                if relation.predicate in {"holding", "catching", "carrying"}:
                    a = scene.objects[relation.src]
                    b = scene.objects[relation.dst]
                    scale = max(a.box.w, a.box.h, b.box.w, b.box.h)
                    assert center_distance(a.box, b.box) < scale * 2.5
