"""Unit tests for the category taxonomy."""

import pytest

from repro.nlp.lexicon import NOUN_TABLE
from repro.synth import (
    CATEGORIES,
    Group,
    MVQA_GROUPS,
    categories_in_group,
    category_by_name,
    category_index,
    category_names,
)


class TestTaxonomy:
    def test_all_names_unique(self):
        names = category_names()
        assert len(names) == len(set(names))

    def test_every_category_in_lexicon(self):
        for category in CATEGORIES:
            assert category.name in NOUN_TABLE

    def test_lookup_by_name(self):
        dog = category_by_name("dog")
        assert dog.group is Group.ANIMAL

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            category_by_name("dragon")

    def test_category_index_stable_and_positive(self):
        # index 0 is reserved for raster background
        assert category_index(CATEGORIES[0].name) == 1
        indices = [category_index(c.name) for c in CATEGORIES]
        assert indices == sorted(indices)
        assert min(indices) == 1

    def test_groups_cover_mvqa_filter(self):
        for group in MVQA_GROUPS:
            assert categories_in_group(group), f"no categories in {group}"

    def test_size_ranges_valid(self):
        for category in CATEGORIES:
            lo, hi = category.size
            assert 0 < lo <= hi <= 128

    def test_depth_bias_in_unit_interval(self):
        for category in CATEGORIES:
            assert 0.0 <= category.depth_bias <= 1.0
