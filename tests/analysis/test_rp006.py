"""Tests for RP006: fault-site discipline (resilience registry)."""

import textwrap

from repro.analysis import lint_source, RuleBinding
from repro.analysis.code_rules import FaultSiteDisciplineRule


def lint(source, path="src/repro/core/fixture.py"):
    return lint_source(textwrap.dedent(source), path,
                       bindings=(RuleBinding(FaultSiteDisciplineRule()),))


class TestSilentSwallow:
    def test_except_exception_pass_fires(self):
        report = lint(
            """
            def load():
                try:
                    risky()
                except Exception:
                    pass
            """
        )
        assert [d.rule_id for d in report] == ["RP006"]

    def test_bare_except_continue_fires(self):
        report = lint(
            """
            def drain(items):
                for item in items:
                    try:
                        handle(item)
                    except:
                        continue
            """
        )
        assert [d.rule_id for d in report] == ["RP006"]

    def test_handled_exception_is_fine(self):
        report = lint(
            """
            def load(events):
                try:
                    risky()
                except Exception as exc:
                    events.append(str(exc))
            """
        )
        assert len(report) == 0

    def test_specific_exception_pass_is_fine(self):
        # narrow catches express intent; RP006 only bans the blanket ones
        report = lint(
            """
            def load():
                try:
                    risky()
                except KeyError:
                    pass
            """
        )
        assert len(report) == 0


class TestFaultSiteLiterals:
    def test_unregistered_site_in_guard_call_fires(self):
        report = lint(
            """
            def guarded(self):
                return self.resilience.call("executor.mtach", "k",
                                            lambda: 1)
            """
        )
        assert [d.rule_id for d in report] == ["RP006"]
        assert "executor.mtach" in next(iter(report)).message

    def test_registered_site_is_fine(self):
        report = lint(
            """
            def guarded(self):
                return self.resilience.call("executor.match", "k",
                                            lambda: 1)
            """
        )
        assert len(report) == 0

    def test_injector_check_is_also_guarded(self):
        report = lint(
            """
            def probe(injector):
                injector.check("cache.scpoe", "k")
            """
        )
        assert [d.rule_id for d in report] == ["RP006"]

    def test_unrelated_receivers_are_ignored(self):
        # .call on non-resilience receivers is not a guard call
        report = lint(
            """
            def invoke(rpc):
                return rpc.call("some.random.method", 1)
            """
        )
        assert len(report) == 0

    def test_dynamic_site_names_are_ignored(self):
        report = lint(
            """
            def guarded(self, site):
                return self.resilience.call(site, "k", lambda: 1)
            """
        )
        assert len(report) == 0


class TestRepoIsClean:
    def test_package_source_has_no_rp006_errors(self):
        from repro.analysis import default_source_root, lint_paths

        report = lint_paths([default_source_root()])
        assert not [d for d in report if d.rule_id == "RP006"]
