"""Tests for the query-graph semantic validator (layer 1).

Hand-built broken graphs must each trigger their rule; every
parseable MVQA question must validate without ERROR diagnostics
(warnings are acceptable — they flag fuzzy-match reliance, not
breakage).
"""

import pytest

from repro.analysis import (
    QueryGraphValidator,
    Severity,
    validate_query_graph,
)
from repro.core import generate_query_graph
from repro.core.spoc import (
    DependencyKind,
    QueryGraph,
    QuestionType,
    SPOC,
    Term,
)
from repro.errors import QueryParseError


def term(head, **kwargs):
    return Term(text=head, head=head, **kwargs)


def spoc(subject=None, predicate="be", obj=None, **kwargs):
    return SPOC(subject=subject, predicate=predicate, object=obj,
                **kwargs)


def judgment_main(subject="dog", obj="grass", **kwargs):
    return spoc(subject=term(subject), obj=term(obj),
                is_main=True, question_type=QuestionType.JUDGMENT,
                source_text=f"{subject} be {obj}", **kwargs)


def condition(subject="dog", obj="grass", depth=1, **kwargs):
    return spoc(subject=term(subject), obj=term(obj), depth=depth,
                source_text=f"{subject} be {obj}", **kwargs)


class TestBrokenGraphs:
    def test_dangling_edge_triggers_qg001(self):
        graph = QueryGraph(
            vertices=[judgment_main()],
            edges=[(0, 5, DependencyKind.S2S)],
        )
        report = validate_query_graph(graph)
        assert "QG001" in report.rule_ids()
        assert report.has_errors

    def test_self_loop_triggers_qg001(self):
        graph = QueryGraph(
            vertices=[judgment_main()],
            edges=[(0, 0, DependencyKind.S2S)],
        )
        assert "QG001" in validate_query_graph(graph).rule_ids()

    def test_cycle_triggers_qg002(self):
        graph = QueryGraph(
            vertices=[judgment_main(), condition()],
            edges=[(0, 1, DependencyKind.S2S),
                   (1, 0, DependencyKind.S2S)],
        )
        report = validate_query_graph(graph)
        qg002 = report.by_rule("QG002")
        assert len(qg002) == 1
        assert qg002[0].severity is Severity.ERROR
        assert "no execution order" in qg002[0].message

    def test_missing_main_clause_triggers_qg003(self):
        graph = QueryGraph(vertices=[condition()])
        assert "QG003" in validate_query_graph(graph).rule_ids()

    def test_two_main_clauses_trigger_qg003(self):
        graph = QueryGraph(
            vertices=[judgment_main(), judgment_main()]
        )
        assert "QG003" in validate_query_graph(graph).rule_ids()

    def test_unreachable_condition_triggers_qg004(self):
        # the condition clause has no edge into the main clause
        graph = QueryGraph(
            vertices=[judgment_main(), condition()], edges=[]
        )
        report = validate_query_graph(graph)
        qg004 = report.by_rule("QG004")
        assert len(qg004) == 1
        assert qg004[0].severity is Severity.WARNING
        assert qg004[0].location.vertex == 1

    def test_counting_main_without_wh_triggers_qg005(self):
        main = spoc(subject=term("dog"), obj=term("grass"),
                    is_main=True,
                    question_type=QuestionType.COUNTING,
                    answer_role="subject")
        report = validate_query_graph(QueryGraph(vertices=[main]))
        assert "QG005" in report.rule_ids()
        assert report.has_errors

    def test_judgment_main_with_wh_triggers_qg005(self):
        main = spoc(subject=term("what", is_wh=True),
                    obj=term("grass"), is_main=True,
                    question_type=QuestionType.JUDGMENT)
        assert "QG005" in validate_query_graph(
            QueryGraph(vertices=[main])
        ).rule_ids()

    def test_contradictory_providers_trigger_qg006(self):
        # two providers bind the main clause's subject slot with
        # unrelated labels (dog vs sofa) — the intersection is empty
        graph = QueryGraph(
            vertices=[
                judgment_main(),
                condition(subject="dog", obj="grass"),
                condition(subject="sofa", obj="fence"),
            ],
            edges=[(1, 0, DependencyKind.S2S),
                   (2, 0, DependencyKind.S2S)],
        )
        report = validate_query_graph(graph)
        qg006 = report.by_rule("QG006")
        assert len(qg006) == 1
        assert qg006[0].severity is Severity.WARNING
        assert "'dog'" in qg006[0].message
        assert "'sofa'" in qg006[0].message

    def test_synonym_providers_do_not_trigger_qg006(self):
        graph = QueryGraph(
            vertices=[
                judgment_main(),
                condition(subject="dog", obj="grass"),
                condition(subject="dog", obj="fence"),
            ],
            edges=[(1, 0, DependencyKind.S2S),
                   (2, 0, DependencyKind.S2S)],
        )
        assert not validate_query_graph(graph).by_rule("QG006")

    def test_constraint_on_empty_slot_triggers_qg007_error(self):
        broken = spoc(subject=term("dog"), obj=None,
                      constraint="most frequently", is_main=True,
                      question_type=QuestionType.JUDGMENT,
                      answer_role="object")
        report = validate_query_graph(QueryGraph(vertices=[broken]))
        qg007 = report.by_rule("QG007")
        assert len(qg007) == 1
        assert qg007[0].severity is Severity.ERROR

    def test_unrecognised_constraint_triggers_qg007_warning(self):
        fuzzy = spoc(subject=term("dog"), obj=term("grass"),
                     constraint="zorbly", is_main=True,
                     question_type=QuestionType.JUDGMENT,
                     answer_role="object")
        report = validate_query_graph(QueryGraph(vertices=[fuzzy]))
        qg007 = report.by_rule("QG007")
        assert len(qg007) == 1
        assert qg007[0].severity is Severity.WARNING

    def test_unknown_term_triggers_qg008(self):
        graph = QueryGraph(
            vertices=[judgment_main(subject="canis", obj="grass")]
        )
        report = validate_query_graph(graph)
        qg008 = report.by_rule("QG008")
        assert len(qg008) == 1
        assert qg008[0].severity is Severity.WARNING
        assert "'canis'" in qg008[0].message

    def test_capitalised_proper_name_is_exempt_from_qg008(self):
        graph = QueryGraph(
            vertices=[judgment_main(subject="Harry Potter")]
        )
        # proper names match annotation labels, not the lexicon
        assert not validate_query_graph(graph).by_rule("QG008")

    def test_degenerate_spoc_triggers_qg009(self):
        empty = spoc(subject=None, obj=None, predicate="",
                     is_main=True,
                     question_type=QuestionType.JUDGMENT)
        report = validate_query_graph(QueryGraph(vertices=[empty]))
        assert len(report.by_rule("QG009")) == 2  # no slots + no verb


class TestValidatorConfiguration:
    def test_rule_subset_runs_only_named_rules(self):
        graph = QueryGraph(
            vertices=[condition()],  # no main: QG003 would fire
            edges=[(0, 0, DependencyKind.S2S)],
        )
        validator = QueryGraphValidator(rules=("QG001",))
        report = validator.validate(graph)
        assert report.rule_ids() == ["QG001"]

    def test_unknown_rule_id_is_rejected(self):
        with pytest.raises(ValueError):
            QueryGraphValidator(rules=("QG999",))


class TestRealQuestions:
    @pytest.mark.parametrize("question", [
        "Is there a dog near the fence?",
        "How many dogs are standing on the grass?",
        "What kind of clothes is worn by the wizard?",
    ])
    def test_parsed_questions_validate_clean(self, question):
        report = validate_query_graph(generate_query_graph(question))
        assert not report.has_errors
        assert len(report) == 0


class TestMVQASweep:
    def test_all_mvqa_questions_validate_without_errors(self):
        from repro.dataset.mvqa import build_mvqa

        dataset = build_mvqa(seed=5, pool_size=1_200, image_count=400)
        parse_rejections = 0
        for question in dataset.questions:
            try:
                graph = generate_query_graph(question.text)
            except QueryParseError:
                # the deliberate Fig. 8(a)/Fig. 9 out-of-grammar
                # questions are rejected at parse time
                parse_rejections += 1
                continue
            report = validate_query_graph(graph)
            assert not report.has_errors, (
                f"{question.text!r}: {report.render()}"
            )
        assert parse_rejections <= 5


class TestParseAttribution:
    """Satellite: parse failures carry clause index + offending term."""

    def test_foreign_word_failure_names_the_term(self):
        with pytest.raises(QueryParseError) as info:
            generate_query_graph("Is there a canis near the fence?")
        assert info.value.term == "canis"

    def test_validate_spoc_failure_carries_clause_index(self):
        from repro.core.spoc_extract import validate_spoc

        broken = spoc(subject=None, obj=None, clause_index=2,
                      source_text="mystery clause")
        with pytest.raises(QueryParseError) as info:
            validate_spoc(broken)
        assert info.value.clause_index == 2
        assert info.value.term == "mystery clause"
