"""Executor integration: validation runs before Algorithm 3.

``ExecutorConfig.validation`` plumbs layer-1 static analysis into
``Executor.execute``: ``warn`` records counts and proceeds,
``strict`` fail-fasts with :class:`QueryValidationError`, ``off``
skips the validator entirely.
"""

import pytest

from repro.core import (
    ExecutorConfig,
    ExecutorStats,
    QueryGraphExecutor,
    QuestionType,
    generate_query_graph,
)
from repro.core.spoc import DependencyKind, QueryGraph, SPOC, Term
from repro.errors import QueryValidationError

from tests.core.test_executor import make_merged


def broken_graph():
    """A graph whose wiring is cyclic (QG002 ERROR)."""
    main = SPOC(subject=Term("dog", "dog"), predicate="be",
                object=Term("grass", "grass"), is_main=True,
                question_type=QuestionType.JUDGMENT)
    cond = SPOC(subject=Term("dog", "dog"), predicate="be",
                object=Term("fence", "fence"), depth=1)
    return QueryGraph(
        vertices=[main, cond],
        edges=[(0, 1, DependencyKind.S2S),
               (1, 0, DependencyKind.S2S)],
    )


class TestValidationModes:
    def test_unknown_mode_is_rejected_at_construction(self):
        with pytest.raises(ValueError):
            QueryGraphExecutor(
                make_merged(),
                config=ExecutorConfig(validation="paranoid"),
            )

    def test_strict_mode_rejects_broken_graph(self):
        executor = QueryGraphExecutor(
            make_merged(), config=ExecutorConfig(validation="strict")
        )
        with pytest.raises(QueryValidationError) as info:
            executor.execute(broken_graph())
        assert info.value.diagnostics is not None
        assert info.value.diagnostics.has_errors

    def test_strict_mode_passes_clean_graph(self):
        executor = QueryGraphExecutor(
            make_merged(), config=ExecutorConfig(validation="strict")
        )
        graph = generate_query_graph("Is there a dog near the fence?")
        answer = executor.execute(graph)
        assert answer.value in ("yes", "no")

    def test_warn_mode_records_stats_and_proceeds(self):
        stats = ExecutorStats()
        executor = QueryGraphExecutor(
            make_merged(), stats=stats,
            config=ExecutorConfig(validation="warn"),
        )
        graph = generate_query_graph(
            "How many dogs are standing on the grass?"
        )
        executor.execute(graph)
        report = stats.snapshot()
        assert report.graphs_validated == 1
        assert report.validation_errors == 0

    def test_warn_mode_counts_errors_without_raising(self):
        stats = ExecutorStats()
        executor = QueryGraphExecutor(
            make_merged(), stats=stats,
            config=ExecutorConfig(validation="warn"),
        )
        report = executor.validate(broken_graph())
        assert report.has_errors
        snapshot = stats.snapshot()
        assert snapshot.graphs_validated == 1
        assert snapshot.validation_errors >= 1

    def test_off_mode_skips_validation(self):
        stats = ExecutorStats()
        executor = QueryGraphExecutor(
            make_merged(), stats=stats,
            config=ExecutorConfig(validation="off"),
        )
        graph = generate_query_graph("Is there a dog near the fence?")
        executor.execute(graph)
        assert stats.snapshot().graphs_validated == 0
