"""Tests for the repo-invariant linter (layer 2).

Each ``RP###`` rule must fire on a fixture seeded with its violation
and stay silent on the real package source (the repo itself is the
negative fixture — ``repro lint-code`` gates CI on it).
"""

import textwrap

from repro.analysis import (
    RuleBinding,
    default_bindings,
    default_source_root,
    lint_paths,
    lint_source,
)
from repro.analysis.code_rules import (
    LockDisciplineRule,
    MutableDefaultRule,
    OrderedIterationRule,
    SeededRngRule,
    WallClockRule,
)


def lint_fixture(source, rule, path="src/repro/core/fixture.py"):
    """Lint one fixture under a single unrestricted rule binding."""
    return lint_source(textwrap.dedent(source), path,
                       bindings=(RuleBinding(rule),))


class TestWallClockRule:
    def test_time_time_fires(self):
        report = lint_fixture(
            """
            import time

            def stamp():
                return time.time()
            """,
            WallClockRule(),
        )
        assert [d.rule_id for d in report] == ["RP001"]
        assert "time.time" in report.diagnostics[0].message

    def test_aliased_perf_counter_fires(self):
        report = lint_fixture(
            """
            from time import perf_counter as pc

            def stamp():
                return pc()
            """,
            WallClockRule(),
        )
        assert len(report.by_rule("RP001")) == 1

    def test_datetime_now_fires(self):
        report = lint_fixture(
            """
            import datetime

            def today():
                return datetime.datetime.now()
            """,
            WallClockRule(),
        )
        assert len(report.by_rule("RP001")) == 1

    def test_simclock_use_is_clean(self):
        report = lint_fixture(
            """
            def run(clock):
                clock.charge("pos_tag")
                return clock.elapsed
            """,
            WallClockRule(),
        )
        assert len(report) == 0


class TestSeededRngRule:
    def test_unseeded_default_rng_fires(self):
        report = lint_fixture(
            """
            import numpy as np

            def make():
                return np.random.default_rng()
            """,
            SeededRngRule(),
        )
        assert len(report.by_rule("RP002")) == 1

    def test_seeded_default_rng_is_clean(self):
        report = lint_fixture(
            """
            import numpy as np

            def make(seed):
                return np.random.default_rng(seed)
            """,
            SeededRngRule(),
        )
        assert len(report) == 0

    def test_global_numpy_rng_fires(self):
        report = lint_fixture(
            """
            import numpy as np

            def sample():
                return np.random.randint(0, 10)
            """,
            SeededRngRule(),
        )
        assert len(report.by_rule("RP002")) == 1

    def test_stdlib_global_random_fires(self):
        report = lint_fixture(
            """
            import random

            def flip():
                return random.random()
            """,
            SeededRngRule(),
        )
        assert len(report.by_rule("RP002")) == 1


class TestLockDisciplineRule:
    def test_unguarded_mutation_fires(self):
        report = lint_fixture(
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    self._count += 1
            """,
            LockDisciplineRule(),
        )
        assert len(report.by_rule("RP003")) == 1
        assert "Counter.bump" in report.diagnostics[0].message

    def test_guarded_mutation_is_clean(self):
        report = lint_fixture(
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1
            """,
            LockDisciplineRule(),
        )
        assert len(report) == 0

    def test_unguarded_container_mutator_fires(self):
        report = lint_fixture(
            """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def register(self, item):
                    self._items.append(item)
            """,
            LockDisciplineRule(),
        )
        assert len(report.by_rule("RP003")) == 1

    def test_private_helper_is_exempt(self):
        report = lint_fixture(
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def _bump_locked(self):
                    self._count += 1
            """,
            LockDisciplineRule(),
        )
        assert len(report) == 0

    def test_class_without_lock_is_exempt(self):
        report = lint_fixture(
            """
            class Plain:
                def __init__(self):
                    self._count = 0

                def bump(self):
                    self._count += 1
            """,
            LockDisciplineRule(),
        )
        assert len(report) == 0


class TestOrderedIterationRule:
    def test_bare_set_literal_iteration_fires(self):
        report = lint_fixture(
            """
            def order(a, b):
                for item in {a, b}:
                    yield item
            """,
            OrderedIterationRule(),
        )
        assert len(report.by_rule("RP004")) == 1

    def test_set_call_in_comprehension_fires(self):
        report = lint_fixture(
            """
            def order(items):
                return [x for x in set(items)]
            """,
            OrderedIterationRule(),
        )
        assert len(report.by_rule("RP004")) == 1

    def test_sorted_set_is_clean(self):
        report = lint_fixture(
            """
            def order(items):
                for item in sorted(set(items)):
                    yield item
            """,
            OrderedIterationRule(),
        )
        assert len(report) == 0


class TestMutableDefaultRule:
    def test_list_default_fires(self):
        report = lint_fixture(
            """
            def collect(into=[]):
                return into
            """,
            MutableDefaultRule(),
        )
        assert len(report.by_rule("RP005")) == 1

    def test_dict_call_default_fires(self):
        report = lint_fixture(
            """
            def collect(into=dict()):
                return into
            """,
            MutableDefaultRule(),
        )
        assert len(report.by_rule("RP005")) == 1

    def test_none_default_is_clean(self):
        report = lint_fixture(
            """
            def collect(into=None):
                return into or []
            """,
            MutableDefaultRule(),
        )
        assert len(report) == 0


class TestBindings:
    def test_allowlist_exempts_file(self):
        binding = RuleBinding(WallClockRule(),
                              allow=("repro/simtime.py",))
        assert not binding.applies_to("src/repro/simtime.py")
        assert binding.applies_to("src/repro/core/executor.py")

    def test_path_scope_restricts_rule(self):
        binding = RuleBinding(LockDisciplineRule(),
                              paths=("repro/core/cache.py",))
        assert binding.applies_to("src/repro/core/cache.py")
        assert not binding.applies_to("src/repro/core/answer.py")

    def test_default_bindings_cover_all_rules(self):
        ids = {b.rule.rule_id for b in default_bindings()}
        assert ids == {"RP001", "RP002", "RP003", "RP004", "RP005",
                       "RP006", "RP007"}


class TestSyntaxError:
    def test_unparseable_source_reports_rp000(self):
        report = lint_source("def broken(:\n", "src/repro/x.py")
        assert [d.rule_id for d in report] == ["RP000"]
        assert report.has_errors


class TestRealRepository:
    def test_package_source_is_clean(self):
        """The acceptance gate: zero diagnostics on the shipped tree."""
        report = lint_paths([default_source_root()])
        assert len(report) == 0, report.render()
