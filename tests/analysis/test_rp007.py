"""Tests for RP007: candidate-index discipline and epoch-tagged keys."""

import textwrap

from repro.analysis import RuleBinding, lint_source
from repro.analysis.code_rules import CandidateIndexDisciplineRule


def lint(source, path="src/repro/core/fixture.py"):
    return lint_source(textwrap.dedent(source), path,
                       bindings=(RuleBinding(CandidateIndexDisciplineRule()),))


class TestIndexMutation:
    def test_direct_add_label_fires(self):
        report = lint(
            """
            def sneak(graph, label):
                graph.candidate_index.add_label(label)
            """
        )
        assert [d.rule_id for d in report] == ["RP007"]
        assert "add_label" in next(iter(report)).message

    def test_direct_remove_label_fires(self):
        report = lint(
            """
            def sneak(self, label):
                self.graph.candidate_index.remove_label(label)
            """
        )
        assert [d.rule_id for d in report] == ["RP007"]

    def test_lookup_is_fine(self):
        report = lint(
            """
            def probe(self, label):
                return self.graph.candidate_index.match(label, 0.34)
            """
        )
        assert len(report) == 0

    def test_unrelated_add_label_is_fine(self):
        # only candidate-index receivers are in scope for the rule
        report = lint(
            """
            def annotate(store, label):
                store.add_label(label)
            """
        )
        assert len(report) == 0

    def test_allowlisted_module_is_exempt(self):
        bindings = (RuleBinding(
            CandidateIndexDisciplineRule(),
            allow=("repro/graph/model.py",),
        ),)
        report = lint_source(
            "self.candidate_index.add_label(label)\n",
            "src/repro/graph/model.py", bindings=bindings,
        )
        assert len(report) == 0


class TestEpochTaggedKeys:
    def test_label_only_scope_key_fires(self):
        report = lint(
            """
            def key_for(label):
                return ("scope", label.lower())
            """
        )
        assert [d.rule_id for d in report] == ["RP007"]
        assert "epoch" in next(iter(report)).message

    def test_constant_second_element_fires(self):
        report = lint(
            """
            def key_for(owner, head):
                return ("scope-poss", 7, owner, head)
            """
        )
        assert [d.rule_id for d in report] == ["RP007"]

    def test_bare_kind_tag_fires(self):
        report = lint('key = ("path",)\n')
        assert [d.rule_id for d in report] == ["RP007"]

    def test_epoch_name_is_fine(self):
        report = lint(
            """
            def key_for(self, label):
                epoch = self.graph.epoch
                return ("scope", epoch, label.lower())
            """
        )
        assert len(report) == 0

    def test_epoch_call_is_fine(self):
        report = lint(
            """
            def key_for(self, a, b):
                return ("path", self._observe_epoch(), a, b)
            """
        )
        assert len(report) == 0

    def test_unrelated_tuples_are_fine(self):
        report = lint(
            """
            POINT = ("x", "y")
            ROW = ("scoped", 1)
            """
        )
        assert len(report) == 0


class TestRepoIsClean:
    def test_package_source_passes_rp007(self):
        from repro.analysis import (
            default_bindings,
            default_source_root,
            lint_paths,
        )
        report = lint_paths([default_source_root()], default_bindings())
        assert not [d for d in report if d.rule_id == "RP007"]
