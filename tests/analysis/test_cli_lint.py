"""CLI tests for ``repro lint-queries`` and ``repro lint-code``."""

import json
import textwrap

from repro.cli import main


class TestLintQueriesCommand:
    def test_clean_question_exits_zero(self, capsys):
        code = main(["lint-queries", "Is there a dog near the fence?"])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 question(s): 1 clean" in out

    def test_parse_rejection_is_reported_not_fatal(self, capsys):
        code = main(["lint-queries",
                     "Is there a canis near the fence?"])
        out = capsys.readouterr().out
        assert code == 0
        assert "PARSE-REJECTED" in out
        assert "'canis'" in out

    def test_strict_parse_gates_on_rejections(self, capsys):
        code = main(["lint-queries", "--strict-parse",
                     "Is there a canis near the fence?"])
        assert code == 1


class TestLintCodeCommand:
    def test_repo_source_is_clean(self, capsys):
        code = main(["lint-code"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 error(s)" in out

    def test_seeded_violation_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "core" / "hot.py"
        bad.parent.mkdir()
        bad.write_text(textwrap.dedent(
            """
            import time

            def stamp():
                return time.time()
            """
        ))
        code = main(["lint-code", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "[RP001]" in out


class TestJsonOutput:
    def test_lint_code_json_is_machine_readable(self, capsys):
        code = main(["lint-code", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        data = json.loads(out)
        assert data["errors"] == 0
        assert data["diagnostics"] == []

    def test_lint_code_json_carries_findings(self, tmp_path, capsys):
        bad = tmp_path / "core" / "hot.py"
        bad.parent.mkdir()
        bad.write_text("import time\n\ndef stamp():\n    return time.time()\n")
        code = main(["lint-code", "--json", str(tmp_path)])
        data = json.loads(capsys.readouterr().out)
        assert code == 1
        assert data["errors"] == 1
        assert data["diagnostics"][0]["rule_id"] == "RP001"

    def test_lint_queries_json_reports_parse_rejection(self, capsys):
        code = main(["lint-queries", "--json",
                     "Is there a canis near the fence?"])
        data = json.loads(capsys.readouterr().out)
        assert code == 0
        assert [d["rule_id"] for d in data["diagnostics"]] == ["QG000"]

    def test_lint_queries_json_clean_question(self, capsys):
        code = main(["lint-queries", "--json",
                     "Is there a dog near the fence?"])
        data = json.loads(capsys.readouterr().out)
        assert code == 0
        assert data == {"errors": 0, "warnings": 0, "notes": 0,
                        "diagnostics": []}


class TestSanitizeCommand:
    def test_clean_run_exits_zero(self, capsys):
        code = main(["sanitize", "--scenes", "2", "--repeat", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "concurrency sanitizer report" in out
        assert "findings: none" in out

    def test_same_seed_output_is_byte_identical(self, capsys):
        main(["sanitize", "--scenes", "2", "--repeat", "1", "--seed", "3"])
        first = capsys.readouterr().out
        main(["sanitize", "--scenes", "2", "--repeat", "1", "--seed", "3"])
        second = capsys.readouterr().out
        assert first == second

    def test_json_report_lists_lock_roles(self, capsys):
        code = main(["sanitize", "--scenes", "2", "--repeat", "1",
                     "--json"])
        data = json.loads(capsys.readouterr().out)
        assert code == 0
        assert data["findings"] == []
        assert "cache.scope" in data["lock_roles"]
        assert "batch.shards" in data["lock_roles"]
