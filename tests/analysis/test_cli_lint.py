"""CLI tests for ``repro lint-queries`` and ``repro lint-code``."""

import textwrap

from repro.cli import main


class TestLintQueriesCommand:
    def test_clean_question_exits_zero(self, capsys):
        code = main(["lint-queries", "Is there a dog near the fence?"])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 question(s): 1 clean" in out

    def test_parse_rejection_is_reported_not_fatal(self, capsys):
        code = main(["lint-queries",
                     "Is there a canis near the fence?"])
        out = capsys.readouterr().out
        assert code == 0
        assert "PARSE-REJECTED" in out
        assert "'canis'" in out

    def test_strict_parse_gates_on_rejections(self, capsys):
        code = main(["lint-queries", "--strict-parse",
                     "Is there a canis near the fence?"])
        assert code == 1


class TestLintCodeCommand:
    def test_repo_source_is_clean(self, capsys):
        code = main(["lint-code"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 error(s)" in out

    def test_seeded_violation_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "core" / "hot.py"
        bad.parent.mkdir()
        bad.write_text(textwrap.dedent(
            """
            import time

            def stamp():
                return time.time()
            """
        ))
        code = main(["lint-code", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "[RP001]" in out
