"""Tests for the shared diagnostic model."""

from repro.analysis import (
    Diagnostic,
    DiagnosticReport,
    Location,
    Severity,
)


def diag(rule_id="QG001", severity=Severity.ERROR, **loc):
    return Diagnostic(rule_id, severity, Location(**loc),
                      f"finding from {rule_id}")


class TestSeverity:
    def test_ordering_lets_max_pick_worst(self):
        assert max(Severity.INFO, Severity.ERROR,
                   Severity.WARNING) is Severity.ERROR

    def test_str_is_the_name(self):
        assert str(Severity.WARNING) == "WARNING"


class TestLocation:
    def test_code_location_renders_file_line_column(self):
        loc = Location(file="src/x.py", line=12, column=4)
        assert str(loc) == "src/x.py:12:4"

    def test_graph_location_renders_vertex_and_edge(self):
        assert str(Location(vertex=2)) == "v2"
        assert str(Location(edge=(0, 3))) == "edge v0->v3"

    def test_empty_location_is_graph_wide(self):
        assert str(Location()) == "<graph>"


class TestDiagnostic:
    def test_render_includes_rule_severity_and_hint(self):
        d = Diagnostic("RP001", Severity.ERROR,
                       Location(file="a.py", line=3),
                       "wall-clock read", hint="use SimClock")
        text = d.render()
        assert "a.py:3" in text
        assert "ERROR" in text
        assert "[RP001]" in text
        assert "hint: use SimClock" in text

    def test_render_omits_empty_hint(self):
        assert "hint" not in diag().render()


class TestDiagnosticReport:
    def test_counts_and_gate(self):
        report = DiagnosticReport()
        report.add(diag(severity=Severity.ERROR))
        report.add(diag("QG008", Severity.WARNING))
        report.add(diag("QG008", Severity.WARNING))
        assert report.count(Severity.ERROR) == 1
        assert report.count(Severity.WARNING) == 2
        assert len(report.errors) == 1
        assert len(report.warnings) == 2
        assert report.has_errors
        assert len(report) == 3

    def test_empty_report_does_not_gate(self):
        assert not DiagnosticReport().has_errors

    def test_extend_accepts_report_and_list(self):
        report = DiagnosticReport()
        other = DiagnosticReport([diag()])
        report.extend(other)
        report.extend([diag("QG002")])
        assert len(report) == 2

    def test_by_rule_and_rule_ids(self):
        report = DiagnosticReport(
            [diag("QG002"), diag("QG001"), diag("QG002")]
        )
        assert len(report.by_rule("QG002")) == 2
        assert report.rule_ids() == ["QG002", "QG001"]

    def test_sorted_puts_errors_first(self):
        report = DiagnosticReport([
            diag("QG008", Severity.WARNING, vertex=0),
            diag("QG001", Severity.ERROR, vertex=5),
        ])
        ordered = report.sorted()
        assert [d.rule_id for d in ordered] == ["QG001", "QG008"]

    def test_summary_tallies_by_severity(self):
        report = DiagnosticReport([diag(), diag("X", Severity.WARNING)])
        assert report.summary() == "1 error(s), 1 warning(s), 0 note(s)"


class TestJsonSerialization:
    def test_location_round_trips(self):
        loc = Location(file="src/x.py", line=3, column=7,
                       vertex=2, edge=(1, 4))
        assert Location.from_dict(loc.to_dict()) == loc
        assert Location.from_dict(Location().to_dict()) == Location()

    def test_diagnostic_round_trips(self):
        original = diag("QG003", Severity.WARNING, file="src/x.py",
                        line=9)
        rebuilt = Diagnostic.from_dict(original.to_dict())
        assert rebuilt == original

    def test_report_round_trips(self):
        report = DiagnosticReport([
            diag("QG001", Severity.ERROR, vertex=1),
            diag("QG008", Severity.WARNING, file="src/x.py", line=2),
            diag("QG009", Severity.INFO),
        ])
        data = report.to_dict()
        assert data["errors"] == 1
        assert data["warnings"] == 1
        assert data["notes"] == 1
        rebuilt = DiagnosticReport.from_dict(data)
        assert list(rebuilt) == list(report)

    def test_to_json_key_order_is_stable(self):
        report = DiagnosticReport([diag(file="src/x.py", line=1)])
        first = report.to_json()
        second = DiagnosticReport.from_dict(report.to_dict()).to_json()
        assert first == second
        assert first.index('"errors"') < first.index('"warnings"')
        assert first.index('"warnings"') < first.index('"diagnostics"')

    def test_empty_report_to_json(self):
        import json

        data = json.loads(DiagnosticReport().to_json())
        assert data == {"errors": 0, "warnings": 0, "notes": 0,
                        "diagnostics": []}
