"""Project rules RP008-RP011 over the concurrency fixtures.

Each rule must fire exactly at the planted sites in
``tests/analysis/fixtures/`` and stay silent on the clean fixture and
on the shipped source tree (post-triage).
"""

import ast
from pathlib import Path

from repro.analysis.code_linter import (
    LOCK_MODULES,
    RuleBinding,
    default_project_bindings,
    default_source_root,
    lint_paths,
)
from repro.analysis.concurrency import (
    ALL_PROJECT_RULES,
    BlockingUnderLockRule,
    DispatchUnderLockRule,
    LockOrderAnalysis,
    LockOrderInversionRule,
    LockPublicationRule,
)

FIXTURES = Path(__file__).parent / "fixtures"


def _analyze(*names: str) -> LockOrderAnalysis:
    trees = {}
    for name in names:
        path = FIXTURES / name
        trees[str(path)] = ast.parse(path.read_text())
    return LockOrderAnalysis(trees)


def _lines(diagnostics) -> list[int]:
    return sorted(d.location.line for d in diagnostics)


class TestLockOrderInversionRule:
    def test_inversion_fixture_fires_once(self):
        analysis = _analyze("lock_inversion.py")
        found = LockOrderInversionRule().check_project(analysis)
        assert len(found) == 1
        assert found[0].rule_id == "RP008"
        assert "AccountA._lock" in found[0].message
        assert "AccountB._lock" in found[0].message

    def test_clean_fixture_is_silent(self):
        analysis = _analyze("clean_module.py")
        assert LockOrderInversionRule().check_project(analysis) == []


class TestBlockingUnderLockRule:
    def test_all_four_blocking_sites_fire(self):
        analysis = _analyze("blocking_under_lock.py")
        found = BlockingUnderLockRule().check_project(analysis)
        assert [d.rule_id for d in found] == ["RP009"] * 4
        messages = " ".join(d.message for d in found)
        assert ".result(" in messages
        assert ".get(" in messages
        assert ".wait(" in messages
        assert ".join(" in messages

    def test_condition_wait_on_own_lock_is_exempt(self):
        # clean_module.Tidy.await_version waits on a Condition built
        # over the very lock it holds -- the one legitimate shape
        analysis = _analyze("clean_module.py")
        assert BlockingUnderLockRule().check_project(analysis) == []


class TestDispatchUnderLockRule:
    def test_callback_invocations_under_lock_fire(self):
        analysis = _analyze("callback_under_lock.py")
        found = DispatchUnderLockRule().check_project(analysis)
        assert len(found) == 2
        assert {d.rule_id for d in found} == {"RP010"}

    def test_callback_after_release_is_silent(self):
        analysis = _analyze("clean_module.py")
        assert DispatchUnderLockRule().check_project(analysis) == []


class TestLockPublicationRule:
    def test_return_argument_and_foreign_acquire_fire(self):
        analysis = _analyze("callback_under_lock.py")
        found = LockPublicationRule().check_project(analysis)
        assert len(found) == 3
        assert {d.rule_id for d in found} == {"RP011"}

    def test_condition_alias_is_not_publication(self):
        # threading.Condition(self._lock) in __init__ is the sanctioned
        # way to share a lock with its own condition variable
        analysis = _analyze("clean_module.py")
        assert LockPublicationRule().check_project(analysis) == []

    def test_clock_attribute_is_not_a_lock(self):
        # "clock" contains "lock" as a substring; the name heuristic
        # must match word segments only, so Scheduler.clock — stored in
        # __init__ and handed to a callback — stays publishable
        analysis = _analyze("clean_module.py")
        klass = next(k for m in analysis.modules.values()
                     for k in m.classes.values()
                     if k.name == "Scheduler")
        assert "clock" not in klass.locks
        assert "blocked" not in klass.locks
        assert LockPublicationRule().check_project(analysis) == []


class TestFixturesThroughLinter:
    def test_lint_paths_reports_every_planted_site(self):
        bindings = [RuleBinding(rule()) for rule in ALL_PROJECT_RULES]
        report = lint_paths([FIXTURES], bindings=[],
                            project_bindings=bindings)
        by_rule = {rid: report.by_rule(rid)
                   for rid in ("RP008", "RP009", "RP010", "RP011")}
        assert len(by_rule["RP008"]) == 1
        assert len(by_rule["RP009"]) == 4
        assert len(by_rule["RP010"]) == 2
        assert len(by_rule["RP011"]) == 3
        clean = str(FIXTURES / "clean_module.py")
        assert all(d.location.file != clean for d in report)


class TestDefaultProjectBindings:
    def test_bindings_cover_rp008_to_rp011(self):
        ids = {b.rule.rule_id for b in default_project_bindings()}
        assert ids == {"RP008", "RP009", "RP010", "RP011"}

    def test_lock_modules_exist_on_disk(self):
        root = default_source_root().parent
        for module in LOCK_MODULES:
            assert (root / module).is_file(), module


class TestRealRepositoryPostTriage:
    def test_shipped_tree_has_zero_project_findings(self):
        """Satellite 1 acceptance: every finding fixed or allowlisted."""
        report = lint_paths([default_source_root()])
        concurrency = [d for d in report
                       if d.rule_id in ("RP008", "RP009", "RP010", "RP011")]
        assert concurrency == [], report.render()
