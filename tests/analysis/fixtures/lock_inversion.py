"""Fixture: a two-lock order inversion (RP008 must fire here).

``AccountA.transfer_ab`` nests ``AccountB._lock`` inside
``AccountA._lock``; ``AccountB.transfer_ba`` nests them the other
way around.  Two threads running one each can deadlock.
"""

from __future__ import annotations

import threading


class AccountB:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.balance = 0

    def credit(self, amount: int) -> None:
        with self._lock:
            self.balance += amount

    def transfer_ba(self, amount: int, target: AccountA) -> None:
        with self._lock:
            self.balance -= amount
            target.debit_locked(amount)


class AccountA:
    def __init__(self, peer: AccountB) -> None:
        self._lock = threading.Lock()
        self.peer = peer
        self.balance = 0

    def transfer_ab(self, amount: int) -> None:
        with self._lock:
            self.balance -= amount
            self.peer.credit(amount)

    def debit_locked(self, amount: int) -> None:
        with self._lock:
            self.balance += amount
