"""Fixture: dispatch-under-lock and lock publication (RP010/RP011).

``Notifier.fire`` runs an arbitrary stored callback inside its
critical section (RP010); ``apply`` does the same with a callable
parameter (RP010).  ``Leaky`` returns its lock, hands it to a
helper, and ``grab_foreign`` reaches into another object's private
lock (three RP011 findings).
"""

from __future__ import annotations

import threading
from collections.abc import Callable


class Notifier:
    def __init__(self, on_change: Callable[[int], None]) -> None:
        self._lock = threading.Lock()
        self.on_change = on_change
        self.version = 0

    def fire(self) -> None:
        with self._lock:
            self.version += 1
            self.on_change(self.version)

    def apply(self, mutator: Callable[[int], int]) -> None:
        with self._lock:
            self.version = mutator(self.version)


def _audit(lock: threading.Lock) -> None:
    del lock


class Leaky:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.state = 0

    def expose(self) -> threading.Lock:
        return self._lock

    def share(self) -> None:
        _audit(self._lock)

    def grab_foreign(self, other: Notifier) -> None:
        with other._lock:
            self.state += 1
