"""Fixture: blocking primitives inside critical sections (RP009).

Every method here pins its lock across a wait — ``Future.result``,
``Queue.get``, ``Event.wait``, and a thread ``join`` — so each is
one expected RP009 finding.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future


class ResultUnderLock:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0

    def wait_for(self, future: Future[int]) -> int:
        with self._lock:
            self.value = future.result()
            return self.value


class QueueUnderLock:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.work_queue: queue.Queue[int] = queue.Queue()

    def take(self) -> int:
        with self._lock:
            return self.work_queue.get()


class EventUnderLock:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.ready = threading.Event()

    def wait_ready(self) -> None:
        with self._lock:
            self.ready.wait()


class JoinUnderLock:
    def __init__(self, worker: threading.Thread) -> None:
        self._lock = threading.Lock()
        self.worker = worker

    def stop(self) -> None:
        with self._lock:
            self.worker.join()
