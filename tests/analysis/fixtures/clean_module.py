"""Fixture: disciplined lock usage — no RP008–RP011 rule may fire.

One lock per class, no nesting across classes in conflicting
orders, waits happen outside critical sections, callbacks are
invoked after release, and no lock ever escapes its owner.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from concurrent.futures import Future


class Tidy:
    def __init__(self, on_change: Callable[[int], None]) -> None:
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self.on_change = on_change
        self.version = 0

    def bump(self) -> int:
        with self._lock:
            self.version += 1
            snapshot = self.version
        self.on_change(snapshot)
        return snapshot

    def wait_for(self, future: Future[int]) -> int:
        value = future.result()
        with self._lock:
            self.version = value
            self._cond.notify_all()
        return value

    def await_version(self, minimum: int) -> int:
        with self._lock:
            while self.version < minimum:
                self._cond.wait()
            return self.version


class TidyPair:
    """Nests ``Tidy._lock`` inside its own — in one order only."""

    def __init__(self, inner: Tidy) -> None:
        self._lock = threading.Lock()
        self.inner = inner
        self.total = 0

    def record(self) -> None:
        with self._lock:
            self.total += 1
        self.inner.bump()


class Scheduler:
    """``clock`` and ``blocked`` merely contain the letters l-o-c-k;
    neither is a lock and neither may trip the lock-name heuristics."""

    def __init__(self, clock: Callable[[], float]) -> None:
        self._lock = threading.Lock()
        self.clock = clock
        self.blocked = 0

    def tick(self, sink: Callable[[float], None]) -> float:
        now = self.clock()
        sink(self.clock)  # publishing a clock is not RP011
        with self._lock:
            self.blocked += 1
        return now
