"""Runtime lock/race sanitizer ("tsan-lite") unit and pipeline tests."""

import threading

import pytest

from repro import locks
from repro.analysis.concurrency.sanitizer import (
    SanitizedLock,
    Sanitizer,
    SanitizerConfig,
)
from repro.core import SVQA, SVQAConfig
from repro.dataset.kg import build_commonsense_kg
from repro.synth import SceneGenerator


@pytest.fixture(autouse=True)
def _pristine_observer():
    """Detach any process-global observer (e.g. SVQA_SANITIZE=1 runs).

    These tests manage observer installation themselves; restore
    whatever was active afterwards so the rest of the suite keeps its
    environment-selected sanitizer.
    """
    previous = locks.current()
    if previous is not None:
        locks.uninstall(previous)
    yield
    leftover = locks.current()
    if leftover is not None:
        locks.uninstall(leftover)
    if previous is not None:
        locks.install(previous)


def finding_kinds(sanitizer):
    return [f.kind for f in sanitizer.report().findings]


class TestLockOrderTracking:
    def test_consistent_nesting_is_clean(self):
        san = Sanitizer(SanitizerConfig(seed=1))
        a = san.wrap(threading.Lock(), "a")
        b = san.wrap(threading.Lock(), "b")
        for _ in range(3):
            with a, b:
                pass
        report = san.report()
        assert report.clean
        assert "a -> b" in report.order_edges

    def test_opposite_orders_report_inversion(self):
        san = Sanitizer(SanitizerConfig(seed=1))
        a = san.wrap(threading.Lock(), "a")
        b = san.wrap(threading.Lock(), "b")
        with a, b:
            pass
        with b, a:
            pass
        report = san.report()
        assert [f.kind for f in report.findings] == [
            "lock-order-inversion"]
        assert report.findings[0].subject == "a <-> b"

    def test_inversion_across_threads(self):
        san = Sanitizer(SanitizerConfig(seed=1))
        a = san.wrap(threading.Lock(), "a")
        b = san.wrap(threading.Lock(), "b")

        def forward():
            with a, b:
                pass

        def backward():
            with b, a:
                pass

        for target in (forward, backward):
            worker = threading.Thread(target=target)
            worker.start()
            worker.join()
        assert finding_kinds(san) == ["lock-order-inversion"]

    def test_reentrant_reacquisition_is_not_an_edge(self):
        san = Sanitizer(SanitizerConfig(seed=1))
        lock = san.wrap(threading.RLock(), "r")
        with lock, lock:
            pass
        report = san.report()
        assert report.clean
        assert report.order_edges == ()


class TestRaceTracking:
    def test_unsynchronized_writes_are_reported(self):
        san = Sanitizer(SanitizerConfig(seed=1))
        san.note_access("shared", None, write=True)
        worker = threading.Thread(
            target=lambda: san.note_access("shared", None, write=True))
        worker.start()
        worker.join()
        findings = san.report().findings
        assert [f.kind for f in findings] == ["unsynchronized-write-write"]
        assert findings[0].subject == "shared"

    def test_common_lock_serializes_access(self):
        san = Sanitizer(SanitizerConfig(seed=1))
        guard = san.wrap(threading.Lock(), "guard")

        def touch():
            with guard:
                san.note_access("shared", None, write=True)

        touch()
        worker = threading.Thread(target=touch)
        worker.start()
        worker.join()
        assert san.report().clean

    def test_fork_join_establishes_happens_before(self):
        san = Sanitizer(SanitizerConfig(seed=1))
        san.note_access("shared", None, write=True)
        san.note_fork()
        worker = threading.Thread(
            target=lambda: san.note_access("shared", None, write=True))
        worker.start()
        worker.join()
        san.note_join()
        san.note_access("shared", None, write=True)
        assert san.report().clean

    def test_distinct_keys_do_not_conflict(self):
        san = Sanitizer(SanitizerConfig(seed=1))
        san.note_access("shards", 0, write=True)
        worker = threading.Thread(
            target=lambda: san.note_access("shards", 1, write=True))
        worker.start()
        worker.join()
        assert san.report().clean


class TestSanitizedLock:
    def test_wraps_as_context_manager_and_condition_base(self):
        san = Sanitizer(SanitizerConfig(seed=1))
        lock = san.wrap(threading.Lock(), "cond.base")
        assert isinstance(lock, SanitizedLock)
        cond = threading.Condition(lock)
        with cond:
            cond.notify_all()
        assert not lock.locked()

    def test_nonblocking_acquire_failure_emits_no_event(self):
        san = Sanitizer(SanitizerConfig(seed=1))
        lock = san.wrap(threading.Lock(), "probe")
        lock._inner.acquire()
        try:
            assert lock.acquire(False) is False
        finally:
            lock._inner.release()
        with lock:
            pass
        assert san.report().clean


class TestObserverSeam:
    def test_wrap_lock_is_identity_when_inactive(self):
        raw = threading.Lock()
        assert locks.wrap_lock(raw, "x") is raw

    def test_install_conflict_raises_and_uninstall_is_idempotent(self):
        first = Sanitizer(SanitizerConfig(seed=1))
        second = Sanitizer(SanitizerConfig(seed=2))
        locks.install(first)
        try:
            with pytest.raises(RuntimeError):
                locks.install(second)
            locks.install(first)  # re-install of the same observer: ok
        finally:
            locks.uninstall(first)
        locks.uninstall(first)  # second uninstall is a no-op
        assert locks.current() is None


def run_sanitized_battery(workers):
    scenes = SceneGenerator(seed=11).generate_pool(4)
    config = SVQAConfig(workers=workers,
                        sanitizer=SanitizerConfig(seed=11))
    system = SVQA(scenes, build_commonsense_kg(), config)
    try:
        system.build()
        questions = [
            "Is there a dog near the fence?",
            "How many dogs are standing on the grass?",
            "What color is the car near the tree?",
        ] * 2
        answers = system.answer_many(questions)
        report = system.sanitizer.report()
    finally:
        system.release_sanitizer()
    return [a.value for a in answers], report


class TestPipelineUnderSanitizer:
    def test_full_pipeline_is_clean_and_deterministic(self):
        values_one, report_one = run_sanitized_battery(workers=2)
        values_two, report_two = run_sanitized_battery(workers=2)
        assert report_one.clean, report_one.render()
        assert report_one.render() == report_two.render()
        assert values_one == values_two

    def test_report_is_stable_across_worker_counts(self):
        _, serial = run_sanitized_battery(workers=1)
        _, threaded = run_sanitized_battery(workers=2)
        assert serial.render() == threaded.render()

    def test_answers_bit_identical_with_sanitizer_off(self):
        sanitized, _ = run_sanitized_battery(workers=2)
        scenes = SceneGenerator(seed=11).generate_pool(4)
        system = SVQA(scenes, build_commonsense_kg(),
                      SVQAConfig(workers=2))
        system.build()
        questions = [
            "Is there a dog near the fence?",
            "How many dogs are standing on the grass?",
            "What color is the car near the tree?",
        ] * 2
        plain = [a.value for a in system.answer_many(questions)]
        assert plain == sanitized

    def test_sanitizer_off_installs_nothing(self):
        scenes = SceneGenerator(seed=11).generate_pool(2)
        system = SVQA(scenes, build_commonsense_kg(), SVQAConfig())
        system.build()
        assert system.sanitizer is None
        assert locks.current() is None
