"""End-to-end integration tests spanning all subsystems."""

import pytest

from repro.core import SVQA, SVQAConfig
from repro.core.spoc import QuestionType
from repro.dataset.mvqa import build_mvqa
from repro.eval.harness import evaluate


@pytest.fixture(scope="module")
def small_world():
    """A small but complete MVQA build + SVQA system."""
    dataset = build_mvqa(seed=5, pool_size=1_200, image_count=400)
    svqa = SVQA(dataset.scenes, dataset.kg)
    svqa.build()
    return dataset, svqa


class TestEndToEnd:
    def test_answers_every_question(self, small_world):
        dataset, svqa = small_world
        answers = svqa.answer_many([q.text for q in dataset.questions])
        assert len(answers) == len(dataset.questions)
        assert all(a.value for a in answers)

    def test_accuracy_well_above_chance(self, small_world):
        dataset, svqa = small_world
        result = evaluate("SVQA", dataset.questions, svqa.answer_many,
                          lambda: svqa.elapsed)
        # the paper reports 85.8%; any healthy build clears 60% even at
        # this reduced scale
        assert result.report.overall > 0.6

    def test_every_type_answerable(self, small_world):
        dataset, svqa = small_world
        result = evaluate("SVQA", dataset.questions, svqa.answer_many,
                          lambda: svqa.elapsed)
        for qtype in QuestionType:
            assert result.report.accuracy(qtype) > 0.4

    def test_repeat_batch_same_answers(self, small_world):
        dataset, svqa = small_world
        questions = [q.text for q in dataset.questions[:20]]
        first = [a.value for a in svqa.answer_many(questions)]
        second = [a.value for a in svqa.answer_many(questions)]
        assert first == second

    def test_merged_graph_scales_with_images(self, small_world):
        dataset, svqa = small_world
        # thousands of instance vertices over 400 images
        instances = [
            v for v in svqa.merged.graph.vertices()
            if v.props.get("kind") == "instance"
        ]
        assert len(instances) > 400

    def test_scheduler_and_cache_do_not_change_answers(self, small_world):
        dataset, _ = small_world
        questions = [q.text for q in dataset.questions[:25]]

        plain = SVQA(dataset.scenes, dataset.kg, SVQAConfig(
            enable_scope_cache=False, enable_path_cache=False,
            enable_scheduler=False,
        ))
        plain.build()
        tuned = SVQA(dataset.scenes, dataset.kg, SVQAConfig())
        tuned.build()

        assert [a.value for a in plain.answer_many(questions)] == \
            [a.value for a in tuned.answer_many(questions)]
