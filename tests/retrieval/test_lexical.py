"""Unit tests for the BM25-ranked LexicalIndex.

The fallback confidence contract hangs on one inequality: for any
query, ``score(query, doc) <= self_score(doc)`` (query terms are
deduplicated, so a query can never out-score the document matched
against itself), which keeps the normalized retrieval confidence in
``[0, 1]``.
"""

import pytest

from repro.graph import Graph
from repro.retrieval import LexicalIndex, tokenize

CORPUS = [
    "man in hat", "woman", "dog", "dog house", "fire hydrant",
    "traffic light", "sofa", "grass",
]


def make_index(*labels):
    index = LexicalIndex()
    for label in labels:
        index.add_document(label)
    return index


class TestTokenize:
    def test_lowercases_and_splits_punctuation(self):
        assert tokenize("The Man-in-Hat!") == ["the", "man", "in", "hat"]

    def test_empty(self):
        assert tokenize("  ?!  ") == []


class TestRanking:
    def test_best_match_first(self):
        index = make_index(*CORPUS)
        ranked = index.rank("the man with the hat")
        assert ranked[0][0] == "man in hat"

    def test_scores_descend(self):
        index = make_index(*CORPUS)
        scores = [score for _, score in index.rank("dog house")]
        assert scores == sorted(scores, reverse=True)

    def test_limit(self):
        index = make_index(*CORPUS)
        assert len(index.rank("man", limit=1)) == 1

    def test_no_overlap_no_results(self):
        index = make_index(*CORPUS)
        assert index.rank("zzzxqw") == []

    def test_duplicate_query_terms_are_deduplicated(self):
        index = make_index(*CORPUS)
        assert index.rank("dog dog dog") == index.rank("dog")

    def test_query_never_beats_self_score(self):
        index = make_index(*CORPUS)
        queries = ["the man with the hat", "dog house dog", "woman",
                   "fire", "a man and a woman near the dog"]
        for query in queries:
            for label, score in index.rank(query):
                assert score <= index.self_score(label) + 1e-12, \
                    (query, label)

    def test_self_score_of_unknown_label_is_zero(self):
        index = make_index("dog")
        assert index.self_score("cat") == 0.0

    def test_ties_break_by_insertion_order(self):
        index = make_index("red ball", "red cube")
        ranked = index.rank("red")
        assert [label for label, _ in ranked] == \
            ["red ball", "red cube"]
        assert ranked[0][1] == ranked[1][1]


class TestRefcounting:
    def test_duplicate_documents_survive_one_removal(self):
        index = make_index("dog", "dog")
        index.remove_document("dog")
        assert index.rank("dog")
        index.remove_document("dog")
        assert index.rank("dog") == []

    def test_remove_unknown_document_raises(self):
        index = make_index("dog")
        with pytest.raises(KeyError):
            index.remove_document("cat")

    def test_stats(self):
        index = make_index("dog house", "dog")
        stats = index.stats()
        assert stats["labels"] == 2
        assert stats["terms"] == 2
        assert stats["total_tokens"] == 3


class TestGraphMaintenance:
    def test_add_vertex_indexes_label(self):
        graph = Graph(name="g")
        graph.add_vertex("fire hydrant", {})
        assert graph.lexical_index.rank("hydrant")

    def test_remove_vertex_unindexes_last_copy(self):
        graph = Graph(name="g")
        a = graph.add_vertex("dog", {})
        graph.add_vertex("dog", {})
        graph.remove_vertex(a.id)
        assert graph.lexical_index.rank("dog")

    def test_relabel_vertex_moves_document(self):
        graph = Graph(name="g")
        v = graph.add_vertex("dog", {})
        graph.relabel_vertex(v.id, "cat")
        assert graph.lexical_index.rank("dog") == []
        assert graph.lexical_index.rank("cat")
