"""Tests for the BM25-ranked retrieval fallback rung.

The degraded-parse ladder's new top rung grounds fallback queries in
labels that actually exist in the merged graph and replaces the flat
``KEYWORD_FALLBACK_CONFIDENCE`` with a normalized retrieval score in
``[0, 1]``.
"""

import pytest

from repro.core import SVQA, SVQAConfig, RetrievalConfig
from repro.core.pipeline import generate_query_graph
from repro.dataset.kg import build_commonsense_kg
from repro.errors import TokenizationError
from repro.graph import Graph
from repro.resilience import ResilienceConfig
from repro.resilience.degrade import (
    KEYWORD_FALLBACK_CONFIDENCE,
    retrieval_query_graph,
)
from repro.synth import SceneGenerator


def make_graph():
    graph = Graph(name="scene")
    dog = graph.add_vertex("dog", {})
    grass = graph.add_vertex("grass", {})
    hydrant = graph.add_vertex("fire hydrant", {})
    graph.add_vertex("traffic light", {})
    graph.add_edge(dog.id, grass.id, "standing on")
    graph.add_edge(hydrant.id, grass.id, "near")
    return graph


class TestRetrievalQueryGraph:
    def test_grounds_anchors_in_live_labels(self):
        found = retrieval_query_graph(
            "Is there a dog near the hydrant?", make_graph(),
            RetrievalConfig(),
        )
        assert found is not None
        fallback, confidence = found
        assert 0.0 <= confidence <= 1.0
        spoc = fallback.vertices[fallback.main_index]
        heads = {t.head for t in (spoc.subject, spoc.object)
                 if t is not None}
        # anchored to labels that exist, including the multi-word one
        # the keyword rung's surface lemmas could never reach
        assert heads <= {"dog", "grass", "fire hydrant",
                         "traffic light"}
        assert "dog" in heads

    def test_exact_anchor_gives_full_confidence(self):
        found = retrieval_query_graph(
            "Is there a dog on the grass?", make_graph(),
            RetrievalConfig(),
        )
        assert found is not None
        _, confidence = found
        assert confidence == pytest.approx(1.0)

    def test_gibberish_retrieves_nothing(self):
        assert retrieval_query_graph(
            "zzzxqw vfrt qqq?", make_graph(), RetrievalConfig()
        ) is None

    def test_predicate_upgraded_to_indexed_edge_label(self):
        graph = make_graph()
        found = retrieval_query_graph(
            "Is the dog standing on the grass?", graph,
            RetrievalConfig(),
        )
        assert found is not None
        fallback, _ = found
        predicate = fallback.vertices[fallback.main_index].predicate
        # either the raw heuristic guess or its ANN upgrade — but an
        # upgrade must be a label the graph actually carries
        indexed = set(graph.ann_index.labels())
        assert predicate in indexed | {"stand", "be", "on"}

    def test_floor_filters_weak_anchors(self):
        strict = RetrievalConfig(fallback_floor=1.1)
        assert retrieval_query_graph(
            "Is there a dog on the grass?", make_graph(), strict
        ) is None


class TestEndToEndDegradedConfidence:
    def build(self, retrieval):
        scenes = SceneGenerator(seed=31).generate_pool(40)
        system = SVQA(scenes, build_commonsense_kg(),
                      SVQAConfig(resilience=ResilienceConfig.chaos(0.0),
                                 retrieval=retrieval))
        system.build()
        return system

    def reject_parse(self, monkeypatch, prefix):
        real_parse = generate_query_graph

        def rejecting(question, clock=None, tracer=None):
            if question.startswith(prefix):
                raise TokenizationError("grammar rejected")
            return real_parse(question, clock=clock)

        monkeypatch.setattr("repro.core.pipeline.generate_query_graph",
                            rejecting)

    def test_ranked_fallback_replaces_flat_confidence(self, monkeypatch):
        system = self.build(RetrievalConfig())
        self.reject_parse(monkeypatch, "Is there a dog")
        answer = system.answer("Is there a dog near the fence?")
        assert answer.degraded
        assert 0.0 <= answer.confidence <= 1.0
        assert any("retrieval-ranked" in (e.detail or "")
                   for e in answer.fault_events)
        report = system.execution_report().stats
        assert report.retrieval_fallbacks >= 1

    def test_keyword_rung_still_runs_when_retrieval_off(self,
                                                        monkeypatch):
        system = self.build(None)
        self.reject_parse(monkeypatch, "Is there a dog")
        answer = system.answer("Is there a dog near the fence?")
        assert answer.degraded
        assert answer.confidence <= KEYWORD_FALLBACK_CONFIDENCE
        assert any("keyword-match" in (e.detail or "")
                   for e in answer.fault_events)
