"""Cross-module property-based tests on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph, k_hop_neighborhood, k_hop_subgraph
from repro.nlp.embeddings import cosine, phrase_vector
from repro.simtime import SimClock


# ---------------------------------------------------------------------------
# random graph strategy
# ---------------------------------------------------------------------------

@st.composite
def graphs(draw):
    n = draw(st.integers(2, 12))
    g = Graph()
    labels = [f"l{draw(st.integers(0, 4))}" for _ in range(n)]
    for label in labels:
        g.add_vertex(label)
    edge_count = draw(st.integers(0, 2 * n))
    for _ in range(edge_count):
        src = draw(st.integers(0, n - 1))
        dst = draw(st.integers(0, n - 1))
        if src != dst:
            g.add_edge(src, dst, f"e{draw(st.integers(0, 2))}")
    return g


class TestGraphProperties:
    @given(graphs(), st.integers(0, 4))
    @settings(max_examples=40)
    def test_k_hop_monotone_in_k(self, g, k):
        start = next(iter(g.vertex_ids()))
        smaller = k_hop_neighborhood(g, start, k)
        larger = k_hop_neighborhood(g, start, k + 1)
        assert smaller <= larger

    @given(graphs(), st.integers(0, 3))
    @settings(max_examples=40)
    def test_subgraph_edges_are_internal(self, g, k):
        start = next(iter(g.vertex_ids()))
        view = k_hop_subgraph(g, start, k)
        for edge in view.edges():
            assert edge.src in view.vertex_ids
            assert edge.dst in view.vertex_ids

    @given(graphs())
    @settings(max_examples=40)
    def test_degree_sums_equal_edge_count(self, g):
        out_sum = sum(g.out_degree(v) for v in g.vertex_ids())
        in_sum = sum(g.in_degree(v) for v in g.vertex_ids())
        assert out_sum == in_sum == g.edge_count

    @given(graphs())
    @settings(max_examples=40)
    def test_label_index_consistent(self, g):
        for label in g.vertex_labels.labels():
            for vertex in g.find_vertices(label):
                assert vertex.label == label
        assert sum(
            g.vertex_labels.count(label)
            for label in g.vertex_labels.labels()
        ) == g.vertex_count


class TestEmbeddingProperties:
    WORDS = st.sampled_from([
        "dog", "puppy", "cat", "fence", "wear", "wearing", "holding",
        "near", "grass", "wizard", "robe", "carrying", "carry",
    ])

    @given(WORDS)
    def test_unit_norm(self, word):
        assert np.linalg.norm(phrase_vector(word)) == 1.0 or \
            abs(np.linalg.norm(phrase_vector(word)) - 1.0) < 1e-6

    @given(WORDS, WORDS)
    def test_cosine_symmetric(self, a, b):
        assert abs(cosine(a, b) - cosine(b, a)) < 1e-9

    @given(WORDS, WORDS)
    def test_cosine_bounded(self, a, b):
        assert -1.0 - 1e-9 <= cosine(a, b) <= 1.0 + 1e-9

    @given(WORDS)
    def test_self_similarity(self, word):
        assert abs(cosine(word, word) - 1.0) < 1e-9


class TestSimClockProperties:
    @given(st.lists(st.sampled_from(["pos_tag", "dep_parse",
                                     "vqa_forward", "edge_scan"]),
                    max_size=30))
    def test_charges_additive_and_nonnegative(self, operations):
        clock = SimClock()
        total = 0.0
        for op in operations:
            charged = clock.charge(op)
            assert charged >= 0
            total += charged
        assert clock.elapsed == sum(
            clock.costs[op] for op in operations
        ) or abs(clock.elapsed - total) < 1e-12
