"""Unit tests for the Data Aggregator (Algorithm 1)."""

import pytest

from repro.core import AggregatorConfig, DataAggregator
from repro.dataset.kg import INSTANCE_OF, build_commonsense_kg, build_movie_kg
from repro.simtime import SimClock
from repro.synth import SceneGenerator
from repro.vision import MOTIFNET, RelationPredictor, SGGPipeline, SimulatedDetector


@pytest.fixture(scope="module")
def scene_graphs():
    scenes = SceneGenerator(seed=13).generate_pool(30)
    pipeline = SGGPipeline(SimulatedDetector(), RelationPredictor(MOTIFNET))
    return pipeline.run_many(scenes)


class TestMerge:
    def test_instances_added(self, scene_graphs):
        kg = build_commonsense_kg()
        merged = DataAggregator(kg).merge(scene_graphs)
        assert merged.graph.vertex_count > kg.vertex_count
        assert len(merged.instance_ids) == sum(
            len(sg.detections) for sg in scene_graphs
        )

    def test_every_instance_linked_to_concept(self, scene_graphs):
        merged = DataAggregator(build_commonsense_kg()).merge(scene_graphs)
        for instance_id in merged.instance_ids:
            edges = [e for e in merged.graph.out_edges(instance_id)
                     if e.label == INSTANCE_OF]
            assert edges, f"instance {instance_id} not linked"

    def test_scene_relations_become_edges(self, scene_graphs):
        merged = DataAggregator(build_commonsense_kg()).merge(scene_graphs)
        scene_edges = [
            e for e in merged.graph.edges()
            if e.props.get("image_id") is not None
        ]
        assert len(scene_edges) == sum(
            len(sg.relations) for sg in scene_graphs
        )

    def test_kg_untouched(self, scene_graphs):
        kg = build_commonsense_kg()
        before = kg.vertex_count
        DataAggregator(kg).merge(scene_graphs)
        assert kg.vertex_count == before

    def test_merge_deterministic(self, scene_graphs):
        a = DataAggregator(build_commonsense_kg()).merge(scene_graphs)
        b = DataAggregator(build_commonsense_kg()).merge(scene_graphs)
        assert a.graph.vertex_count == b.graph.vertex_count
        assert a.graph.edge_count == b.graph.edge_count


class TestCache:
    def test_cache_equals_direct_merge(self, scene_graphs):
        """Cache-assisted merging must produce the same graph."""
        cached = DataAggregator(
            build_commonsense_kg(), AggregatorConfig(use_cache=True)
        ).merge(scene_graphs)
        direct = DataAggregator(
            build_commonsense_kg(), AggregatorConfig(use_cache=False)
        ).merge(scene_graphs)
        assert cached.graph.vertex_count == direct.graph.vertex_count
        assert cached.graph.edge_count == direct.graph.edge_count

    def test_cache_reduces_storage_lookups(self, scene_graphs):
        clock_cached = SimClock()
        DataAggregator(build_commonsense_kg(), clock=clock_cached).merge(
            scene_graphs
        )
        clock_direct = SimClock()
        DataAggregator(
            build_commonsense_kg(), AggregatorConfig(use_cache=False),
            clock=clock_direct,
        ).merge(scene_graphs)
        cached_lookups = clock_cached.counts.get("kg_lookup", 0)
        direct_lookups = clock_direct.counts.get("kg_lookup", 0)
        assert cached_lookups < direct_lookups

    def test_coverage_stats(self, scene_graphs):
        merged = DataAggregator(build_commonsense_kg()).merge(scene_graphs)
        stats = merged.stats
        assert 0.0 <= stats.cached_type_fraction <= 1.0
        assert 0.0 <= stats.covered_vertex_fraction <= 1.0
        assert stats.cache_links + stats.storage_links + \
            stats.created_concepts >= 0

    def test_threshold_controls_cache_size(self, scene_graphs):
        low = DataAggregator(
            build_commonsense_kg(),
            AggregatorConfig(frequency_threshold=1),
        ).merge(scene_graphs)
        high = DataAggregator(
            build_commonsense_kg(),
            AggregatorConfig(frequency_threshold=50),
        ).merge(scene_graphs)
        assert len(low.stats.cached_categories) >= \
            len(high.stats.cached_categories)


class TestAnnotations:
    def test_named_instances_link_to_entities(self, scene_graphs):
        kg = build_movie_kg()
        image_id = scene_graphs[0].image_id
        label = scene_graphs[0].detections[0].label
        merged = DataAggregator(kg).merge(
            scene_graphs, annotations={(image_id, label): "Harry Potter"}
        )
        harrys = merged.graph.find_vertices("Harry Potter")
        kinds = {v.props.get("kind") for v in harrys}
        assert "instance" in kinds and "entity" in kinds

    def test_edge_labels_exposed(self, scene_graphs):
        merged = DataAggregator(build_commonsense_kg()).merge(scene_graphs)
        assert INSTANCE_OF in merged.edge_labels
