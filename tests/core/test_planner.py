"""Tests for cost-based multi-query plan sharing (DESIGN.md §5j)."""

import pytest

from repro.core import (
    CalibratedCosts,
    ObservabilityConfig,
    PlanOverlay,
    PlannerConfig,
    QueryGraphExecutor,
    SVQA,
    SVQAConfig,
    build_forest,
    build_plans,
    canonicalize,
    generate_query_graph,
    plan_order,
    predict_makespan,
)
from repro.dataset.kg import build_commonsense_kg
from repro.synth import SceneGenerator
from tests.core.test_executor import make_merged

QUESTIONS = [
    "How many dogs are standing on the grass?",
    "Is there a fence near the grass?",
    "What kind of animals is carried by the pets that are standing "
    "on the grass?",
    "Is there a cat near the grass?",
    "How many dogs are standing on the grass?",
    "Is there a dog near the fence?",
]


def parse_all(questions=QUESTIONS):
    return [generate_query_graph(q) for q in questions]


def build_system(planner=None, observability=None):
    scenes = SceneGenerator(seed=31).generate_pool(40)
    config = SVQAConfig(planner=planner, observability=observability)
    system = SVQA(scenes, build_commonsense_kg(), config)
    system.build()
    return system


@pytest.fixture(scope="module")
def svqa_on():
    return build_system(planner=PlannerConfig(),
                        observability=ObservabilityConfig())


@pytest.fixture(scope="module")
def svqa_off():
    return build_system(planner=None,
                        observability=ObservabilityConfig())


def answer_dicts(system, workers=1):
    return [a.to_dict() for a in system.answer_many(QUESTIONS,
                                                    workers=workers)]


class TestCanonicalization:
    def test_same_input_same_forest_signature(self):
        epoch = 17
        first = build_forest(build_plans(parse_all(), epoch), epoch)
        second = build_forest(build_plans(parse_all(), epoch), epoch)
        assert first.signature() == second.signature()

    def test_repeated_questions_share_nodes(self):
        epoch = 3
        forest = build_forest(build_plans(parse_all(), epoch), epoch)
        assert forest.shared, "repeated questions must share sub-plans"
        scopes = forest.shared_by_kind("scope")
        assert any(node.node.key[2] == "grass" for node in scopes)
        for shared in forest.shared.values():
            assert shared.uses >= 2
            assert shared.node.key[1] == epoch

    def test_share_threshold_below_two_rejected(self):
        with pytest.raises(ValueError):
            build_forest([], epoch=0, threshold=1)

    def test_dynamic_slots_are_not_shared(self):
        graph = generate_query_graph(
            "What kind of animals is carried by the pets that are "
            "standing on the grass?"
        )
        plan = canonicalize(graph, epoch=5)
        assert plan.dynamic_scopes > 0 or plan.dynamic_paths > 0
        # no canonical node may name a dependency-fed slot's runtime set
        for node in plan.nodes:
            assert node.key[1] == 5

    def test_plan_order_is_permutation(self):
        epoch = 9
        plans = build_plans(parse_all(), epoch)
        forest = build_forest(plans, epoch)
        order = plan_order(plans, forest)
        assert sorted(order) == list(range(len(plans)))
        unordered = plan_order(plans, forest, reorder=False)
        assert sorted(unordered) == list(range(len(plans)))


class TestPredictor:
    def test_prediction_covers_every_query(self):
        epoch = 2
        plans = build_plans(parse_all(), epoch)
        forest = build_forest(plans, epoch)
        order = plan_order(plans, forest)
        calibration = CalibratedCosts(
            scope_hit=0.0001, scope_miss=0.01, path_hit=0.0001,
            path_miss=0.02, path_fill=0.002, embed_per_query=0.005,
            scope_hit_rate=0.9, path_hit_rate=0.3, mean_edge_mass=40.0,
        )
        prediction = predict_makespan(forest, order, workers=2,
                                      calibration=calibration)
        assert len(prediction.per_query) == len(plans)
        assert prediction.makespan > 0
        assert prediction.total >= prediction.makespan
        serial = predict_makespan(forest, order, workers=1,
                                  calibration=calibration)
        assert serial.makespan == pytest.approx(serial.total)


def strip_latency(dicts):
    """Drop ``meta.latency``: sharing lowers per-query charges by
    design, while everything else must be byte-identical."""
    for payload in dicts:
        payload["meta"].pop("latency")
    return dicts


class TestPlannerEquivalence:
    def test_planner_on_matches_planner_off(self, svqa_on, svqa_off):
        assert strip_latency(answer_dicts(svqa_on)) == \
            strip_latency(answer_dicts(svqa_off))

    def test_worker_count_does_not_change_answers(self, svqa_on):
        assert answer_dicts(svqa_on, workers=1) == \
            answer_dicts(svqa_on, workers=4)

    def test_planned_batch_is_recorded(self, svqa_on):
        svqa_on.answer_many(QUESTIONS)
        plan = svqa_on.last_plan
        assert plan is not None
        assert sorted(plan.order) == list(range(len(QUESTIONS)))
        assert plan.forest.fanout_uses() == plan.share.fanout_uses
        assert plan.share.charged_seconds > 0

    def test_planner_emits_plan_metrics(self, svqa_on):
        svqa_on.answer_many(QUESTIONS)
        snapshot = svqa_on.metrics_snapshot()
        assert "svqa_plan_batches_total" in snapshot
        assert "svqa_plan_shared_nodes_total" in snapshot
        names = [span.name for span in svqa_on.finished_spans()]
        assert "planner.share" in names


class TestOffPathPurity:
    def test_no_plan_metrics_when_planner_off(self, svqa_off):
        svqa_off.answer_many(QUESTIONS)
        snapshot = svqa_off.metrics_snapshot()
        assert not any(name.startswith("svqa_plan")
                       for name in snapshot)

    def test_no_share_span_when_planner_off(self, svqa_off):
        svqa_off.answer_many(QUESTIONS)
        names = {span.name for span in svqa_off.finished_spans()}
        assert "planner.share" not in names

    def test_report_defaults_are_zero(self, svqa_off):
        svqa_off.answer_many(QUESTIONS)
        report = svqa_off.execution_report().stats
        assert report.plan_batches == 0
        assert report.plan_nodes == 0
        assert report.plan_shared_nodes == 0
        assert report.plan_overlay_fills == 0
        assert svqa_off.last_plan is None


class TestEpochSafety:
    """A mid-batch epoch bump must make shared results unreachable."""

    QUESTION = "Is there a fence near the grass?"

    def baseline_value(self):
        executor = QueryGraphExecutor(make_merged())
        return executor.execute(generate_query_graph(self.QUESTION)).value

    def poisoned_overlay(self, epoch):
        # empty scopes for both endpoints: if the executor ever serves
        # these entries no relation pair survives and the judgment
        # flips to "no", so a leak is a visibly wrong answer
        overlay = PlanOverlay(epoch=epoch)
        overlay.put_scope(("scope", epoch, "fence"), ([], 0, 0))
        overlay.put_scope(("scope", epoch, "grass"), ([], 0, 0))
        overlay.freeze()
        return overlay

    def test_overlay_is_consulted_at_matching_epoch(self):
        merged = make_merged()
        overlay = self.poisoned_overlay(merged.graph.epoch)
        executor = QueryGraphExecutor(merged, plan_overlay=overlay)
        answer = executor.execute(generate_query_graph(self.QUESTION))
        # positive control: the poison IS served while epochs match,
        # proving the guard below is what protects after the bump
        assert answer.value != self.baseline_value()

    def test_epoch_bump_makes_overlay_unreachable(self):
        merged = make_merged()
        overlay = self.poisoned_overlay(merged.graph.epoch)
        merged.graph.add_vertex("marker", {"kind": "concept"})
        assert merged.graph.epoch > overlay.epoch
        executor = QueryGraphExecutor(merged, plan_overlay=overlay)
        answer = executor.execute(generate_query_graph(self.QUESTION))
        assert answer.value == self.baseline_value()

    def test_frozen_overlay_rejects_writes(self):
        overlay = PlanOverlay(epoch=0)
        overlay.freeze()
        with pytest.raises(RuntimeError):
            overlay.put_scope(("scope", 0, "fence"), ([], 0, 0))
