"""Unit and property tests for LFU/LRU and the key-centric cache."""

import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.cache import (
    CacheReport,
    KeyCentricCache,
    LFUCache,
    LRUCache,
    make_cache,
)


class TestLFU:
    def test_get_miss_returns_none(self):
        cache = LFUCache(2)
        assert cache.get("a") is None
        assert cache.misses == 1

    def test_put_get(self):
        cache = LFUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1

    def test_evicts_least_frequent(self):
        cache = LFUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.get("a")
        cache.put("c", 3)  # b is least frequently used
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_frequency_ties_broken_by_recency(self):
        cache = LFUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # a and b tie on frequency; a is older
        assert cache.get("a") is None
        assert cache.get("b") == 2

    def test_capacity_never_exceeded(self):
        cache = LFUCache(3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) <= 3

    def test_zero_capacity_stores_nothing(self):
        cache = LFUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None

    def test_negative_capacity_raises(self):
        with pytest.raises(ValueError):
            LFUCache(-1)

    def test_update_existing_key(self):
        cache = LFUCache(2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert len(cache) == 1

    def test_put_existing_key_at_capacity_does_not_evict(self):
        cache = LFUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # full, but "a" is already resident
        assert len(cache) == 2
        assert cache.get("a") == 10
        assert cache.get("b") == 2

    def test_tie_recency_refreshed_by_put(self):
        cache = LFUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 1)   # a: freq 2; b: freq 1 -> b is the victim
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1

    def test_hit_rate_untouched_cache(self):
        assert LFUCache(2).hit_rate == 0.0


class TestLRU:
    def test_evicts_least_recent(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")      # refresh a
        cache.put("c", 3)   # b is least recent
        assert cache.get("b") is None
        assert cache.get("a") == 1

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 10

    def test_capacity_never_exceeded(self):
        cache = LRUCache(3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) <= 3

    def test_hit_rate(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("z")
        assert cache.hit_rate == pytest.approx(0.5)

    def test_put_existing_key_at_capacity_does_not_evict(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # full, but "a" is already resident
        assert len(cache) == 2
        assert cache.get("a") == 10
        assert cache.get("b") == 2

    def test_hit_rate_untouched_cache(self):
        assert LRUCache(2).hit_rate == 0.0


class TestFactoryAndProperties:
    def test_make_cache(self):
        assert isinstance(make_cache("lfu", 2), LFUCache)
        assert isinstance(make_cache("lru", 2), LRUCache)

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            make_cache("fifo", 2)

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers()),
                    max_size=60),
           st.integers(1, 8),
           st.sampled_from(["lfu", "lru"]))
    def test_capacity_invariant(self, operations, capacity, policy):
        cache = make_cache(policy, capacity)
        for key, value in operations:
            cache.put(key, value)
            assert len(cache) <= capacity

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=40),
           st.sampled_from(["lfu", "lru"]))
    def test_last_put_always_retrievable(self, keys, policy):
        cache = make_cache(policy, 3)
        for key in keys:
            cache.put(key, key * 10)
            assert cache.get(key) == key * 10


class TestKeyCentric:
    def test_scope_and_path_independent(self):
        cache = KeyCentricCache.create(pool_size=4)
        cache.put_scope("k", [1])
        cache.put_path("k", [2])
        assert cache.get_scope("k") == [1]
        assert cache.get_path("k") == [2]

    def test_disabled_cache_stores_nothing(self):
        cache = KeyCentricCache.disabled()
        cache.put_scope("k", [1])
        cache.put_path("k", [2])
        assert cache.get_scope("k") is None
        assert cache.get_path("k") is None

    def test_granularity_flags(self):
        cache = KeyCentricCache.create(pool_size=4, enabled_scope=True,
                                       enabled_path=False)
        cache.put_scope("k", [1])
        cache.put_path("k", [2])
        assert cache.get_scope("k") == [1]
        assert cache.get_path("k") is None

    def test_item_count(self):
        cache = KeyCentricCache.create(pool_size=4)
        cache.put_scope("a", 1)
        cache.put_path("b", 2)
        assert cache.item_count == 2

    def test_report(self):
        cache = KeyCentricCache.create(pool_size=4)
        cache.put_scope("a", 1)
        cache.get_scope("a")
        cache.get_scope("z")
        report = CacheReport.from_cache(cache)
        assert report.scope_hits == 1
        assert report.scope_misses == 1


class TestGetOrCompute:
    def test_miss_computes_and_fills(self):
        cache = KeyCentricCache.create(pool_size=4)
        value, hit = cache.scope_get_or_compute("k", lambda: [1, 2])
        assert (value, hit) == ([1, 2], False)
        value, hit = cache.scope_get_or_compute(
            "k", lambda: pytest.fail("must not recompute")
        )
        assert (value, hit) == ([1, 2], True)

    def test_disabled_always_computes(self):
        cache = KeyCentricCache.disabled()
        calls = []
        for _ in range(3):
            value, hit = cache.path_get_or_compute(
                "k", lambda: calls.append(1) or [9]
            )
            assert (value, hit) == ([9], False)
        assert len(calls) == 3

    def test_leader_error_falls_back_to_follower_compute(self):
        cache = KeyCentricCache.create(pool_size=4)
        with pytest.raises(RuntimeError):
            cache.scope_get_or_compute(
                "k", lambda: (_ for _ in ()).throw(RuntimeError("boom"))
            )
        # the failed computation left nothing behind
        value, hit = cache.scope_get_or_compute("k", lambda: [7])
        assert (value, hit) == ([7], False)


class TestThreadSafety:
    """Stress the shared cache with >= 4 threads (the acceptance
    criterion): no exceptions, no lost updates, no duplicated work for
    concurrent misses on the same key."""

    THREADS = 8

    def _hammer(self, worker, threads=THREADS):
        errors = []

        def wrapped(thread_index):
            try:
                worker(thread_index)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        pool = [threading.Thread(target=wrapped, args=(i,))
                for i in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert errors == []

    @pytest.mark.parametrize("policy", ["lfu", "lru"])
    def test_store_invariants_under_contention(self, policy):
        cache = make_cache(policy, capacity=16)

        def worker(thread_index):
            for i in range(300):
                key = (thread_index + i) % 40
                cache.put(key, key * 10)
                value = cache.get(key)
                # evictions may drop the key, but a present value is
                # never a torn/foreign write
                assert value is None or value == key * 10
                assert len(cache) <= 16

        self._hammer(worker)
        assert cache.hits + cache.misses == self.THREADS * 300

    def test_key_centric_values_always_consistent(self):
        cache = KeyCentricCache.create(pool_size=32)

        def worker(thread_index):
            for i in range(200):
                key = ("scope", i % 50)
                value, _ = cache.scope_get_or_compute(
                    key, lambda k=key: [k[1], k[1] + 1]
                )
                assert value == [key[1], key[1] + 1]
                pkey = ("path", i % 30)
                value, _ = cache.path_get_or_compute(
                    pkey, lambda k=pkey: [k[1] * 2]
                )
                assert value == [pkey[1] * 2]

        self._hammer(worker)

    def test_concurrent_misses_compute_once(self):
        cache = KeyCentricCache.create(pool_size=4)
        release = threading.Event()
        entered = threading.Semaphore(0)
        computes = []

        def compute():
            computes.append(1)
            release.wait(timeout=5)
            return [42]

        results = []

        def worker(_):
            entered.release()
            results.append(cache.scope_get_or_compute("k", compute))

        pool = [threading.Thread(target=worker, args=(i,))
                for i in range(6)]
        for thread in pool:
            thread.start()
        for _ in pool:  # every thread reached the cache
            entered.acquire()
        release.set()   # let the single leader finish computing
        for thread in pool:
            thread.join()

        assert len(computes) == 1
        assert all(value == [42] for value, _ in results)
        # exactly one miss (the leader); everyone else observed a hit
        assert sum(1 for _, hit in results if not hit) == 1


class TestDropWhere:
    @pytest.mark.parametrize("factory", [LFUCache, LRUCache])
    def test_drops_matching_keys_only(self, factory):
        cache = factory(8)
        for key in ("a", "b", "stale-1", "stale-2"):
            cache.put(key, key.upper())
        dropped = cache.drop_where(lambda k: k.startswith("stale"))
        assert dropped == 2
        assert cache.get("a") == "A"
        assert cache.get("stale-1") is None

    @pytest.mark.parametrize("factory", [LFUCache, LRUCache])
    def test_counters_untouched(self, factory):
        cache = factory(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("z")
        hits, misses = cache.hits, cache.misses
        cache.drop_where(lambda k: True)
        assert (cache.hits, cache.misses) == (hits, misses)
        assert len(cache) == 0

    def test_surviving_entries_still_evict_correctly(self):
        cache = LFUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.drop_where(lambda k: k == "a")
        cache.put("c", 3)
        cache.put("d", 4)  # b is now least frequent
        assert len(cache) == 2


class TestRetireStale:
    def test_retires_only_older_epochs(self):
        cache = KeyCentricCache.create(pool_size=16)
        cache.put_scope(("scope", 1, "dog"), [1])
        cache.put_scope(("scope", 2, "dog"), [2])
        cache.put_path(("path", 1, "a", "b"), [(1, 2)])
        dropped = cache.retire_stale(2)
        assert dropped == 2
        assert cache.get_scope(("scope", 2, "dog")) == [2]
        assert cache.get_scope(("scope", 1, "dog")) is None
        assert cache.get_path(("path", 1, "a", "b")) is None

    def test_ignores_keys_without_epoch_shape(self):
        cache = KeyCentricCache.create(pool_size=8)
        cache.put_scope("plain", [1])
        cache.put_scope(("scope", "no-epoch"), [2])
        assert cache.retire_stale(5) == 0
        assert cache.get_scope("plain") == [1]

    def test_disabled_cache_is_a_noop(self):
        cache = KeyCentricCache.disabled()
        assert cache.retire_stale(3) == 0


class TestRetireStaleUnderContention:
    """Satellite: retire_stale racing mixed-epoch concurrent writers."""

    THREADS = 8

    def test_interleaved_mixed_epoch_writes(self):
        cache = KeyCentricCache.create(pool_size=64)
        stop = threading.Event()
        errors = []

        def writer(thread_index):
            try:
                for epoch in range(1, 200):
                    for slot in range(4):
                        key = ("scope", epoch % 3,
                               f"w{thread_index}-{slot}")
                        value, _ = cache.scope_get_or_compute(
                            key, lambda k=key: [k])
                        # a hit must return the value computed for
                        # exactly this key, never a retired ghost
                        assert value == [key]
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def retirer():
            try:
                while not stop.is_set():
                    for epoch in (1, 2, 3):
                        cache.retire_stale(epoch)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        writers = [threading.Thread(target=writer, args=(i,))
                   for i in range(self.THREADS - 2)]
        retirers = [threading.Thread(target=retirer) for _ in range(2)]
        for thread in writers + retirers:
            thread.start()
        for thread in writers:
            thread.join()
        stop.set()
        for thread in retirers:
            thread.join()
        assert not errors

    def test_retire_concurrent_with_writes_drops_only_stale(self):
        cache = KeyCentricCache.create(pool_size=64)
        barrier = threading.Barrier(2)

        def write_fresh():
            barrier.wait()
            for i in range(200):
                cache.put_scope(("scope", 5, f"fresh-{i}"), [i])

        def retire_old():
            barrier.wait()
            for _ in range(50):
                cache.retire_stale(5)

        writers = threading.Thread(target=write_fresh)
        retirers = threading.Thread(target=retire_old)
        for key in range(30):
            cache.put_scope(("scope", 4, f"old-{key}"), [key])
        writers.start()
        retirers.start()
        writers.join()
        retirers.join()
        cache.retire_stale(5)  # settle: everything stale must be gone
        for key in range(30):
            assert cache.get_scope(("scope", 4, f"old-{key}")) is None
        survivors = sum(
            1 for i in range(200)
            if cache.get_scope(("scope", 5, f"fresh-{i}")) is not None
        )
        # epoch-5 writes are never collateral damage of retiring < 5
        # (pool eviction may drop some, but retire_stale must not)
        assert survivors > 0
