"""Unit and property tests for LFU/LRU and the key-centric cache."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.cache import (
    CacheReport,
    KeyCentricCache,
    LFUCache,
    LRUCache,
    make_cache,
)


class TestLFU:
    def test_get_miss_returns_none(self):
        cache = LFUCache(2)
        assert cache.get("a") is None
        assert cache.misses == 1

    def test_put_get(self):
        cache = LFUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1

    def test_evicts_least_frequent(self):
        cache = LFUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.get("a")
        cache.put("c", 3)  # b is least frequently used
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_frequency_ties_broken_by_recency(self):
        cache = LFUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # a and b tie on frequency; a is older
        assert cache.get("a") is None
        assert cache.get("b") == 2

    def test_capacity_never_exceeded(self):
        cache = LFUCache(3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) <= 3

    def test_zero_capacity_stores_nothing(self):
        cache = LFUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None

    def test_negative_capacity_raises(self):
        with pytest.raises(ValueError):
            LFUCache(-1)

    def test_update_existing_key(self):
        cache = LFUCache(2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert len(cache) == 1


class TestLRU:
    def test_evicts_least_recent(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")      # refresh a
        cache.put("c", 3)   # b is least recent
        assert cache.get("b") is None
        assert cache.get("a") == 1

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 10

    def test_capacity_never_exceeded(self):
        cache = LRUCache(3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) <= 3

    def test_hit_rate(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("z")
        assert cache.hit_rate == pytest.approx(0.5)


class TestFactoryAndProperties:
    def test_make_cache(self):
        assert isinstance(make_cache("lfu", 2), LFUCache)
        assert isinstance(make_cache("lru", 2), LRUCache)

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            make_cache("fifo", 2)

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers()),
                    max_size=60),
           st.integers(1, 8),
           st.sampled_from(["lfu", "lru"]))
    def test_capacity_invariant(self, operations, capacity, policy):
        cache = make_cache(policy, capacity)
        for key, value in operations:
            cache.put(key, value)
            assert len(cache) <= capacity

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=40),
           st.sampled_from(["lfu", "lru"]))
    def test_last_put_always_retrievable(self, keys, policy):
        cache = make_cache(policy, 3)
        for key in keys:
            cache.put(key, key * 10)
            assert cache.get(key) == key * 10


class TestKeyCentric:
    def test_scope_and_path_independent(self):
        cache = KeyCentricCache.create(pool_size=4)
        cache.put_scope("k", [1])
        cache.put_path("k", [2])
        assert cache.get_scope("k") == [1]
        assert cache.get_path("k") == [2]

    def test_disabled_cache_stores_nothing(self):
        cache = KeyCentricCache.disabled()
        cache.put_scope("k", [1])
        cache.put_path("k", [2])
        assert cache.get_scope("k") is None
        assert cache.get_path("k") is None

    def test_granularity_flags(self):
        cache = KeyCentricCache.create(pool_size=4, enabled_scope=True,
                                       enabled_path=False)
        cache.put_scope("k", [1])
        cache.put_path("k", [2])
        assert cache.get_scope("k") == [1]
        assert cache.get_path("k") is None

    def test_item_count(self):
        cache = KeyCentricCache.create(pool_size=4)
        cache.put_scope("a", 1)
        cache.put_path("b", 2)
        assert cache.item_count == 2

    def test_report(self):
        cache = KeyCentricCache.create(pool_size=4)
        cache.put_scope("a", 1)
        cache.get_scope("a")
        cache.get_scope("z")
        report = CacheReport.from_cache(cache)
        assert report.scope_hits == 1
        assert report.scope_misses == 1
