"""Executor-side tests for the ANN retrieval tier and the two
satellite bugfixes that rode along with it.

* ``_apply_constraint`` used to group pairs by case-sensitive label
  and hard-code its ``0.5`` cosine floor — the mixed-case regression
  here fails on the old code;
* ``_be_pairs`` used to call ``edges_between`` twice per matched
  identity pair;
* with ``retrieval`` enabled, answers must stay byte-identical to the
  linear-scan path while ``embed_score`` charges split into
  ``fresh + probes``.
"""

from repro.core import (
    ExecutorConfig,
    ExecutorStats,
    QueryGraphExecutor,
    QuestionType,
    RetrievalConfig,
    SPOC,
    Term,
    generate_query_graph,
)
from repro.simtime import SimClock
from tests.core.test_executor import make_merged

QUESTIONS = [
    "Is there a dog near the fence?",
    "How many dogs are standing on the grass?",
    "Is there a cat near the grass?",
    "What kind of animal is standing on the grass?",
    "Is there a fence near the grass?",
]


def counting_spoc(constraint, answer_role="subject"):
    return SPOC(
        subject=Term(text="dog", head="dog"), predicate="standing on",
        object=Term(text="grass", head="grass"), clause_index=0,
        depth=0, is_main=True, question_type=QuestionType.COUNTING,
        answer_role=answer_role, constraint=constraint,
        source_text="constraint test",
    )


class TestConstraintBugfixes:
    def make_mixed_case_pairs(self, executor):
        """Relation pairs whose subject labels differ only by case —
        semantically one group, one per distinct image."""
        from repro.graph import RelationPair

        graph = executor.graph
        grass = next(v for v in graph.vertices()
                     if v.label == "grass" and
                     v.props.get("kind") == "instance")
        pairs = []
        for offset, label in enumerate(["Dog", "dog", "dog"]):
            v = graph.add_vertex(label, {"kind": "instance",
                                         "image_id": 100 + offset})
            edge = graph.add_edge(v.id, grass.id, "standing on",
                                  {"image_id": 100 + offset})
            pairs.append(RelationPair(v, edge, grass))
        return pairs

    def test_mixed_case_labels_group_together(self):
        """Regression: the old code grouped by raw label, so "Dog"
        and "dog" split into two groups and "most" kept only the
        lowercase majority."""
        executor = QueryGraphExecutor(make_merged())
        pairs = self.make_mixed_case_pairs(executor)
        assert len(pairs) == 3
        kept = executor._apply_constraint(counting_spoc("most"), pairs)
        # one case-folded group of three distinct images: everything
        # survives "most frequently"; the old case-sensitive grouping
        # dropped the capitalized pair
        assert len(kept) == 3

    def test_threshold_lifted_to_config(self):
        executor = QueryGraphExecutor(
            make_merged(),
            config=ExecutorConfig(constraint_threshold=2.0),
        )
        pairs = self.make_mixed_case_pairs(executor)
        # an unreachable floor disables constraint filtering entirely
        assert executor._apply_constraint(counting_spoc("most"),
                                          pairs) == pairs

    def test_default_threshold_unchanged(self):
        assert ExecutorConfig().constraint_threshold == 0.5


class TestBePairsSingleScan:
    def test_edges_between_called_once_per_identity_pair(self):
        executor = QueryGraphExecutor(make_merged())
        graph = executor.graph
        a = graph.add_vertex("sofa", {"kind": "instance",
                                      "image_id": 50})
        b = graph.add_vertex("sofa", {"kind": "instance",
                                      "image_id": 50})
        graph.add_edge(a.id, b.id, "next to", {"image_id": 50})
        calls = []
        real = graph.edges_between

        def counted(src, dst):
            calls.append((src, dst))
            return real(src, dst)

        graph.edges_between = counted
        try:
            subject = graph.vertex(a.id)
            obj = graph.vertex(b.id)
            pairs = executor._be_pairs([subject], [obj])
        finally:
            graph.edges_between = real
        assert len(pairs) == 1
        assert pairs[0].edge.label == "next to"
        # the old code scanned edges_between twice (once to test,
        # once to index); now exactly once per matched pair
        assert calls == [(a.id, b.id)]


def run_questions(retrieval):
    executor = QueryGraphExecutor(
        make_merged(), clock=SimClock(), stats=ExecutorStats(),
        retrieval=retrieval,
    )
    answers = [executor.execute(generate_query_graph(q))
               for q in QUESTIONS]
    return executor, answers


class TestRetrievalParity:
    def test_answers_byte_identical_on_and_off(self):
        _, plain = run_questions(None)
        _, tiered = run_questions(RetrievalConfig())
        assert [(a.value, a.sources()) for a in plain] == \
            [(a.value, a.sources()) for a in tiered]

    def test_charges_split_into_fresh_and_probes(self):
        off, _ = run_questions(None)
        on, _ = run_questions(RetrievalConfig())
        baseline = off.clock.counts["embed_score"]
        fresh = on.clock.counts.get("embed_score", 0)
        probes = on.clock.counts.get("ann_probe", 0)
        # every score the scan charged is now either a first compute
        # or a memo probe — nothing is dropped or double-charged
        assert fresh + probes == baseline
        assert probes > 0
        assert fresh < baseline
        assert off.clock.counts.get("ann_probe", 0) == 0

    def test_stats_record_sites_and_outcomes(self):
        on, _ = run_questions(RetrievalConfig())
        report = on.stats.snapshot()
        assert report.retrieval_ann_fresh > 0
        assert report.retrieval_ann_probes > 0
        assert report.retrieval_ann_fresh + \
            report.retrieval_ann_probes == \
            on.clock.counts["embed_score"] + \
            on.clock.counts["ann_probe"]

    def test_off_path_records_nothing(self):
        off, _ = run_questions(None)
        report = off.stats.snapshot()
        assert report.retrieval_ann_fresh == 0
        assert report.retrieval_ann_probes == 0
