"""Integration tests for the SVQA facade."""

import pytest

from repro.core import SVQA, SVQAConfig, estimate_parallel_latency
from repro.dataset.kg import build_commonsense_kg
from repro.errors import QueryError
from repro.synth import SceneGenerator


@pytest.fixture(scope="module")
def svqa():
    scenes = SceneGenerator(seed=31).generate_pool(50)
    system = SVQA(scenes, build_commonsense_kg())
    system.build()
    return system


class TestBuild:
    def test_answer_before_build_raises(self):
        system = SVQA([], build_commonsense_kg())
        with pytest.raises(QueryError):
            system.answer("Is there a dog near the fence?")

    def test_unknown_relation_model_raises(self):
        scenes = SceneGenerator(seed=1).generate_pool(3)
        system = SVQA(scenes, build_commonsense_kg(),
                      SVQAConfig(relation_model="gpt-7"))
        with pytest.raises(QueryError):
            system.build()

    def test_build_returns_merged_graph(self, svqa):
        assert svqa.merged is not None
        assert svqa.merged.graph.vertex_count > 0


class TestAnswering:
    def test_answer_has_latency(self, svqa):
        answer = svqa.answer("Is there a dog near the fence?")
        assert answer.latency is not None
        assert answer.latency > 0

    def test_answer_many_preserves_order(self, svqa):
        questions = [
            "Is there a dog near the fence?",
            "How many dogs are standing on the grass?",
        ]
        answers = svqa.answer_many(questions)
        assert len(answers) == 2
        assert answers[1].value.isdigit()

    def test_answer_many_matches_single(self, svqa):
        question = "How many dogs are standing on the grass?"
        single = svqa.answer(question)
        batch = svqa.answer_many([question])[0]
        assert single.value == batch.value

    def test_unparseable_question_degrades_gracefully(self, svqa):
        answers = svqa.answer_many([
            "Does the kind of canis that is sitting on the bed appear "
            "in front of the vehicle?",
        ])
        assert answers[0].value == "unknown"

    def test_clock_accumulates(self, svqa):
        before = svqa.elapsed
        svqa.answer("Is there a cat near the sofa?")
        assert svqa.elapsed > before

    def test_cache_report(self, svqa):
        svqa.answer("Is there a dog near the fence?")
        svqa.answer("Is there a dog near the fence?")
        report = svqa.cache_report()
        assert report.scope_hits > 0


class TestSchedulerIntegration:
    def test_scheduler_off_still_answers(self):
        scenes = SceneGenerator(seed=32).generate_pool(20)
        system = SVQA(scenes, build_commonsense_kg(),
                      SVQAConfig(enable_scheduler=False))
        system.build()
        answers = system.answer_many([
            "Is there a dog near the fence?",
            "Is there a dog near the fence?",
        ])
        assert answers[0].value == answers[1].value


class TestConcurrentAnswerMany:
    QUESTIONS = [
        "Is there a dog near the fence?",
        "How many dogs are standing on the grass?",
        "Is there a cat near the sofa?",
        "Is there a dog near the fence?",
    ]

    def test_workers_param_matches_serial(self, svqa):
        serial = svqa.answer_many(self.QUESTIONS, workers=1)
        parallel = svqa.answer_many(self.QUESTIONS, workers=4)
        assert [a.value for a in serial] == [a.value for a in parallel]
        assert [a.question_type for a in serial] == \
            [a.question_type for a in parallel]

    def test_workers_from_config(self):
        from repro.synth import SceneGenerator

        scenes = SceneGenerator(seed=33).generate_pool(20)
        system = SVQA(scenes, build_commonsense_kg(),
                      SVQAConfig(workers=3))
        system.build()
        system.answer_many(self.QUESTIONS)
        assert system.last_batch.workers == 3

    def test_last_batch_and_execution_report(self, svqa):
        svqa.answer_many(self.QUESTIONS, workers=2)
        batch = svqa.last_batch
        assert batch is not None
        assert len(batch.answers) == len(self.QUESTIONS)
        assert batch.simulated_makespan <= batch.simulated_total
        report = svqa.execution_report()
        assert report.stats.queries > 0
        assert report.cache.scope_hits >= 0
        assert report.last_batch is batch

    def test_shards_fold_into_system_clock(self, svqa):
        before = svqa.elapsed
        svqa.answer_many(self.QUESTIONS, workers=2)
        assert svqa.elapsed >= \
            before + svqa.last_batch.simulated_total

    def test_invalid_workers_raises(self, svqa):
        with pytest.raises(ValueError):
            svqa.answer_many(self.QUESTIONS, workers=0)


class TestParallelEstimate:
    def test_single_worker_is_sum(self):
        assert estimate_parallel_latency([1.0, 2.0, 3.0], 1) == 6.0

    def test_many_workers_is_max(self):
        assert estimate_parallel_latency([1.0, 2.0, 3.0], 3) == 3.0

    def test_packing(self):
        # longest-first: [5] vs [3, 2] -> makespan 5
        assert estimate_parallel_latency([5.0, 3.0, 2.0], 2) == 5.0

    def test_empty(self):
        assert estimate_parallel_latency([], 4) == 0.0

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            estimate_parallel_latency([1.0], 0)
