"""Unit tests for the QueryGraphExecutor (Algorithm 3).

Uses a hand-built merged graph so every behaviour is fully controlled:
no detector noise, known instances, known relations.
"""

import pytest

from repro.core import (
    DependencyKind,
    ExecutorStats,
    KeyCentricCache,
    MergedGraph,
    QueryGraph,
    QueryGraphExecutor,
    QuestionType,
    SPOC,
    Term,
    generate_query_graph,
)
from repro.core.aggregator import MergeStats
from repro.dataset.kg import INSTANCE_OF, build_movie_kg
from repro.graph import Graph
from repro.simtime import SimClock


def make_merged():
    """A small, fully hand-specified merged graph.

    Images:
      0: dog standing on grass; fence near grass
      1: dog carrying bird
      2: cat sitting on sofa
      3: dog standing on grass
    KG: commonsense + movie entities.
    """
    kg = build_movie_kg()
    graph = Graph(name="merged")
    for vertex in kg.vertices():
        graph.add_vertex(vertex.label, vertex.props, vertex_id=vertex.id)
    for edge in kg.edges():
        graph.add_edge(edge.src, edge.dst, edge.label, edge.props)
    concepts = {v.label: v.id for v in graph.vertices()}
    instances = []

    def instance(label, image_id):
        v = graph.add_vertex(label, {"kind": "instance",
                                     "image_id": image_id})
        graph.add_edge(v.id, concepts[label], INSTANCE_OF)
        instances.append(v.id)
        return v

    def relate(src, dst, predicate, image_id):
        graph.add_edge(src.id, dst.id, predicate, {"image_id": image_id})

    dog0 = instance("dog", 0)
    grass0 = instance("grass", 0)
    fence0 = instance("fence", 0)
    relate(dog0, grass0, "standing on", 0)
    relate(fence0, grass0, "near", 0)

    dog1 = instance("dog", 1)
    bird1 = instance("bird", 1)
    relate(dog1, bird1, "carrying", 1)

    cat2 = instance("cat", 2)
    sofa2 = instance("sofa", 2)
    relate(cat2, sofa2, "sitting on", 2)

    dog3 = instance("dog", 3)
    grass3 = instance("grass", 3)
    relate(dog3, grass3, "standing on", 3)

    stats = MergeStats({}, [], 0.0, 0.0, 0, 0, 0)
    return MergedGraph(graph=graph, stats=stats, instance_ids=instances)


@pytest.fixture(scope="module")
def executor():
    return QueryGraphExecutor(make_merged())


class TestMatchVertex:
    def test_exact_label(self, executor):
        graph = generate_query_graph("Is there a dog near the fence?")
        term = graph.vertices[0].subject
        matches = executor.match_vertex(term)
        labels = {v.label for v in matches}
        assert labels == {"dog"}

    def test_plural_resolves(self, executor):
        matches = executor.match_vertex_label("dogs")
        assert all(v.label == "dog" for v in matches)
        assert any(v.props.get("kind") == "instance" for v in matches)

    def test_hypernym_expansion(self, executor):
        matches = executor.match_vertex_label("pet")
        labels = {v.label for v in matches}
        # concept pet + hyponym concepts + their instances
        assert {"pet", "dog", "cat", "bird"} <= labels

    def test_synonym_non_category(self, executor):
        matches = executor.match_vertex_label("puppy")
        assert any(v.label == "dog" for v in matches)

    def test_category_does_not_bleed(self, executor):
        # "cat" must not match "dog" instances via any fuzzy path
        matches = executor.match_vertex_label("cat")
        assert all(v.label in {"cat", "kitten", "feline"}
                   for v in matches)

    def test_possessive_resolution(self, executor):
        graph = generate_query_graph(
            "What kind of clothes are worn by the wizard who is hanging "
            "out with Harry Potter's girlfriend?"
        )
        condition = graph.vertices[1]
        matches = executor.match_vertex(condition.object)
        labels = {v.label for v in matches}
        assert "Ginny Weasley" in labels
        assert "Cho Chang" in labels


class TestExecution:
    def test_judgment_yes(self, executor):
        graph = generate_query_graph(
            "Does the dog that is standing on the grass appear near the "
            "fence?"
        )
        # note: 'near' edge is fence->grass, dog->fence has no edge: the
        # executor looks for dog--near-->fence which does not exist
        answer = executor.execute(graph)
        assert answer.value in {"yes", "no"}

    def test_judgment_existential_yes(self, executor):
        graph = generate_query_graph("Is there a fence near the grass?")
        answer = executor.execute(graph)
        assert answer.value == "yes"

    def test_judgment_no_for_absent_relation(self, executor):
        graph = generate_query_graph("Is there a cat near the grass?")
        answer = executor.execute(graph)
        assert answer.value == "no"

    def test_reasoning_cross_image(self, executor):
        # Example 7: condition in image 0/3, answer evidence in image 1
        graph = generate_query_graph(
            "What kind of animals is carried by the pets that are "
            "standing on the grass?"
        )
        answer = executor.execute(graph)
        assert answer.value == "bird"
        assert answer.supporting_images == [1]

    def test_counting_instances(self, executor):
        graph = generate_query_graph(
            "How many dogs are standing on the grass?"
        )
        answer = executor.execute(graph)
        assert answer.value == "2"
        assert answer.question_type is QuestionType.COUNTING

    def test_judgment_identity(self, executor):
        graph = generate_query_graph(
            "Is the animal that is sitting on the sofa a cat?"
        )
        answer = executor.execute(graph)
        assert answer.value == "yes"

    def test_judgment_identity_negative(self, executor):
        graph = generate_query_graph(
            "Is the animal that is sitting on the sofa a dog?"
        )
        answer = executor.execute(graph)
        assert answer.value == "no"

    def test_answers_deterministic(self, executor):
        graph = generate_query_graph(
            "How many dogs are standing on the grass?"
        )
        assert executor.execute(graph).value == \
            executor.execute(graph).value


class TestFlagshipQuestion:
    """The paper's Example 1, over a merged graph with named instances."""

    @pytest.fixture(scope="class")
    def movie_executor(self):
        merged = make_merged()
        graph = merged.graph
        concepts = {v.label: v.id for v in graph.vertices()
                    if v.props.get("kind") in {"concept", "entity"}}

        def named(name, image_id):
            v = graph.add_vertex(name, {"kind": "instance",
                                        "image_id": image_id})
            graph.add_edge(v.id, concepts[name], INSTANCE_OF)
            return v

        def item(label, image_id):
            v = graph.add_vertex(label, {"kind": "instance",
                                         "image_id": image_id})
            graph.add_edge(v.id, concepts[label], INSTANCE_OF)
            return v

        # Neville appears with Ginny in images 10 and 11, wearing a robe
        # in image 12; Draco appears with Cho once, wearing a coat.
        for image_id in (10, 11):
            neville = named("Neville Longbottom", image_id)
            ginny = named("Ginny Weasley", image_id)
            graph.add_edge(neville.id, ginny.id, "hanging out with",
                           {"image_id": image_id})
        neville12 = named("Neville Longbottom", 12)
        robe = item("robe", 12)
        graph.add_edge(neville12.id, robe.id, "wearing", {"image_id": 12})
        draco = named("Draco Malfoy", 13)
        cho = named("Cho Chang", 13)
        graph.add_edge(draco.id, cho.id, "hanging out with",
                       {"image_id": 13})
        coat = item("coat", 13)
        graph.add_edge(draco.id, coat.id, "wearing", {"image_id": 13})
        return QueryGraphExecutor(merged)

    def test_flagship_answer(self, movie_executor):
        graph = generate_query_graph(
            "What kind of clothes are worn by the wizard who is most "
            "frequently hanging out with Harry Potter's girlfriend?"
        )
        answer = movie_executor.execute(graph)
        # Neville (2 images with Ginny) beats Draco (1 with Cho), and
        # Neville wears a robe
        assert answer.value == "robe"


class TestTwoProviderBinding:
    """Regression: two condition clauses constraining the same slot
    must intersect their label sets, not let the last writer win."""

    @staticmethod
    def make_two_provider_setup():
        """dog sits on sofa AND stands on grass; cat only stands on
        grass; both eat food.  Condition A (sitting on sofa) yields
        {dog}; condition B (standing on grass) yields {cat, dog}."""
        graph = Graph(name="merged")

        def instance(label, image_id):
            return graph.add_vertex(
                label, {"kind": "instance", "image_id": image_id}
            )

        dog = instance("dog", 0)
        cat = instance("cat", 0)
        sofa = instance("sofa", 1)
        grass = instance("grass", 0)
        food = instance("food", 2)
        graph.add_edge(dog.id, sofa.id, "sitting on", {"image_id": 1})
        graph.add_edge(dog.id, grass.id, "standing on", {"image_id": 0})
        graph.add_edge(cat.id, grass.id, "standing on", {"image_id": 0})
        graph.add_edge(dog.id, food.id, "eating", {"image_id": 2})
        graph.add_edge(cat.id, food.id, "eating", {"image_id": 3})
        stats = MergeStats({}, [], 0.0, 0.0, 0, 0, 0)
        merged = MergedGraph(graph=graph, stats=stats,
                             instance_ids=[dog.id, cat.id])

        query_graph = QueryGraph(
            vertices=[
                SPOC(subject=None, predicate="sitting on",
                     object=Term("sofa", "sofa"),
                     answer_role="subject"),
                SPOC(subject=None, predicate="standing on",
                     object=Term("grass", "grass"),
                     answer_role="subject"),
                SPOC(subject=None, predicate="eating",
                     object=Term("food", "food"), is_main=True,
                     question_type=QuestionType.COUNTING,
                     answer_role="subject"),
            ],
            edges=[
                (0, 2, DependencyKind.S2S),
                (1, 2, DependencyKind.S2S),
            ],
            question="How many animals that sit on the sofa and stand "
                     "on the grass are eating food?",
        )
        return merged, query_graph

    def test_repeated_slot_writes_intersect(self):
        merged, query_graph = self.make_two_provider_setup()
        executor = QueryGraphExecutor(merged)
        answer = executor.execute(query_graph)
        # only the dog satisfies BOTH conditions; keeping just the
        # last-executed provider's labels would also count the cat
        assert answer.value == "1"


class TestPathCacheAliasing:
    """Regression: the path cache must never hand out the list object
    it stores, or caller mutations corrupt later hits."""

    def test_mutating_returned_pairs_keeps_cache_intact(self):
        executor = QueryGraphExecutor(
            make_merged(), cache=KeyCentricCache.create(pool_size=50)
        )
        graph = generate_query_graph("Is there a fence near the grass?")
        spoc = graph.vertices[0]
        binding = {"subject": None, "object": None}
        subjects = executor._resolve_slot(spoc.subject, None)
        objects = executor._resolve_slot(spoc.object, None)

        first = executor._relation_pairs(spoc, binding, subjects,
                                         objects)
        assert first
        first.clear()  # in-place caller mutation
        second = executor._relation_pairs(spoc, binding, subjects,
                                          objects)
        assert second  # the cached entry survived the mutation
        assert second is not first


class TestCachingConsistency:
    def test_cache_never_changes_answers(self):
        questions = [
            "How many dogs are standing on the grass?",
            "Is there a fence near the grass?",
            "What kind of animals is carried by the pets that are "
            "standing on the grass?",
            "How many dogs are standing on the grass?",
        ]
        merged = make_merged()
        plain = QueryGraphExecutor(merged)
        cached = QueryGraphExecutor(
            merged, cache=KeyCentricCache.create(pool_size=50)
        )
        for question in questions:
            graph = generate_query_graph(question)
            assert plain.execute(graph).value == \
                cached.execute(graph).value

    def test_cache_reduces_simulated_time(self):
        merged = make_merged()
        question = "How many dogs are standing on the grass?"
        graph = generate_query_graph(question)

        clock_cold = SimClock()
        QueryGraphExecutor(merged, clock=clock_cold).execute(graph)
        QueryGraphExecutor(merged, clock=clock_cold).execute(graph)

        clock_warm = SimClock()
        executor = QueryGraphExecutor(
            merged, cache=KeyCentricCache.create(pool_size=50),
            clock=clock_warm,
        )
        executor.execute(graph)
        executor.execute(graph)
        assert clock_warm.elapsed < clock_cold.elapsed


class TestEpochInvalidation:
    """Regression: scope/path cache keys carrying the label alone
    replay stale results after the merged graph mutates — the executor
    must key on the graph epoch and retire entries from dead epochs."""

    QUESTION = "How many dogs are standing on the grass?"

    @staticmethod
    def make_mutable_setup():
        """Two dogs standing on grass, no KG concepts: relabeling or
        removing one dog must visibly change the count (with concepts,
        instance-of expansion would mask scope staleness)."""
        graph = Graph(name="merged")

        def instance(label, image_id):
            return graph.add_vertex(
                label, {"kind": "instance", "image_id": image_id}
            )

        dog0 = instance("dog", 0)
        grass0 = instance("grass", 0)
        dog1 = instance("dog", 1)
        grass1 = instance("grass", 1)
        graph.add_edge(dog0.id, grass0.id, "standing on", {"image_id": 0})
        graph.add_edge(dog1.id, grass1.id, "standing on", {"image_id": 1})
        stats = MergeStats({}, [], 0.0, 0.0, 0, 0, 0)
        merged = MergedGraph(graph=graph, stats=stats,
                             instance_ids=[dog0.id, dog1.id])
        return merged, dog1

    def test_relabel_between_identical_queries(self):
        merged, dog1 = self.make_mutable_setup()
        executor = QueryGraphExecutor(
            merged, cache=KeyCentricCache.create(pool_size=50)
        )
        first = executor.execute(generate_query_graph(self.QUESTION))
        assert first.value == "2"
        merged.graph.relabel_vertex(dog1.id, "cat")
        # a label-only cache key replays the stale scope (the relabeled
        # vertex still exists, so no liveness filter can save it)
        second = executor.execute(generate_query_graph(self.QUESTION))
        assert second.value == "1"

    def test_removal_between_identical_queries(self):
        merged, dog1 = self.make_mutable_setup()
        executor = QueryGraphExecutor(
            merged, cache=KeyCentricCache.create(pool_size=50)
        )
        assert executor.execute(
            generate_query_graph(self.QUESTION)
        ).value == "2"
        merged.graph.remove_vertex(dog1.id)
        # stale path-cache pairs would still count the removed dog
        assert executor.execute(
            generate_query_graph(self.QUESTION)
        ).value == "1"

    def test_stale_entries_are_retired_and_counted(self):
        merged, dog1 = self.make_mutable_setup()
        stats = ExecutorStats()
        executor = QueryGraphExecutor(
            merged, cache=KeyCentricCache.create(pool_size=50),
            stats=stats,
        )
        executor.execute(generate_query_graph(self.QUESTION))
        assert stats.snapshot().stale_scope_drops == 0
        merged.graph.relabel_vertex(dog1.id, "cat")
        executor.execute(generate_query_graph(self.QUESTION))
        assert stats.snapshot().stale_scope_drops > 0

    def test_unmutated_graph_still_hits_the_cache(self):
        merged, _ = self.make_mutable_setup()
        stats = ExecutorStats()
        executor = QueryGraphExecutor(
            merged, cache=KeyCentricCache.create(pool_size=50),
            stats=stats,
        )
        executor.execute(generate_query_graph(self.QUESTION))
        executor.execute(generate_query_graph(self.QUESTION))
        report = stats.snapshot()
        assert report.scope_hits > 0
        assert report.stale_scope_drops == 0


class TestPossessiveShortCircuit:
    """An owner with no candidate out-edges has nothing to score: no
    embed_score charge, no maxScore call, empty result."""

    def test_no_out_edges_charges_nothing(self):
        graph = Graph(name="merged")
        owner = graph.add_vertex(
            "Harry Potter", {"kind": "instance", "image_id": 0}
        )
        stats = MergeStats({}, [], 0.0, 0.0, 0, 0, 0)
        merged = MergedGraph(graph=graph, stats=stats,
                             instance_ids=[owner.id])
        clock = SimClock()
        executor = QueryGraphExecutor(merged, clock=clock)
        term = Term("Harry Potter's girlfriend", "girlfriend",
                    owner="Harry Potter")
        assert executor.match_vertex(term) == []
        assert clock.counts.get("embed_score", 0) == 0

    def test_owner_with_out_edges_still_scores(self, executor):
        clock = SimClock()
        merged = make_merged()
        charged = QueryGraphExecutor(merged, clock=clock)
        term = Term("Harry Potter's girlfriend", "girlfriend",
                    owner="Harry Potter")
        matches = charged.match_vertex(term)
        assert {v.label for v in matches} >= {"Ginny Weasley"}
        assert clock.counts.get("embed_score", 0) > 0
