"""Unit tests for answer aggregation (getFinalanswer)."""

from repro.core.answer import Answer, final_answer, render_answer
from repro.resilience.events import FaultEvent
from repro.core.spoc import QuestionType, SPOC, Term
from repro.graph import Graph, RelationPair


def make_pairs(triples):
    """triples: list of (subject_label, predicate, object_label, image)."""
    graph = Graph()
    pairs = []
    for s_label, predicate, o_label, image in triples:
        s = graph.add_vertex(s_label, {"kind": "instance",
                                       "image_id": image})
        o = graph.add_vertex(o_label, {"kind": "instance",
                                       "image_id": image})
        e = graph.add_edge(s.id, o.id, predicate, {"image_id": image})
        pairs.append(RelationPair(s, e, o))
    return pairs


def spoc(qtype, answer_role="object", kind_of=False, head="animal"):
    term = Term(text=head, head=head, kind_of=kind_of, is_wh=True)
    other = Term(text="dog", head="dog")
    return SPOC(
        subject=other if answer_role == "object" else term,
        predicate="carry",
        object=term if answer_role == "object" else other,
        is_main=True,
        question_type=qtype,
        answer_role=answer_role,
    )


def kind_filter(label, ancestor):
    from repro.nlp.semlex import is_kind_of
    return is_kind_of(label, ancestor)


class TestJudgment:
    def test_yes_with_pairs(self):
        pairs = make_pairs([("dog", "near", "fence", 0)])
        answer = final_answer(spoc(QuestionType.JUDGMENT), pairs)
        assert answer.value == "yes"

    def test_no_without_pairs(self):
        answer = final_answer(spoc(QuestionType.JUDGMENT), [])
        assert answer.value == "no"


class TestCounting:
    def test_counts_distinct_instances(self):
        pairs = make_pairs([
            ("dog", "standing on", "grass", 0),
            ("dog", "standing on", "grass", 1),
            ("dog", "standing on", "grass", 2),
        ])
        answer = final_answer(spoc(QuestionType.COUNTING,
                                   answer_role="subject", head="dog"),
                              pairs)
        assert answer.value == "3"

    def test_kind_counting_needs_min_images(self):
        pairs = make_pairs([
            ("dog", "eating", "grass", 0),
            ("dog", "eating", "grass", 1),
            ("cow", "eating", "grass", 2),   # only one image: dropped
        ])
        answer = final_answer(
            spoc(QuestionType.COUNTING, answer_role="subject",
                 kind_of=True, head="animal"),
            pairs, kind_min_images=2,
        )
        assert answer.value == "1"

    def test_kind_counting_default_threshold(self):
        pairs = make_pairs([
            ("dog", "eating", "grass", i) for i in range(3)
        ] + [
            ("cow", "eating", "grass", 5),
            ("cow", "eating", "grass", 6),  # two images < default 3
        ])
        answer = final_answer(
            spoc(QuestionType.COUNTING, answer_role="subject",
                 kind_of=True, head="animal"),
            pairs,
        )
        assert answer.value == "1"

    def test_zero_count(self):
        answer = final_answer(spoc(QuestionType.COUNTING,
                                   answer_role="subject"), [])
        assert answer.value == "0"


class TestReasoning:
    def test_mode_label_wins(self):
        pairs = make_pairs([
            ("dog", "carrying", "bird", 0),
            ("dog", "carrying", "bird", 1),
            ("dog", "carrying", "ball", 2),
        ])
        answer = final_answer(spoc(QuestionType.REASONING), pairs,
                              kind_filter=kind_filter)
        assert answer.value == "bird"

    def test_kind_of_filters_non_kinds(self):
        pairs = make_pairs([
            ("dog", "carrying", "frisbee", 0),  # frisbee is a toy,
            ("dog", "carrying", "frisbee", 1),  # not an animal
            ("dog", "carrying", "bird", 2),
        ])
        answer = final_answer(
            spoc(QuestionType.REASONING, kind_of=True, head="animal"),
            pairs, kind_filter=kind_filter,
        )
        assert answer.value == "bird"

    def test_unknown_when_empty(self):
        answer = final_answer(spoc(QuestionType.REASONING), [],
                              kind_filter=kind_filter)
        assert answer.value == "unknown"

    def test_support_restricted_to_winner(self):
        pairs = make_pairs([
            ("dog", "carrying", "bird", 0),
            ("dog", "carrying", "bird", 3),
            ("dog", "carrying", "ball", 7),
        ])
        answer = final_answer(spoc(QuestionType.REASONING), pairs,
                              kind_filter=kind_filter)
        assert answer.supporting_images == [0, 3]


class TestAnswerObject:
    def test_str(self):
        assert str(Answer(QuestionType.JUDGMENT, "yes")) == "yes"

    def test_supporting_images_empty(self):
        assert Answer(QuestionType.JUDGMENT, "no").supporting_images == []


class TestSerialization:
    """Satellite: the single stable to_dict()/JSON wire shape."""

    def make_answer(self):
        pairs = make_pairs([("dog", "carry", "cat", 3),
                            ("dog", "carry", "cat", 5)])
        return Answer(
            QuestionType.COUNTING, "2", pairs, latency=0.125,
            degraded=True, confidence=0.5,
            fault_events=[FaultEvent("cache.scope", "retry",
                                     attempts=2, detail="poked")],
        )

    def test_to_dict_shape(self):
        payload = self.make_answer().to_dict()
        assert sorted(payload) == ["answer", "meta", "question_type",
                                   "sources"]
        assert payload["answer"] == "2"
        assert payload["question_type"] == "counting"
        assert payload["sources"]["images"] == [3, 5]
        assert payload["sources"]["support"][0] == {
            "subject": "dog", "predicate": "carry",
            "object": "cat", "image_id": 3,
        }
        meta = payload["meta"]
        assert meta["latency"] == 0.125
        assert meta["degraded"] is True
        assert meta["confidence"] == 0.5
        assert meta["fault_events"] == [{
            "site": "cache.scope", "kind": "retry",
            "attempts": 2, "detail": "poked",
        }]

    def test_round_trip_is_lossless(self):
        original = self.make_answer()
        restored = Answer.from_dict(original.to_dict())
        assert restored.to_dict() == original.to_dict()
        assert restored.to_json() == original.to_json()
        assert restored.question_type is QuestionType.COUNTING
        assert restored.fault_events == original.fault_events

    def test_round_trip_through_json_text(self):
        import json

        original = self.make_answer()
        restored = Answer.from_dict(json.loads(original.to_json()))
        assert restored.to_json() == original.to_json()

    def test_round_trip_of_plain_answer(self):
        original = Answer(QuestionType.JUDGMENT, "yes")
        restored = Answer.from_dict(original.to_dict())
        assert restored.to_dict() == original.to_dict()
        assert restored.latency is None
        assert not restored.degraded

    def test_to_json_is_deterministic_bytes(self):
        first = self.make_answer().to_json()
        second = self.make_answer().to_json()
        assert first == second
        assert first.index('"answer"') < first.index('"meta"')

    def test_malformed_meta_rejected(self):
        import pytest

        payload = self.make_answer().to_dict()
        payload["meta"] = "not-a-dict"
        with pytest.raises(ValueError):
            Answer.from_dict(payload)


class TestRenderAnswer:
    def test_render_shares_the_wire_fields(self):
        pairs = make_pairs([("dog", "carry", "cat", 3)])
        answer = Answer(
            QuestionType.JUDGMENT, "yes", pairs, degraded=True,
            confidence=0.5,
            fault_events=[FaultEvent("cache.path", "recovered",
                                     attempts=2)],
        )
        text = render_answer(answer, "Is the dog carrying a cat?")
        assert "Q: Is the dog carrying a cat?" in text
        assert "A: yes" in text
        assert "evidence images: [3]" in text
        assert "degraded (confidence 0.50)" in text
        assert "[cache.path] recovered after 2 attempt(s)" in text

    def test_render_without_question_or_evidence(self):
        answer = Answer(QuestionType.REASONING, "unknown")
        assert render_answer(answer) == "A: unknown"
