"""Tests for the concurrent batch-execution engine."""

import pytest

from repro.core import (
    BatchExecutor,
    ExecutorStats,
    KeyCentricCache,
    generate_query_graph,
)
from repro.simtime import SimClock
from tests.core.test_executor import make_merged

QUESTIONS = [
    "How many dogs are standing on the grass?",
    "Is there a fence near the grass?",
    "What kind of animals is carried by the pets that are standing "
    "on the grass?",
    "Is there a cat near the grass?",
    "How many dogs are standing on the grass?",
    "Is there a fence near the grass?",
]


def parse_all(questions=QUESTIONS):
    return [generate_query_graph(q) for q in questions]


class TestSerialFallback:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            BatchExecutor(make_merged(), workers=0)

    def test_single_worker_single_shard(self):
        batch = BatchExecutor(make_merged(), workers=1)
        result = batch.run(parse_all())
        assert result.workers == 1
        assert len(result.shards) == 1
        assert result.simulated_total == \
            pytest.approx(result.simulated_makespan)

    def test_none_graphs_answer_unknown_in_order(self):
        graphs = parse_all()
        graphs[2] = None
        result = BatchExecutor(make_merged(), workers=1).run(graphs)
        assert len(result.answers) == len(graphs)
        assert result.answers[2].value == "unknown"
        assert result.latencies[2] == 0.0


class TestConcurrentExecution:
    def test_parallel_answers_match_serial(self):
        merged = make_merged()
        graphs = parse_all()
        serial = BatchExecutor(
            merged, cache=KeyCentricCache.create(pool_size=50),
            workers=1,
        ).run(graphs)
        parallel = BatchExecutor(
            merged, cache=KeyCentricCache.create(pool_size=50),
            workers=4,
        ).run(graphs)
        assert [a.value for a in serial.answers] == \
            [a.value for a in parallel.answers]
        assert [a.question_type for a in serial.answers] == \
            [a.question_type for a in parallel.answers]

    def test_result_invariants(self):
        result = BatchExecutor(
            make_merged(), cache=KeyCentricCache.create(pool_size=50),
            workers=4,
        ).run(parse_all())
        assert 1 <= len(result.shards) <= 4
        assert result.simulated_total == \
            pytest.approx(sum(result.shard_elapsed))
        assert result.simulated_makespan == \
            pytest.approx(max(result.shard_elapsed))
        assert result.simulated_makespan <= result.simulated_total
        assert result.simulated_makespan >= max(result.latencies)
        assert result.wall_clock >= 0.0
        assert result.speedup >= 1.0

    def test_submission_order_does_not_change_output_order(self):
        graphs = parse_all()
        order = list(reversed(range(len(graphs))))
        result = BatchExecutor(make_merged(), workers=3).run(
            graphs, order=order
        )
        counting = [a.value for a in result.answers]
        assert counting[0] == "2"   # first question, first slot

    def test_shards_merge_into_aggregate_clock(self):
        result = BatchExecutor(
            make_merged(), workers=2
        ).run(parse_all())
        aggregate = SimClock()
        result.merge_into(aggregate)
        assert aggregate.elapsed == pytest.approx(result.simulated_total)
        assert sum(aggregate.counts.values()) == \
            sum(sum(s.counts.values()) for s in result.shards)

    def test_stats_collected_across_workers(self):
        stats = ExecutorStats()
        BatchExecutor(
            make_merged(), cache=KeyCentricCache.create(pool_size=50),
            workers=4, stats=stats,
        ).run(parse_all())
        report = stats.snapshot()
        assert report.queries == len(QUESTIONS)
        assert report.vertices >= report.queries
        assert len(report.per_query_vertices) == report.queries
        assert report.scope_hits + report.scope_misses > 0


class TestMVQAEquivalence:
    """Acceptance: workers=4 answers identical (type + value) to the
    serial path on the MVQA question set."""

    @pytest.fixture(scope="class")
    def mvqa(self):
        from repro.dataset.mvqa import build_mvqa

        return build_mvqa(seed=5, pool_size=1_200, image_count=400)

    def test_answer_many_workers_equivalence(self, mvqa):
        from repro.core import SVQA

        questions = [q.text for q in mvqa.questions]
        serial = SVQA(mvqa.scenes, mvqa.kg)
        serial.build()
        serial_answers = serial.answer_many(questions, workers=1)

        parallel = SVQA(mvqa.scenes, mvqa.kg)
        parallel.build()
        parallel_answers = parallel.answer_many(questions, workers=4)

        assert [a.value for a in serial_answers] == \
            [a.value for a in parallel_answers]
        assert [a.question_type for a in serial_answers] == \
            [a.question_type for a in parallel_answers]
        batch = parallel.last_batch
        assert batch.workers == 4
        assert batch.simulated_makespan <= batch.simulated_total


class TestPerSlotDeadlines:
    """Satellite: a mid-batch deadline kill must not shift slots."""

    MULTI = ("What kind of animals is carried by the pets that are "
             "standing on the grass?")

    def run_batch(self, workers, deadlines):
        questions = [
            "Is there a fence near the grass?",
            self.MULTI,
            "How many dogs are standing on the grass?",
        ]
        graphs = [generate_query_graph(q) for q in questions]
        return BatchExecutor(make_merged(), workers=workers).run(
            graphs, deadlines=deadlines)

    def test_mid_batch_kill_keeps_slots_aligned(self):
        result = self.run_batch(workers=1, deadlines=[None, 1e-6, None])
        assert len(result.answers) == 3
        killed = result.answers[1]
        assert killed.value == "unknown"
        assert killed.degraded
        # the neighbours are exactly what an unbudgeted run produces
        free = self.run_batch(workers=1, deadlines=None)
        assert result.answers[0].value == free.answers[0].value
        assert result.answers[2].value == free.answers[2].value
        assert not free.answers[1].degraded

    def test_workers_1_and_4_agree_on_kills(self):
        deadlines = [None, 1e-6, None]
        serial = self.run_batch(workers=1, deadlines=deadlines)
        parallel = self.run_batch(workers=4, deadlines=deadlines)
        assert [a.value for a in serial.answers] == \
            [a.value for a in parallel.answers]
        assert [a.degraded for a in serial.answers] == \
            [a.degraded for a in parallel.answers]

    def test_deadline_list_must_match_batch_length(self):
        graphs = parse_all()
        with pytest.raises(ValueError):
            BatchExecutor(make_merged(), workers=1).run(
                graphs, deadlines=[None])
