"""Focused unit tests for clause spans and SPOC extraction details."""

import pytest

from repro.core.clauses import clause_token_span, segment_clauses
from repro.core.spoc import SPOC, Term
from repro.core.spoc_extract import CONSTRAINT_WORDS, validate_spoc
from repro.errors import QueryParseError
from repro.nlp import parse


class TestClauseSpans:
    def test_main_span_excludes_relative(self):
        tree = parse("Does the dog that is holding the frisbee appear "
                     "near the man?")
        clauses = segment_clauses(tree)
        main = next(c for c in clauses if c.is_main)
        span_words = [tree.tokens[i].text
                      for i in clause_token_span(tree, main, clauses)]
        assert "holding" not in span_words
        assert "appear" in span_words
        assert "dog" in span_words

    def test_relative_span_is_local(self):
        tree = parse("Does the dog that is holding the frisbee appear "
                     "near the man?")
        clauses = segment_clauses(tree)
        relative = next(c for c in clauses if not c.is_main)
        span_words = [tree.tokens[i].text
                      for i in clause_token_span(tree, relative, clauses)]
        assert "holding" in span_words
        assert "frisbee" in span_words
        assert "appear" not in span_words


class TestTermStructure:
    def test_term_slot_access(self):
        subject = Term("dog", "dog")
        spoc = SPOC(subject=subject, predicate="run", object=None)
        assert spoc.slot("subject") is subject
        assert spoc.slot("object") is None

    def test_unknown_slot_raises(self):
        spoc = SPOC(subject=None, predicate="run", object=None)
        with pytest.raises(ValueError):
            spoc.slot("verb")

    def test_repr_contains_fields(self):
        spoc = SPOC(subject=Term("dog", "dog"), predicate="run",
                    object=None, constraint="most")
        text = repr(spoc)
        assert "dog" in text and "most" in text


class TestValidation:
    def test_empty_spoc_rejected(self):
        spoc = SPOC(subject=None, predicate="run", object=None)
        with pytest.raises(QueryParseError):
            validate_spoc(spoc)

    def test_missing_predicate_rejected(self):
        spoc = SPOC(subject=Term("dog", "dog"), predicate="",
                    object=None)
        with pytest.raises(QueryParseError):
            validate_spoc(spoc)

    def test_valid_spoc_passes(self):
        spoc = SPOC(subject=Term("dog", "dog"), predicate="run",
                    object=Term("grass", "grass"))
        validate_spoc(spoc)  # no exception


class TestConstraintWords:
    def test_predefined_set_nonempty(self):
        assert "most frequently" in CONSTRAINT_WORDS

    def test_constraint_parsed_from_question(self):
        from repro.core import generate_query_graph

        graph = generate_query_graph(
            "Does the dog that is most frequently standing on the grass "
            "appear near the fence?"
        )
        constraints = [v.constraint for v in graph.vertices]
        assert "most frequently" in constraints

    def test_no_constraint_is_none(self):
        from repro.core import generate_query_graph

        graph = generate_query_graph(
            "Does the dog that is standing on the grass appear near "
            "the fence?"
        )
        assert all(v.constraint is None for v in graph.vertices)
