"""Unit tests for clause segmentation, SPOC extraction, and Algorithm 2."""

import pytest

from repro.core import (
    DependencyKind,
    QuestionType,
    describe_query_graph,
    generate_query_graph,
    segment_clauses,
)
from repro.errors import QueryParseError
from repro.nlp import parse


FLAGSHIP = (
    "What kind of clothes are worn by the wizard who is most frequently "
    "hanging out with Harry Potter's girlfriend?"
)


class TestClauseSegmentation:
    def test_two_clauses(self):
        tree = parse(FLAGSHIP)
        clauses = segment_clauses(tree)
        assert len(clauses) == 2
        assert clauses[0].is_main
        assert not clauses[1].is_main

    def test_relative_clause_has_antecedent(self):
        tree = parse(FLAGSHIP)
        clauses = segment_clauses(tree)
        antecedent = clauses[1].antecedent
        assert tree.tokens[antecedent].text == "wizard"

    def test_depths(self):
        tree = parse("Does the dog that is holding the frisbee appear "
                     "near the man that is next to the bus?")
        clauses = segment_clauses(tree)
        assert [c.depth for c in clauses] == [0, 1, 1]

    def test_nested_depth(self):
        tree = parse("How many dogs are standing on the grass that is "
                     "near the fence that is behind the house?")
        clauses = segment_clauses(tree)
        assert sorted(c.depth for c in clauses) == [0, 1, 2]


class TestFlagshipSPOCs:
    """Example 4 / Figure 4 of the paper, end to end."""

    @pytest.fixture(scope="class")
    def graph(self):
        return generate_query_graph(FLAGSHIP)

    def test_main_spoc_voice_normalized(self, graph):
        main = graph.vertices[graph.main_index]
        # "are worn" became the active "wear" with subject wizard
        assert main.predicate == "wear"
        assert main.subject.head == "wizard"
        assert main.object.head == "clothes"
        assert main.object.kind_of

    def test_condition_spoc(self, graph):
        condition = graph.vertices[1 - graph.main_index]
        assert condition.predicate == "hang out with"
        assert condition.subject.head == "wizard"
        assert condition.object.head == "girlfriend"
        assert condition.object.owner == "Harry Potter"

    def test_constraint_extracted(self, graph):
        condition = graph.vertices[1 - graph.main_index]
        assert condition.constraint == "most frequently"

    def test_s2s_edge(self, graph):
        assert len(graph.edges) == 1
        src, dst, kind = graph.edges[0]
        assert kind is DependencyKind.S2S
        assert dst == graph.main_index

    def test_question_type(self, graph):
        assert graph.question_type is QuestionType.REASONING

    def test_starts_at_condition(self, graph):
        assert graph.start_vertices() == [1 - graph.main_index + 0]


class TestQuestionTypes:
    def test_counting(self):
        graph = generate_query_graph(
            "How many dogs are standing on the grass that is near the "
            "fence?"
        )
        assert graph.question_type is QuestionType.COUNTING
        main = graph.vertices[graph.main_index]
        assert main.answer_role == "subject"
        assert main.subject.head == "dog"

    def test_counting_kinds(self):
        graph = generate_query_graph(
            "How many kinds of animals are eating the grass that is near "
            "the fence?"
        )
        main = graph.vertices[graph.main_index]
        assert main.subject.kind_of
        assert main.subject.head == "animal"

    def test_judgment_do_support(self):
        graph = generate_query_graph(
            "Does the dog that is holding the frisbee appear in front of "
            "the man?"
        )
        assert graph.question_type is QuestionType.JUDGMENT
        main = graph.vertices[graph.main_index]
        assert main.predicate == "appear in front of"

    def test_judgment_copular(self):
        graph = generate_query_graph(
            "Is the animal that is sitting on the sofa a cat?"
        )
        assert graph.question_type is QuestionType.JUDGMENT
        main = graph.vertices[graph.main_index]
        assert main.predicate == "be"
        assert main.object.head == "cat"

    def test_reasoning(self):
        graph = generate_query_graph(
            "What kind of animals is carried by the pets that were "
            "situated in the car?"
        )
        assert graph.question_type is QuestionType.REASONING


class TestEdgeKinds:
    def test_o2s_for_object_chain(self):
        graph = generate_query_graph(
            "How many dogs are standing on the grass that is near the "
            "fence?"
        )
        kinds = [kind for _, _, kind in graph.edges]
        assert kinds == [DependencyKind.O2S]

    def test_two_conditions_bind_different_slots(self):
        graph = generate_query_graph(
            "Does the dog that is holding the frisbee appear near the "
            "man that is next to the bus?"
        )
        assert len(graph.edges) == 2
        kinds = {kind for _, _, kind in graph.edges}
        assert DependencyKind.S2S in kinds
        assert DependencyKind.O2S in kinds

    def test_three_clause_chain(self):
        graph = generate_query_graph(
            "How many dogs are standing on the grass that is near the "
            "fence that is behind the house?"
        )
        assert len(graph.vertices) == 3
        assert len(graph.edges) == 2
        # execution starts at the deepest condition only
        assert len(graph.start_vertices()) == 1


class TestDependencyKindSemantics:
    def test_consumer_and_provider_slots(self):
        assert DependencyKind.S2O.consumer_slot == "subject"
        assert DependencyKind.S2O.provider_slot == "object"
        assert DependencyKind.O2S.consumer_slot == "object"
        assert DependencyKind.O2S.provider_slot == "subject"


class TestErrors:
    def test_foreign_word_fails_cleanly(self):
        with pytest.raises(QueryParseError):
            generate_query_graph(
                "Does the kind of canis that is sitting on the bed appear "
                "in front of the vehicle?"
            )

    def test_describe_renders(self):
        graph = generate_query_graph("Is there a dog near the fence?")
        text = describe_query_graph(graph)
        assert "v0" in text
