"""Unit tests for the frequency-ratio query scheduler (§V-B)."""

from repro.core.query_graph import generate_query_graph
from repro.core.scheduler import schedule_queries, vertex_key


def graphs_for(questions):
    return [generate_query_graph(q) for q in questions]


class TestVertexKey:
    def test_key_is_normalized(self):
        g1 = generate_query_graph("Is there a dog near the fence?")
        g2 = generate_query_graph("Is there a dog near the fence?")
        assert vertex_key(g1.vertices[0]) == vertex_key(g2.vertices[0])

    def test_different_questions_different_keys(self):
        g1 = generate_query_graph("Is there a dog near the fence?")
        g2 = generate_query_graph("Is there a cat near the fence?")
        assert vertex_key(g1.vertices[0]) != vertex_key(g2.vertices[0])


class TestSchedule:
    def test_empty(self):
        plan = schedule_queries([])
        assert plan.order == []

    def test_order_is_permutation(self):
        graphs = graphs_for([
            "Is there a dog near the fence?",
            "Is there a cat near the sofa?",
            "How many dogs are standing on the grass?",
        ])
        plan = schedule_queries(graphs)
        assert sorted(plan.order) == [0, 1, 2]

    def test_shared_vertices_run_first(self):
        # two questions share the dog/fence clause; the unique one is last
        graphs = graphs_for([
            "Is there a bus near the station?",
            "Is there a dog near the fence?",
            "Is there a dog near the fence?",
        ])
        plan = schedule_queries(graphs)
        assert plan.order[-1] == 0

    def test_more_vertices_break_ties(self):
        # same frequencies; the graph with more clauses goes first
        graphs = graphs_for([
            "Is there a dog near the fence?",
            "Does the dog that is holding the frisbee appear near the "
            "fence?",
        ])
        plan = schedule_queries(graphs)
        assert plan.order[0] == 1

    def test_scheduled_returns_graphs_in_order(self):
        graphs = graphs_for([
            "Is there a bus near the station?",
            "Is there a dog near the fence?",
            "Is there a dog near the fence?",
        ])
        plan = schedule_queries(graphs)
        scheduled = plan.scheduled(graphs)
        assert scheduled[0] is graphs[plan.order[0]]

    def test_key_frequency_counts(self):
        graphs = graphs_for([
            "Is there a dog near the fence?",
            "Is there a dog near the fence?",
        ])
        plan = schedule_queries(graphs)
        assert max(plan.key_frequency.values()) == 2


class TestDeterminism:
    def test_equal_scores_keep_input_order(self):
        # identical graphs tie on score AND vertex count; the index
        # tiebreaker must keep them in input order
        graphs = graphs_for(["Is there a dog near the fence?"] * 4)
        plan = schedule_queries(graphs)
        assert plan.order == [0, 1, 2, 3]

    def test_repeated_scheduling_is_stable(self):
        graphs = graphs_for([
            "Is there a bus near the station?",
            "Is there a dog near the fence?",
            "Is there a cat near the sofa?",
            "Is there a dog near the fence?",
        ])
        first = schedule_queries(graphs)
        for _ in range(5):
            assert schedule_queries(graphs).order == first.order
