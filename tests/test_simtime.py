"""Unit tests for the simulated-time cost model."""

import pytest

from repro.simtime import DEFAULT_COSTS, SimClock


class TestSimClock:
    def test_charge_accumulates(self):
        clock = SimClock()
        clock.charge("graph_probe") if "graph_probe" in clock.costs else None
        clock.charge("pos_tag")
        clock.charge("pos_tag", times=2)
        assert clock.elapsed == pytest.approx(3 * DEFAULT_COSTS["pos_tag"])
        assert clock.counts["pos_tag"] == 3

    def test_unknown_operation_raises(self):
        with pytest.raises(KeyError):
            SimClock().charge("warp_drive")

    def test_negative_times_raises(self):
        with pytest.raises(ValueError):
            SimClock().charge("pos_tag", times=-1)

    def test_charge_amount(self):
        clock = SimClock()
        clock.charge_amount("edge_scan", 1.5)
        assert clock.elapsed == pytest.approx(1.5)

    def test_negative_amount_raises(self):
        with pytest.raises(ValueError):
            SimClock().charge_amount("edge_scan", -0.1)

    def test_reset(self):
        clock = SimClock()
        clock.charge("pos_tag")
        clock.reset()
        assert clock.elapsed == 0.0
        assert clock.counts == {}

    def test_snapshot_interval(self):
        clock = SimClock()
        clock.charge("pos_tag")
        snap = clock.snapshot()
        clock.charge("dep_parse")
        assert snap.interval == pytest.approx(DEFAULT_COSTS["dep_parse"])

    def test_custom_costs(self):
        clock = SimClock(costs={"thing": 2.0})
        clock.charge("thing")
        assert clock.elapsed == 2.0

    def test_charges_are_additive(self):
        clock = SimClock()
        total = 0.0
        for op in ("pos_tag", "dep_parse", "vqa_forward"):
            total += clock.charge(op)
        assert clock.elapsed == pytest.approx(total)


class TestShards:
    def test_fork_shares_costs_but_not_state(self):
        clock = SimClock(costs={"thing": 2.0})
        clock.charge("thing")
        shard = clock.fork()
        assert shard.elapsed == 0.0
        assert shard.counts == {}
        shard.charge("thing")
        assert shard.elapsed == 2.0
        assert clock.elapsed == 2.0  # parent untouched by the shard

    def test_fork_costs_are_independent_copies(self):
        clock = SimClock()
        shard = clock.fork()
        shard.costs["pos_tag"] = 99.0
        assert clock.costs["pos_tag"] == DEFAULT_COSTS["pos_tag"]

    def test_merge_adds_elapsed_and_counts(self):
        clock = SimClock()
        clock.charge("pos_tag")
        shard = clock.fork()
        shard.charge("pos_tag")
        shard.charge("dep_parse", times=2)
        clock.merge(shard)
        assert clock.elapsed == pytest.approx(
            2 * DEFAULT_COSTS["pos_tag"] + 2 * DEFAULT_COSTS["dep_parse"]
        )
        assert clock.counts["pos_tag"] == 2
        assert clock.counts["dep_parse"] == 2
