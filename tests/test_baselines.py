"""Unit tests for the baseline simulations (VQA models + splitters)."""

import pytest

from repro.baselines import (
    ABCD_MLP,
    BASELINES,
    BaselineSplitter,
    BaselineVQA,
    DISSIM,
    LinguisticSplitter,
    OFA,
    SPLITTERS,
    VISUALBERT,
)
from repro.core.spoc import QuestionType
from repro.simtime import SimClock
from repro.synth import SceneGenerator


@pytest.fixture(scope="module")
def scenes():
    return SceneGenerator(seed=41).generate_pool(40)


class TestBaselineVQA:
    def test_answers_deterministic(self, scenes):
        question = "Is there a dog near the fence?"
        a = BaselineVQA(VISUALBERT, scenes).answer(question)
        b = BaselineVQA(VISUALBERT, scenes).answer(question)
        assert a.value == b.value

    def test_latency_model(self, scenes):
        model = BaselineVQA(VISUALBERT, scenes)
        model.answer("Is there a dog near the fence?")
        first = model.clock.elapsed
        model.answer("Is there a cat near the sofa?")
        second = model.clock.elapsed - first
        # the load cost is paid exactly once
        assert first > second
        assert first - second == pytest.approx(VISUALBERT.load_seconds)

    def test_per_clause_forward_cost(self, scenes):
        model = BaselineVQA(OFA, scenes)
        model.answer("Is there a dog near the fence?")  # 2 clauses
        cost_two = model.clock.counts.get("vqa_forward", 0)
        assert cost_two >= 1

    def test_unparseable_question(self, scenes):
        model = BaselineVQA(OFA, scenes)
        answer = model.answer(
            "Does the kind of canis that is sitting on the bed appear "
            "in front of the vehicle?"
        )
        assert answer.value == "unknown"

    def test_answer_many_length(self, scenes):
        model = BaselineVQA(OFA, scenes)
        answers = model.answer_many(["Is there a dog near the fence?"] * 3)
        assert len(answers) == 3

    def test_reliability_lookup(self):
        assert VISUALBERT.reliability_for(QuestionType.COUNTING) == \
            pytest.approx(0.62)

    def test_registry(self):
        assert set(BASELINES) == {"VisualBert", "Vilt", "OFA"}


class TestSplitters:
    QUESTION = ("Does the dog that is holding the frisbee appear near "
                "the man?")

    def test_baseline_splitter_splits(self):
        splitter = BaselineSplitter(ABCD_MLP)
        clauses = splitter.split(self.QUESTION)
        assert len(clauses) == 2

    def test_load_cost_once(self):
        clock = SimClock()
        splitter = BaselineSplitter(DISSIM, clock)
        splitter.split(self.QUESTION)
        after_first = clock.elapsed
        splitter.split(self.QUESTION)
        after_second = clock.elapsed
        assert after_first > (after_second - after_first)

    def test_linguistic_splitter_no_load(self):
        clock = SimClock()
        LinguisticSplitter(clock).split(self.QUESTION)
        assert clock.elapsed < 1.0

    def test_linguistic_beats_dl_on_one_question(self):
        ours = SimClock()
        LinguisticSplitter(ours).split(self.QUESTION)
        theirs = SimClock()
        BaselineSplitter(ABCD_MLP, theirs).split(self.QUESTION)
        assert ours.elapsed < theirs.elapsed

    def test_unparseable_returns_whole(self):
        splitter = LinguisticSplitter()
        out = splitter.split("canis canis canis")
        assert out == ["canis canis canis"]

    def test_registry(self):
        assert set(SPLITTERS) == {"ABCD-MLP", "ABCD-bilinear", "DisSim"}
