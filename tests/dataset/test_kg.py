"""Unit tests for the knowledge-graph builders."""

from repro.dataset.kg import (
    IS_A,
    build_commonsense_kg,
    build_movie_kg,
    character_names,
    characters_with_occupation,
)
from repro.synth.taxonomy import CATEGORIES


class TestCommonsenseKG:
    def test_every_category_has_a_concept(self):
        kg = build_commonsense_kg()
        for category in CATEGORIES:
            assert kg.find_vertices(category.name)

    def test_hypernym_edges(self):
        kg = build_commonsense_kg()
        dog = kg.find_vertices("dog")[0]
        parents = [kg.vertex(e.dst).label for e in kg.out_edges(dog.id)
                   if e.label == IS_A]
        assert parents == ["pet"]

    def test_hypernym_chain_reaches_animal(self):
        kg = build_commonsense_kg()
        pet = kg.find_vertices("pet")[0]
        parents = [kg.vertex(e.dst).label for e in kg.out_edges(pet.id)]
        assert "animal" in parents

    def test_all_vertices_are_concepts(self):
        kg = build_commonsense_kg()
        assert all(v.props.get("kind") == "concept" for v in kg.vertices())

    def test_deterministic(self):
        a = build_commonsense_kg()
        b = build_commonsense_kg()
        assert a.vertex_count == b.vertex_count
        assert a.edge_count == b.edge_count


class TestMovieKG:
    def test_characters_present(self):
        kg = build_movie_kg()
        for name in character_names():
            vertices = kg.find_vertices(name)
            assert vertices and vertices[0].props["kind"] == "entity"

    def test_girlfriend_edges(self):
        kg = build_movie_kg()
        harry = kg.find_vertices("Harry Potter")[0]
        girlfriends = sorted(
            kg.vertex(e.dst).label for e in kg.out_edges(harry.id)
            if e.label == "girlfriend of"
        )
        assert girlfriends == ["Cho Chang", "Ginny Weasley"]

    def test_occupations(self):
        kg = build_movie_kg()
        wizards = characters_with_occupation("wizard")
        assert "Harry Potter" in wizards
        harry = kg.find_vertices("Harry Potter")[0]
        occupations = [kg.vertex(e.dst).label
                       for e in kg.out_edges(harry.id)
                       if e.label == IS_A]
        assert occupations == ["wizard"]

    def test_includes_commonsense_by_default(self):
        kg = build_movie_kg()
        assert kg.find_vertices("dog")

    def test_without_commonsense(self):
        kg = build_movie_kg(include_commonsense=False)
        assert not kg.find_vertices("dog")
        assert kg.find_vertices("Harry Potter")
