"""Unit tests for the ground-truth index (the annotation oracle)."""

import pytest

from repro.dataset.groundtruth import GroundTruthIndex, categories_for_word
from repro.synth import Box, SceneObject, SceneRelation, SyntheticScene


@pytest.fixture
def gt():
    """Images: 0 dog-carries-bird, 1 dog-on-grass, 2 cat-on-grass x2imgs."""
    def scene(image_id, spec):
        objects = []
        relations = []
        for i, (category, *_rest) in enumerate(spec["objects"]):
            objects.append(SceneObject(i, category,
                                       Box(10 * i, 10, 9, 9), 0.5))
        for src, predicate, dst in spec["relations"]:
            relations.append(SceneRelation(src, dst, predicate))
        return SyntheticScene(image_id, objects, relations)

    scenes = [
        scene(0, {"objects": [("dog",), ("bird",)],
                  "relations": [(0, "carrying", 1)]}),
        scene(1, {"objects": [("dog",), ("grass",)],
                  "relations": [(0, "standing on", 1)]}),
        scene(2, {"objects": [("cat",), ("grass",)],
                  "relations": [(0, "standing on", 1)]}),
        scene(3, {"objects": [("cat",), ("grass",)],
                  "relations": [(0, "standing on", 1)]}),
    ]
    return GroundTruthIndex(scenes)


class TestCategoriesForWord:
    def test_category_denotes_itself(self):
        assert categories_for_word("dog") == {"dog"}

    def test_hypernym_expands(self):
        assert {"dog", "cat", "bird"} <= categories_for_word("pet")

    def test_animal_includes_farm_animals(self):
        cats = categories_for_word("animal")
        assert {"dog", "cat", "horse", "cow"} <= cats

    def test_unknown_word_empty(self):
        assert categories_for_word("spaceship") == set()


class TestFind:
    def test_find_exact(self, gt):
        triples = gt.find({"dog"}, "carrying", {"bird"})
        assert len(triples) == 1
        assert triples[0].image_id == 0

    def test_find_any_object(self, gt):
        triples = gt.find({"dog"}, "standing on", None)
        assert len(triples) == 1

    def test_find_none_for_absent(self, gt):
        assert gt.find({"cat"}, "carrying", None) == []


class TestClauseSemantics:
    def test_condition_labels(self, gt):
        labels = gt.condition_labels("pet", "standing on", "grass")
        assert labels == {"dog", "cat"}

    def test_condition_with_most_constraint(self, gt):
        # cats stand on grass in 2 images, dogs in 1
        labels = gt.condition_labels("pet", "standing on", "grass",
                                     constraint="most frequently")
        assert labels == {"cat"}

    def test_condition_with_least_constraint(self, gt):
        labels = gt.condition_labels("pet", "standing on", "grass",
                                     constraint="least frequently")
        assert labels == {"dog"}

    def test_reasoning_answer(self, gt):
        answer, support = gt.reasoning_answer({"dog"}, "carrying", "animal")
        assert answer == "bird"
        assert [t.image_id for t in support] == [0]

    def test_reasoning_answer_margin(self, gt):
        answer, _ = gt.reasoning_answer({"dog"}, "carrying", "animal",
                                        min_support=5)
        assert answer is None

    def test_counting_answer(self, gt):
        count, _ = gt.counting_answer("cat", "standing on", {"grass"})
        assert count == 2

    def test_counting_kinds_ambiguous_band(self, gt):
        # both dog (1 image) and cat (2 images): cat is in band [2,3]
        count, _ = gt.counting_kinds_answer("pet", "standing on",
                                            {"grass"})
        assert count == -1

    def test_counting_kinds_no_band(self, gt):
        count, _ = gt.counting_kinds_answer(
            "pet", "standing on", {"grass"},
            min_images=1, ambiguous_band=(1, 0),
        )
        assert count == 2

    def test_judgment(self, gt):
        yes, _ = gt.judgment_answer({"dog"}, "carrying", "bird")
        assert yes
        no, _ = gt.judgment_answer({"cat"}, "carrying", "bird")
        assert not no


class TestDatasetHelpers:
    def test_images_mentioning(self, gt):
        assert gt.images_mentioning({"dog"}) == {0, 1}
        assert gt.images_mentioning({"pet"}) == {0, 1, 2, 3}

    def test_cooccurrence(self, gt):
        assert gt.cooccurrence_images({"dog"}, "bird") == {0}
        assert gt.cooccurrence_images({"cat"}, "bird") == set()

    def test_requires_multiple_images(self, gt):
        condition = gt.find({"dog"}, "standing on", None)   # image 1
        main = gt.find({"dog"}, "carrying", None)           # image 0
        assert gt.requires_multiple_images(condition, main)
        assert not gt.requires_multiple_images(main, main)
