"""Integration tests for the MVQA builder (small scale for speed)."""

import pytest

from repro.core.spoc import QuestionType
from repro.dataset.mvqa import (
    COMPOSITION,
    build_mvqa,
    mvqa_image_filter,
)
from repro.dataset.stats import average_clause_count, table2_breakdown
from repro.errors import DatasetError
from repro.synth import Box, SceneObject, SyntheticScene


@pytest.fixture(scope="module")
def dataset():
    return build_mvqa(seed=5, pool_size=1_500, image_count=500)


class TestImageFilter:
    def test_rejects_single_object(self):
        scene = SyntheticScene(
            0, [SceneObject(0, "dog", Box(0, 0, 10, 10), 0.5)], []
        )
        assert not mvqa_image_filter(scene)

    def test_rejects_without_mvqa_group(self):
        objects = [
            SceneObject(0, "grass", Box(0, 0, 60, 60), 0.9),
            SceneObject(1, "tree", Box(60, 0, 30, 40), 0.8),
        ]
        assert not mvqa_image_filter(SyntheticScene(0, objects, []))

    def test_accepts_multi_object_with_group(self):
        objects = [
            SceneObject(0, "dog", Box(0, 0, 10, 10), 0.5),
            SceneObject(1, "grass", Box(0, 20, 60, 60), 0.9),
        ]
        assert mvqa_image_filter(SyntheticScene(0, objects, []))


class TestBuild:
    def test_image_count(self, dataset):
        assert dataset.image_count == 500
        assert [s.image_id for s in dataset.scenes] == list(range(500))

    def test_question_composition(self, dataset):
        for qtype, (count, two, three) in COMPOSITION.items():
            questions = dataset.questions_of_type(qtype)
            assert len(questions) == count
            clauses = sorted(q.clause_count for q in questions)
            assert clauses.count(2) == two
            assert clauses.count(3) == three

    def test_clause_average(self, dataset):
        assert 2.0 <= average_clause_count(dataset) <= 2.4

    def test_constraint_count(self, dataset):
        assert sum(q.has_constraint for q in dataset.questions) == 40

    def test_every_answer_nonempty(self, dataset):
        for question in dataset.questions:
            assert question.answer

    def test_counting_answers_numeric(self, dataset):
        for question in dataset.questions_of_type(QuestionType.COUNTING):
            assert question.answer.isdigit()
            assert int(question.answer) >= 1

    def test_judgment_answers_yes_no(self, dataset):
        answers = {q.answer for q in
                   dataset.questions_of_type(QuestionType.JUDGMENT)}
        assert answers <= {"yes", "no"}
        assert "yes" in answers and "no" in answers

    def test_non_exotic_questions_parse(self, dataset):
        from repro.core import generate_query_graph

        for question in dataset.questions:
            if not question.exotic:
                generate_query_graph(question.text)  # must not raise

    def test_exotic_questions_marked(self, dataset):
        exotic = [q for q in dataset.questions if q.exotic]
        assert len(exotic) == 3
        assert all("canis" in q.text for q in exotic)

    def test_questions_unique(self, dataset):
        texts = [q.text for q in dataset.questions]
        assert len(texts) == len(set(texts))

    def test_deterministic(self):
        a = build_mvqa(seed=9, pool_size=1_500, image_count=500)
        b = build_mvqa(seed=9, pool_size=1_500, image_count=500)
        assert [q.text for q in a.questions] == [q.text for q in b.questions]
        assert [q.answer for q in a.questions] == \
            [q.answer for q in b.questions]

    def test_insufficient_pool_raises(self):
        with pytest.raises(DatasetError):
            build_mvqa(seed=1, pool_size=50, image_count=500)


class TestStats:
    def test_table2_rows(self, dataset):
        rows = table2_breakdown(dataset)
        assert [r.questions for r in rows] == [40, 16, 44]
        assert all(r.unique_spos > 0 for r in rows)
        assert all(r.avg_images > 0 for r in rows)
