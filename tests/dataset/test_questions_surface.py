"""Unit tests for question surface realization."""

import numpy as np
import pytest

from repro.dataset.groundtruth import GroundTruthIndex
from repro.dataset.questions import QuestionGenerator
from repro.synth import Box, SceneObject, SceneRelation, SyntheticScene


@pytest.fixture
def generator():
    scene = SyntheticScene(
        0,
        [SceneObject(0, "dog", Box(0, 0, 10, 10), 0.5),
         SceneObject(1, "grass", Box(0, 20, 60, 60), 0.9)],
        [SceneRelation(0, 1, "standing on")],
    )
    return QuestionGenerator(GroundTruthIndex([scene]),
                             np.random.default_rng(0))


class TestSurfaceForms:
    def test_passive_regular(self, generator):
        assert generator._passive("carrying") == "carried by"

    def test_passive_irregular(self, generator):
        assert generator._passive("wearing") == "worn by"

    def test_passive_multiword(self, generator):
        assert generator._passive("looking out of") == "looked out of by"

    def test_relative_singular(self, generator):
        text = generator._relative("standing on", "grass", False)
        assert text == "that is standing on the grass"

    def test_relative_plural(self, generator):
        text = generator._relative("standing on", "grass", True)
        assert text == "that are standing on the grass"

    def test_relative_with_constraint(self, generator):
        text = generator._relative("standing on", "grass", False,
                                   "most frequently")
        assert text == "that is most frequently standing on the grass"

    def test_plural_helper(self, generator):
        assert generator._plural("man") == "men"
        assert generator._plural("dog") == "dogs"


class TestParseValidation:
    def test_valid_text_parses(self, generator):
        assert generator._parses(
            "Is there a dog near the fence?"
        )

    def test_invalid_text_rejected(self, generator):
        assert not generator._parses("canis canis")
