"""Tests for the movie scenario and the modified-VQAv2 builder."""

import pytest

from repro.core import SVQA, SVQAConfig
from repro.core.spoc import QuestionType
from repro.dataset.kg import build_movie_kg
from repro.dataset.movie import build_movie_scenes
from repro.dataset.vqa2 import DEFAULT_COMPOSITION, build_modified_vqa2
from repro.vision.detector import DetectorConfig


class TestMovieScenes:
    @pytest.fixture(scope="class")
    def movie(self):
        return build_movie_scenes(seed=5)

    def test_annotations_reference_scenes(self, movie):
        image_ids = {s.image_id for s in movie.scenes}
        for (image_id, label), name in movie.annotations.items():
            assert image_id in image_ids
            assert label in {"man", "woman"}
            assert name

    def test_hangout_relations_present(self, movie):
        hangouts = [
            r for s in movie.scenes for r in s.relations
            if r.predicate == "hanging out with"
        ]
        assert len(hangouts) == 5

    def test_wardrobe_scenes(self, movie):
        wearing = [
            r for s in movie.scenes for r in s.relations
            if r.predicate == "wearing"
        ]
        assert len(wearing) == 3

    def test_deterministic(self):
        a = build_movie_scenes(seed=5)
        b = build_movie_scenes(seed=5)
        assert a.annotations == b.annotations

    def test_flagship_question_end_to_end(self, movie):
        config = SVQAConfig(
            detector=DetectorConfig(label_noise=0.0, miss_rate=0.0),
        )
        svqa = SVQA(movie.scenes, build_movie_kg(), config,
                    annotations=movie.annotations)
        svqa.build()
        answer = svqa.answer(movie.flagship_question)
        assert answer.value == movie.flagship_answer


class TestModifiedVQA2:
    @pytest.fixture(scope="class")
    def dataset(self):
        return build_modified_vqa2(seed=77, image_count=300,
                                   composition={
                                       QuestionType.JUDGMENT: 10,
                                       QuestionType.COUNTING: 6,
                                       QuestionType.REASONING: 10,
                                   })

    def test_composition(self, dataset):
        assert len(dataset.questions_of_type(QuestionType.JUDGMENT)) == 10
        assert len(dataset.questions_of_type(QuestionType.COUNTING)) == 6
        assert len(dataset.questions_of_type(QuestionType.REASONING)) == 10

    def test_all_two_clause(self, dataset):
        assert all(q.clause_count == 2 for q in dataset.questions)

    def test_answers_present(self, dataset):
        assert all(q.answer for q in dataset.questions)

    def test_default_composition_counts(self):
        assert sum(DEFAULT_COMPOSITION.values()) == 110
