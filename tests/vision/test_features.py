"""Unit tests for feature-map extraction and the TDE mask."""

import numpy as np
import pytest

from repro.synth import (
    Box,
    SceneObject,
    SceneRelation,
    SyntheticScene,
    relation_index,
)
from repro.vision.features import (
    FEATURE_DIM,
    extract_features,
)


@pytest.fixture
def scene_raster():
    objects = [
        SceneObject(0, "grass", Box(0, 64, 128, 64), 0.9),
        SceneObject(1, "dog", Box(30, 55, 24, 24), 0.3),
        SceneObject(2, "frisbee", Box(48, 60, 8, 8), 0.2),
    ]
    relations = [SceneRelation(1, 2, "catching")]
    scene = SyntheticScene(0, objects, relations)
    return scene, scene.render()


def region_of(raster, index):
    return raster.instances == index


class TestExtraction:
    def test_feature_dimension(self, scene_raster):
        _, raster = scene_raster
        features = extract_features(raster, Box(30, 55, 24, 24),
                                    region_of(raster, 1))
        assert features.vector.shape == (FEATURE_DIM,)

    def test_geometry_normalized(self, scene_raster):
        _, raster = scene_raster
        box = Box(30, 55, 24, 24)
        features = extract_features(raster, box, region_of(raster, 1))
        geometry = features.geometry
        assert np.all(geometry >= 0)
        assert np.all(geometry[:5] <= 1)

    def test_interaction_signal_present(self, scene_raster):
        _, raster = scene_raster
        dog = extract_features(raster, Box(30, 55, 24, 24),
                               region_of(raster, 1))
        frisbee = extract_features(raster, Box(48, 60, 8, 8),
                                   region_of(raster, 2))
        catching = relation_index("catching")
        assert dog.subject_signal[catching] > 0.5
        assert frisbee.object_signal[catching] > 0.5

    def test_occlusion_dilutes_signal(self, scene_raster):
        # the dog's region includes pixels stolen by the frisbee; its
        # pooled subject signal stays near 1 only for its own pixels
        _, raster = scene_raster
        mixed_mask = (raster.instances == 1) | (raster.instances == 2)
        mixed = extract_features(raster, Box(30, 55, 28, 24), mixed_mask)
        pure = extract_features(raster, Box(30, 55, 24, 24),
                                region_of(raster, 1))
        catching = relation_index("catching")
        assert mixed.subject_signal[catching] < \
            pure.subject_signal[catching] + 1e-9

    def test_empty_region(self, scene_raster):
        _, raster = scene_raster
        empty = np.zeros_like(raster.instances, dtype=bool)
        features = extract_features(raster, Box(0, 0, 4, 4), empty)
        assert np.all(features.subject_signal == 0)


class TestMask:
    def test_mask_zeroes_interaction_only(self, scene_raster):
        _, raster = scene_raster
        features = extract_features(raster, Box(30, 55, 24, 24),
                                    region_of(raster, 1))
        masked = features.masked()
        assert np.all(masked.subject_signal == 0)
        assert np.all(masked.object_signal == 0)
        assert np.allclose(masked.geometry, features.geometry)
        assert np.allclose(masked.appearance, features.appearance)

    def test_mask_is_a_copy(self, scene_raster):
        _, raster = scene_raster
        features = extract_features(raster, Box(30, 55, 24, 24),
                                    region_of(raster, 1))
        features.masked()
        catching = relation_index("catching")
        assert features.subject_signal[catching] > 0.5


class TestUbiquitousSignals:
    def test_near_has_no_signal(self):
        objects = [
            SceneObject(0, "dog", Box(10, 10, 20, 20), 0.4),
            SceneObject(1, "cat", Box(40, 10, 18, 18), 0.4),
        ]
        scene = SyntheticScene(0, objects,
                               [SceneRelation(0, 1, "near")])
        raster = scene.render()
        near = relation_index("near")
        assert raster.subject_signals[0, near] == 0.0
        assert raster.object_signals[1, near] == 0.0

    def test_tail_spatial_has_signal(self):
        objects = [
            SceneObject(0, "dog", Box(10, 10, 20, 20), 0.2),
            SceneObject(1, "man", Box(32, 10, 20, 30), 0.6),
        ]
        scene = SyntheticScene(0, objects,
                               [SceneRelation(0, 1, "in front of")])
        raster = scene.render()
        k = relation_index("in front of")
        assert raster.subject_signals[0, k] == 1.0
