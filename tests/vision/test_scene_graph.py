"""Unit tests for the SGG pipeline and mR@K metrics."""

import pytest

from repro.simtime import SimClock
from repro.synth import RELATIONS, SceneGenerator
from repro.vision import (
    MOTIFNET,
    VTRANSE,
    RelationPredictor,
    SGGConfig,
    SGGPipeline,
    SimulatedDetector,
    mean_recall_at,
)


@pytest.fixture(scope="module")
def scenes():
    return SceneGenerator(seed=21).generate_pool(40)


@pytest.fixture(scope="module")
def pipeline():
    return SGGPipeline(SimulatedDetector(), RelationPredictor(MOTIFNET))


class TestPipeline:
    def test_produces_scene_graph(self, scenes, pipeline):
        result = pipeline.run(scenes[0])
        assert result.image_id == scenes[0].image_id
        assert result.detections
        assert result.relations

    def test_relations_reference_detections(self, scenes, pipeline):
        result = pipeline.run(scenes[0])
        n = len(result.detections)
        for relation in result.relations:
            assert 0 <= relation.src < n
            assert 0 <= relation.dst < n
            assert relation.predicate in RELATIONS

    def test_kept_relations_bounded(self, scenes, pipeline):
        config = SGGConfig(keep_per_detection=1.0, min_keep=2)
        pipe = SGGPipeline(SimulatedDetector(),
                           RelationPredictor(MOTIFNET), config)
        result = pipe.run(scenes[1])
        assert len(result.relations) <= max(2, len(result.detections))

    def test_ranked_triples_sorted(self, scenes, pipeline):
        result = pipeline.run(scenes[2])
        scores = [t.score for t in result.ranked_triples]
        assert scores == sorted(scores, reverse=True)

    def test_deterministic(self, scenes, pipeline):
        a = pipeline.run(scenes[3])
        b = pipeline.run(scenes[3])
        assert [(t.src, t.dst, t.predicate) for t in a.relations] == \
            [(t.src, t.dst, t.predicate) for t in b.relations]

    def test_clock_charged(self, scenes):
        clock = SimClock()
        pipe = SGGPipeline(SimulatedDetector(),
                           RelationPredictor(MOTIFNET), clock=clock)
        pipe.run(scenes[0])
        assert clock.elapsed > 0
        assert clock.counts["detector_forward"] == 1

    def test_run_many(self, scenes, pipeline):
        results = pipeline.run_many(scenes[:5])
        assert len(results) == 5


class TestMeanRecall:
    def test_mr_in_unit_interval(self, scenes, pipeline):
        results = pipeline.run_many(scenes)
        mr = mean_recall_at(results, scenes)
        for value in mr.values():
            assert 0.0 <= value <= 1.0

    def test_mr_monotone_in_k(self, scenes, pipeline):
        results = pipeline.run_many(scenes)
        mr = mean_recall_at(results, scenes, ks=(10, 20, 50))
        assert mr[10] <= mr[20] <= mr[50]

    def test_tde_beats_original(self, scenes):
        detector = SimulatedDetector()
        predictor = RelationPredictor(MOTIFNET)
        with_tde = SGGPipeline(detector, predictor,
                               SGGConfig(use_tde=True)).run_many(scenes)
        without = SGGPipeline(detector, predictor,
                              SGGConfig(use_tde=False)).run_many(scenes)
        mr_tde = mean_recall_at(with_tde, scenes, ks=(50,))[50]
        mr_orig = mean_recall_at(without, scenes, ks=(50,))[50]
        assert mr_tde > mr_orig

    def test_motifs_beats_vtranse(self, scenes):
        detector = SimulatedDetector()
        motifs = SGGPipeline(detector, RelationPredictor(MOTIFNET),
                             SGGConfig(use_tde=False)).run_many(scenes)
        vtranse = SGGPipeline(detector, RelationPredictor(VTRANSE),
                              SGGConfig(use_tde=False)).run_many(scenes)
        mr_motifs = mean_recall_at(motifs, scenes, ks=(50,))[50]
        mr_vtranse = mean_recall_at(vtranse, scenes, ks=(50,))[50]
        assert mr_motifs > mr_vtranse

    def test_length_mismatch_raises(self, scenes, pipeline):
        results = pipeline.run_many(scenes[:3])
        with pytest.raises(ValueError):
            mean_recall_at(results, scenes)
