"""Unit tests for relation prediction and TDE debiasing."""

import numpy as np
import pytest

from repro.synth import (
    Box,
    RELATIONS,
    SceneObject,
    SceneRelation,
    SyntheticScene,
    relation_index,
)
from repro.vision import (
    DetectorConfig,
    MOTIFNET,
    RelationPredictor,
    SimulatedDetector,
    VTRANSE,
    predict_relation,
    tde_scores,
)


@pytest.fixture
def catch_scene():
    """A dog catching a frisbee on grass — semantic relation present."""
    objects = [
        SceneObject(0, "grass", Box(0, 60, 128, 68), 0.9),
        SceneObject(1, "dog", Box(30, 50, 26, 26), 0.3),
        SceneObject(2, "frisbee", Box(52, 58, 8, 8), 0.25),
    ]
    relations = [
        SceneRelation(1, 0, "standing on"),
        SceneRelation(1, 2, "catching"),
    ]
    return SyntheticScene(3, objects, relations)


@pytest.fixture
def detections(catch_scene):
    detector = SimulatedDetector(DetectorConfig(label_noise=0.0,
                                                miss_rate=0.0,
                                                box_jitter=0.0))
    return detector.detect(catch_scene.render(), 3)


def by_label(detections, label):
    return next(d for d in detections if d.label == label)


class TestPrediction:
    def test_probabilities_normalized(self, detections):
        predictor = RelationPredictor(MOTIFNET)
        dog = by_label(detections, "dog")
        frisbee = by_label(detections, "frisbee")
        probs = predictor.pair_probabilities(dog, frisbee, 3)
        assert probs.shape == (len(RELATIONS),)
        assert probs.sum() == pytest.approx(1.0)
        assert (probs >= 0).all()

    def test_deterministic(self, detections):
        predictor = RelationPredictor(MOTIFNET)
        dog = by_label(detections, "dog")
        frisbee = by_label(detections, "frisbee")
        a = predictor.pair_probabilities(dog, frisbee, 3)
        b = predictor.pair_probabilities(dog, frisbee, 3)
        assert np.allclose(a, b)

    def test_masked_pass_removes_evidence(self, detections):
        predictor = RelationPredictor(MOTIFNET)
        dog = by_label(detections, "dog")
        frisbee = by_label(detections, "frisbee")
        factual = predictor.pair_logits(dog, frisbee, 3, masked=False)
        masked = predictor.pair_logits(dog, frisbee, 3, masked=True)
        catching = relation_index("catching")
        assert factual[catching] > masked[catching]


class TestTDE:
    def test_tde_recovers_semantic_relation(self, detections):
        predictor = RelationPredictor(MOTIFNET)
        dog = by_label(detections, "dog")
        frisbee = by_label(detections, "frisbee")
        best, _, _ = predict_relation(predictor, dog, frisbee, 3,
                                      use_tde=True)
        assert RELATIONS[best] == "catching"

    def test_tde_scores_shape(self, detections):
        predictor = RelationPredictor(MOTIFNET)
        dog = by_label(detections, "dog")
        grass = by_label(detections, "grass")
        scores = tde_scores(predictor, dog, grass, 3)
        assert scores.shape == (len(RELATIONS),)

    def test_biased_prediction_favors_head_classes(self, detections):
        # over many pair-noise draws the biased model must put more
        # probability mass on head predicates than the TDE pass leaves
        predictor = RelationPredictor(VTRANSE)
        dog = by_label(detections, "dog")
        frisbee = by_label(detections, "frisbee")
        head = [relation_index(p) for p in ("on", "near", "has")]
        biased_mass = sum(
            predictor.pair_probabilities(dog, frisbee, image_id)[head].sum()
            for image_id in range(30)
        )
        tde_mass = sum(
            np.clip(tde_scores(predictor, dog, frisbee, image_id), 0,
                    None)[head].sum()
            for image_id in range(30)
        )
        assert biased_mass > tde_mass

    def test_evidence_weight_ordering(self, detections):
        # Motifs extracts evidence better than VTransE on average
        dog = by_label(detections, "dog")
        frisbee = by_label(detections, "frisbee")
        catching = relation_index("catching")
        motifs_scores = np.mean([
            tde_scores(RelationPredictor(MOTIFNET), dog, frisbee, i)[catching]
            for i in range(40)
        ])
        vtranse_scores = np.mean([
            tde_scores(RelationPredictor(VTRANSE), dog, frisbee, i)[catching]
            for i in range(40)
        ])
        assert motifs_scores > vtranse_scores
