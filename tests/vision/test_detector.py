"""Unit tests for the simulated detector."""

import pytest

from repro.synth import Box, SceneGenerator, SceneObject, SceneRelation, SyntheticScene
from repro.vision import DetectorConfig, SimulatedDetector
from repro.vision.boxes import iou, match_boxes


@pytest.fixture
def simple_scene():
    objects = [
        SceneObject(0, "grass", Box(0, 64, 128, 64), 0.9),
        SceneObject(1, "dog", Box(30, 55, 24, 24), 0.3),
        SceneObject(2, "man", Box(80, 40, 22, 40), 0.4),
    ]
    relations = [SceneRelation(1, 0, "standing on")]
    return SyntheticScene(1, objects, relations)


class TestDetection:
    def test_detects_visible_objects(self, simple_scene):
        detector = SimulatedDetector(DetectorConfig(label_noise=0.0,
                                                    miss_rate=0.0))
        detections = detector.detect(simple_scene.render(), 1)
        labels = {d.label for d in detections}
        assert {"grass", "dog", "man"} <= labels

    def test_boxes_near_truth(self, simple_scene):
        detector = SimulatedDetector(DetectorConfig(label_noise=0.0,
                                                    miss_rate=0.0))
        detections = detector.detect(simple_scene.render(), 1)
        dog = next(d for d in detections if d.label == "dog")
        assert iou(dog.box, Box(30, 55, 24, 24)) > 0.4

    def test_deterministic_per_image(self, simple_scene):
        detector = SimulatedDetector()
        raster = simple_scene.render()
        first = detector.detect(raster, 1)
        second = detector.detect(raster, 1)
        assert [(d.label, d.box) for d in first] == \
            [(d.label, d.box) for d in second]

    def test_different_image_id_different_noise(self, simple_scene):
        detector = SimulatedDetector(DetectorConfig(box_jitter=0.2))
        raster = simple_scene.render()
        first = detector.detect(raster, 1)
        second = detector.detect(raster, 2)
        assert [d.box for d in first] != [d.box for d in second]

    def test_tiny_object_missed(self):
        objects = [
            SceneObject(0, "grass", Box(0, 0, 128, 128), 0.9),
            SceneObject(1, "frisbee", Box(60, 60, 3, 3), 0.2),
        ]
        scene = SyntheticScene(0, objects, [SceneRelation(1, 0, "on")])
        detector = SimulatedDetector(DetectorConfig(min_area=12,
                                                    miss_rate=0.0))
        detections = detector.detect(scene.render(), 0)
        assert all(d.label != "frisbee" for d in detections)

    def test_occluded_object_depth_estimate(self, simple_scene):
        # grass is heavily occluded by dog+man -> larger depth estimate
        detector = SimulatedDetector(DetectorConfig(label_noise=0.0,
                                                    miss_rate=0.0))
        detections = detector.detect(simple_scene.render(), 1)
        dog = next(d for d in detections if d.label == "dog")
        assert 0.0 <= dog.depth_estimate <= 1.0

    def test_scores_in_range(self, simple_scene):
        detector = SimulatedDetector()
        for detection in detector.detect(simple_scene.render(), 1):
            assert 0.0 < detection.score < 1.0

    def test_label_noise_produces_confusions(self):
        # with extreme noise, some labels must flip to confusable classes
        scenes = SceneGenerator(seed=4).generate_pool(40)
        detector = SimulatedDetector(DetectorConfig(label_noise=0.9,
                                                    miss_rate=0.0))
        flips = 0
        for scene in scenes:
            detections = detector.detect(scene.render(), scene.image_id)
            truth_boxes = [o.box for o in scene.objects]
            matched = match_boxes([d.box for d in detections], truth_boxes,
                                  threshold=0.3)
            for det_index, truth_index in matched.items():
                if detections[det_index].label != \
                        scene.objects[truth_index].category:
                    flips += 1
        assert flips > 0


class TestMatchBoxes:
    def test_one_to_one(self):
        detected = [Box(0, 0, 10, 10), Box(50, 50, 10, 10)]
        truth = [Box(1, 1, 10, 10), Box(49, 49, 10, 10)]
        matched = match_boxes(detected, truth)
        assert matched == {0: 0, 1: 1}

    def test_below_threshold_unmatched(self):
        matched = match_boxes([Box(0, 0, 10, 10)], [Box(40, 40, 10, 10)])
        assert matched == {}

    def test_truth_used_once(self):
        detected = [Box(0, 0, 10, 10), Box(1, 1, 10, 10)]
        truth = [Box(0, 0, 10, 10)]
        matched = match_boxes(detected, truth)
        assert len(matched) == 1
