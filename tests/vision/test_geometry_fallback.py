"""Tests for the TDE geometry fallback in the SGG pipeline.

Pairs without a direct visual effect (ubiquitous predicates have no
appearance signal) must still receive a geometry-derived spatial edge —
otherwise the merged graph would lose its near/on edges and judgment
questions would starve.
"""

import pytest

from repro.synth import (
    Box,
    SceneObject,
    SceneRelation,
    SyntheticScene,
    UBIQUITOUS_RELATIONS,
)
from repro.vision import (
    MOTIFNET,
    DetectorConfig,
    RelationPredictor,
    SGGConfig,
    SGGPipeline,
    SimulatedDetector,
)
from repro.vision.scene_graph import GEOMETRY_FALLBACK_SCORE


@pytest.fixture
def near_only_scene():
    """Two objects related only by the (signal-free) 'near' predicate."""
    objects = [
        SceneObject(0, "dog", Box(20, 40, 20, 20), 0.4),
        SceneObject(1, "cat", Box(42, 41, 18, 18), 0.4),
    ]
    return SyntheticScene(0, objects, [SceneRelation(0, 1, "near")])


def make_pipeline(use_tde=True):
    detector = SimulatedDetector(DetectorConfig(label_noise=0.0,
                                                miss_rate=0.0))
    return SGGPipeline(detector, RelationPredictor(MOTIFNET),
                       SGGConfig(use_tde=use_tde))


class TestFallback:
    def test_spatial_edge_survives_tde(self, near_only_scene):
        result = make_pipeline(use_tde=True).run(near_only_scene)
        predicates = {r.predicate for r in result.relations}
        spatial = UBIQUITOUS_RELATIONS | {"next to", "behind",
                                          "in front of"}
        assert predicates & spatial

    def test_fallback_score_below_confident_tde(self):
        assert GEOMETRY_FALLBACK_SCORE < 0.3
        assert GEOMETRY_FALLBACK_SCORE >= SGGConfig().keep_min_score

    def test_semantic_pair_not_replaced(self):
        # a pair WITH visual evidence keeps its TDE prediction
        objects = [
            SceneObject(0, "dog", Box(20, 40, 24, 24), 0.3),
            SceneObject(1, "frisbee", Box(40, 46, 8, 8), 0.25),
        ]
        scene = SyntheticScene(0, objects,
                               [SceneRelation(0, 1, "catching")])
        result = make_pipeline(use_tde=True).run(scene)
        dog_frisbee = [
            r for r in result.relations
            if result.detections[r.src].label == "dog"
            and result.detections[r.dst].label == "frisbee"
        ]
        assert dog_frisbee
        assert dog_frisbee[0].predicate == "catching"
        assert dog_frisbee[0].score > GEOMETRY_FALLBACK_SCORE

    def test_biased_path_has_no_fallback_edges(self, near_only_scene):
        result = make_pipeline(use_tde=False).run(near_only_scene)
        assert all(r.score != GEOMETRY_FALLBACK_SCORE
                   for r in result.relations)
