"""Acceptance tests for observability threaded through the pipeline.

Two contracts matter most (ISSUE acceptance criteria):

* with ``SVQAConfig.observability=None`` the system behaves
  bit-identically to a pre-observability build — same answers, same
  simulated latencies, same stats report;
* with tracing on, the multiset of ``(name, attributes)`` spans is
  invariant across worker counts, and two same-seed runs export
  byte-identical artifacts.
"""

import pytest

from repro.core import ObservabilityConfig, SVQA, SVQAConfig
from repro.dataset.kg import build_commonsense_kg
from repro.observability import span_multiset
from repro.synth import SceneGenerator

QUESTIONS = [
    "Is there a dog near the fence?",
    "How many dogs are standing on the grass?",
    "Is there a cat sitting on the chair?",
    "How many birds are near the tree?",
]


def build_svqa(observability=None, workers=1, pool=40, seed=31):
    scenes = SceneGenerator(seed=seed).generate_pool(pool)
    config = SVQAConfig(observability=observability, workers=workers,
                        cache_pool_size=10_000)
    system = SVQA(scenes, build_commonsense_kg(), config)
    system.build()
    return system


def run_batch(observability=None, workers=1):
    system = build_svqa(observability=observability, workers=workers)
    answers = system.answer_many(QUESTIONS)
    return system, answers


class TestZeroCostOff:
    def test_off_path_is_bit_identical(self):
        off_sys, off = run_batch(observability=None)
        on_sys, on = run_batch(observability=ObservabilityConfig())
        assert [a.value for a in off] == [a.value for a in on]
        assert [a.latency for a in off] == [a.latency for a in on]
        assert off_sys.elapsed == on_sys.elapsed
        assert off_sys.execution_report().stats == \
            on_sys.execution_report().stats

    def test_off_path_constructs_no_tracer(self):
        system = build_svqa(observability=None)
        assert system.tracer is None
        assert system.finished_spans() == []
        assert system.spans_jsonl() == ""


class TestTracing:
    def test_answer_records_a_question_trace(self):
        system = build_svqa(observability=ObservabilityConfig())
        system.answer(QUESTIONS[0])
        spans = system.finished_spans()
        names = {s.name for s in spans}
        assert "question" in names
        assert "query_graph" in names
        assert "parse" in names
        assert "executor.execute" in names
        assert "cache.scope" in names

    def test_build_trace_recorded(self):
        system = build_svqa(observability=ObservabilityConfig())
        build_spans = [s for s in system.finished_spans()
                       if s.trace_id == "build"]
        names = {s.name for s in build_spans}
        assert "build" in names
        assert "aggregate.merge" in names

    def test_trace_ids_unique_across_calls(self):
        system = build_svqa(observability=ObservabilityConfig())
        system.answer(QUESTIONS[0])
        system.answer_many(QUESTIONS[:2])
        system.answer(QUESTIONS[1])
        roots = [s for s in system.finished_spans()
                 if s.name == "question" and s.parent_id is None]
        trace_ids = [s.trace_id for s in roots]
        # parse-phase and execute-phase segments share the trace id;
        # count distinct question traces
        assert sorted(set(trace_ids)) == \
            ["q0000", "q0001", "q0002", "q0003"]

    def test_cache_spans_carry_hit_attribute(self):
        system = build_svqa(observability=ObservabilityConfig())
        system.answer(QUESTIONS[0])
        system.answer(QUESTIONS[0])
        scope = [s for s in system.finished_spans()
                 if s.name == "cache.scope"]
        assert any(s.attributes["hit"] for s in scope)
        assert any(not s.attributes["hit"] for s in scope)

    def test_same_seed_exports_are_byte_identical(self):
        def export():
            system = build_svqa(observability=ObservabilityConfig())
            system.answer_many(QUESTIONS)
            return system.spans_jsonl()

        assert export() == export()


class TestWorkerInvariance:
    def test_span_multiset_is_worker_count_invariant(self):
        serial, _ = run_batch(observability=ObservabilityConfig(),
                              workers=1)
        parallel, _ = run_batch(observability=ObservabilityConfig(),
                                workers=4)
        assert span_multiset(serial.finished_spans()) == \
            span_multiset(parallel.finished_spans())


class TestMetricsFacade:
    def test_registry_and_report_agree(self):
        system, _ = run_batch(observability=ObservabilityConfig())
        report = system.execution_report().stats
        registry = system.metrics
        snap = registry.to_json()
        queries = snap["svqa_queries_total"]["series"][0]["value"]
        assert queries == report.queries

    def test_latency_histogram_populated(self):
        system, _ = run_batch()
        snap = system.metrics_snapshot()
        series = snap["svqa_query_latency_seconds"]["series"][0]
        assert series["count"] == len(QUESTIONS)
        assert series["sum"] == pytest.approx(
            sum(system.last_batch.latencies))

    def test_hit_ratio_gauges_refresh_on_snapshot(self):
        system, _ = run_batch()
        report = system.execution_report().stats
        snap = system.metrics_snapshot()
        ratios = {
            s["labels"]["store"]: s["value"]
            for s in snap["svqa_cache_hit_ratio"]["series"]
        }
        assert ratios["scope"] == pytest.approx(report.scope_hit_rate)
        assert ratios["path"] == pytest.approx(report.path_hit_rate)

    def test_exposition_contains_core_families(self):
        system, _ = run_batch()
        text = system.metrics_exposition()
        assert "# TYPE svqa_queries_total counter" in text
        assert "# TYPE svqa_query_latency_seconds histogram" in text
        assert "# TYPE svqa_cache_hit_ratio gauge" in text
