"""Unit tests for the profiler (stage breakdown + baseline payload)."""

import json

from repro.observability.profiler import (
    BASELINE_SCHEMA_VERSION,
    StageRow,
    build_baseline,
    dump_deterministic_json,
    stage_breakdown,
)
from repro.observability.spans import Span


def make_span(name, trace, span_id, parent, start, duration, **attrs):
    return Span(name=name, trace_id=trace, span_id=span_id,
                parent_id=parent, start=start, duration=duration,
                attributes=attrs)


class TestStageBreakdown:
    def test_self_time_excludes_direct_children(self):
        spans = [
            make_span("question", "q0000", 0, None, 0.0, 1.0),
            make_span("query_graph", "q0000", 1, 0, 0.0, 0.4),
            make_span("parse", "q0000", 2, 1, 0.0, 0.1),
        ]
        rows = {r.name: r for r in stage_breakdown(spans)}
        assert rows["question"].self_time == 0.6
        assert rows["query_graph"].self_time == 0.3
        assert rows["parse"].self_time == 0.1
        assert rows["question"].total == 1.0

    def test_same_parent_id_in_other_trace_not_confused(self):
        spans = [
            make_span("question", "q0000", 0, None, 0.0, 1.0),
            make_span("question", "q0001", 0, None, 0.0, 2.0),
            make_span("parse", "q0001", 1, 0, 0.0, 0.5),
        ]
        rows = {r.name: r for r in stage_breakdown(spans)}
        # the q0001 child must only reduce the q0001 root's self time
        assert rows["question"].self_time == 1.0 + 1.5

    def test_rows_sorted_by_self_time_then_name(self):
        spans = [
            make_span("parse", "q0000", 0, None, 0.0, 0.1),
            make_span("spoc", "q0000", 1, None, 0.0, 0.9),
        ]
        rows = stage_breakdown(spans)
        assert [r.name for r in rows] == ["spoc", "parse"]

    def test_mean_of_empty_row_is_zero(self):
        row = StageRow(name="x", count=0, total=0.0, self_time=0.0)
        assert row.mean == 0.0


class TestBaseline:
    def payload(self):
        return build_baseline(
            suite="mvqa-fast",
            config={"seed": 5, "workers": 1},
            accuracy={"overall": 0.85},
            latency={"simulated_total": 8.5},
            stages=[StageRow("parse", 10, 1.0, 1.0)],
            metrics={"svqa_queries_total": {"series": []}},
        )

    def test_schema_version_stamped(self):
        assert self.payload()["schema_version"] == \
            BASELINE_SCHEMA_VERSION

    def test_no_wall_clock_or_timestamps(self):
        text = json.dumps(self.payload()).lower()
        assert "wall" not in text
        assert "timestamp" not in text

    def test_dump_is_deterministic_and_newline_terminated(self):
        a = dump_deterministic_json(self.payload())
        b = dump_deterministic_json(self.payload())
        assert a == b
        assert a.endswith("\n")
        assert json.loads(a)["suite"] == "mvqa-fast"
