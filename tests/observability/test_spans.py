"""Unit tests for the deterministic span tracer."""

import json
import threading

import pytest

from repro.observability.spans import (
    SPAN_NAMES,
    Tracer,
    maybe_span,
    maybe_trace,
    render_trace,
    span_multiset,
)
from repro.simtime import SimClock


def clock_with(cost):
    return SimClock(costs={"op": cost})


class TestSpanRecording:
    def test_nesting_records_parent_ids(self):
        tracer = Tracer()
        with tracer.trace("q0000"):
            with tracer.span("question"):
                with tracer.span("query_graph"):
                    with tracer.span("parse"):
                        pass
        spans = tracer.finished_spans()
        by_name = {s.name: s for s in spans}
        assert by_name["question"].parent_id is None
        assert by_name["query_graph"].parent_id == \
            by_name["question"].span_id
        assert by_name["parse"].parent_id == \
            by_name["query_graph"].span_id

    def test_durations_come_from_the_sim_clock(self):
        tracer = Tracer()
        clock = clock_with(0.5)
        with tracer.trace("q0000", clock):
            with tracer.span("question"):
                clock.charge("op")
        (span,) = tracer.finished_spans()
        assert span.duration == pytest.approx(0.5)
        assert span.start == pytest.approx(0.0)

    def test_starts_are_relative_to_segment_open(self):
        tracer = Tracer()
        clock = clock_with(1.0)
        clock.charge("op")  # pre-trace elapsed must not leak in
        with tracer.trace("q0000", clock):
            clock.charge("op")
            with tracer.span("question"):
                pass
        (span,) = tracer.finished_spans()
        assert span.start == pytest.approx(1.0)

    def test_span_outside_trace_is_noop(self):
        tracer = Tracer()
        with tracer.span("question") as span:
            assert span is None
        assert tracer.finished_spans() == []

    def test_unknown_span_name_rejected(self):
        tracer = Tracer()
        with tracer.trace("q0000"):
            with pytest.raises(ValueError):
                with tracer.span("not-a-stage"):
                    pass

    def test_taxonomy_has_the_documented_stages(self):
        assert {"parse", "spoc", "query_graph", "aggregate.merge",
                "cache.scope", "cache.path", "executor.match",
                "resilience.retry"} <= SPAN_NAMES

    def test_cap_stops_recording_not_execution(self):
        tracer = Tracer(max_spans_per_trace=2)
        with tracer.trace("q0000"):
            for _ in range(5):
                with tracer.span("spoc"):
                    pass
        assert len(tracer.finished_spans()) == 2

    def test_attributes_set_on_live_span(self):
        tracer = Tracer()
        with tracer.trace("q0000"):
            with tracer.span("cache.scope", key="k") as span:
                span.set("hit", True)
        (span,) = tracer.finished_spans()
        assert span.attributes == {"key": "k", "hit": True}

    def test_nested_trace_on_same_thread_is_passthrough(self):
        tracer = Tracer()
        with tracer.trace("q0000"):
            with tracer.trace("q0001"):
                with tracer.span("question"):
                    pass
        spans = tracer.finished_spans()
        assert [s.trace_id for s in spans] == ["q0000"]


class TestConcurrentMerge:
    def test_threads_record_into_private_segments(self):
        tracer = Tracer()

        def work(tid):
            with tracer.trace(tid):
                with tracer.span("question", q=tid):
                    with tracer.span("parse"):
                        pass

        threads = [threading.Thread(target=work, args=(f"q{i:04d}",))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = tracer.finished_spans()
        assert len(spans) == 16
        # canonical order: sorted by trace id, independent of join order
        trace_ids = [s.trace_id for s in spans]
        assert trace_ids == sorted(trace_ids)
        for tid in {s.trace_id for s in spans}:
            mine = [s for s in spans if s.trace_id == tid]
            roots = [s for s in mine if s.parent_id is None]
            assert len(roots) == 1

    def test_reentered_trace_segments_concatenate_with_rebase(self):
        tracer = Tracer()
        with tracer.trace("q0000"):
            with tracer.span("question"):
                pass
        with tracer.trace("q0000"):
            with tracer.span("executor.execute"):
                with tracer.span("executor.match"):
                    pass
        spans = tracer.finished_spans()
        assert [s.name for s in spans] == \
            ["question", "executor.execute", "executor.match"]
        ids = [s.span_id for s in spans]
        assert len(set(ids)) == 3  # rebased, no collisions
        assert spans[2].parent_id == spans[1].span_id


class TestExports:
    def test_jsonl_round_trips(self):
        tracer = Tracer()
        with tracer.trace("q0000"):
            with tracer.span("question", q="x"):
                pass
        lines = tracer.to_jsonl().strip().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["name"] == "question"
        assert record["trace"] == "q0000"
        assert record["attributes"] == {"q": "x"}

    def test_jsonl_is_deterministic(self):
        def build():
            tracer = Tracer()
            clock = clock_with(0.25)
            with tracer.trace("q0000", clock):
                with tracer.span("question"):
                    clock.charge("op")
            return tracer.to_jsonl()

        assert build() == build()

    def test_span_multiset_ignores_timing_and_trace(self):
        a = Tracer()
        with a.trace("q0000", clock_with(1.0)) :
            with a.span("cache.scope", key="k") as span:
                span.set("hit", False)
        b = Tracer()
        with b.trace("q0007"):
            with b.span("cache.scope", key="k") as span:
                span.set("hit", False)
        assert span_multiset(a.finished_spans()) == \
            span_multiset(b.finished_spans())

    def test_render_trace_shows_tree(self):
        tracer = Tracer()
        with tracer.trace("q0000"):
            with tracer.span("question"):
                with tracer.span("parse"):
                    pass
        text = render_trace(tracer.finished_spans(), "q0000")
        lines = text.splitlines()
        assert lines[0].startswith("question")
        assert lines[1].startswith("  parse")

    def test_render_trace_empty(self):
        assert "no spans" in render_trace([], "q0000")


class TestNullHelpers:
    def test_maybe_helpers_are_noops_without_tracer(self):
        with maybe_trace(None, "q0000", None):
            with maybe_span(None, "question") as span:
                assert span is None

    def test_maybe_helpers_record_with_tracer(self):
        tracer = Tracer()
        with maybe_trace(tracer, "q0000", None):
            with maybe_span(tracer, "question") as span:
                assert span is not None
        assert len(tracer.finished_spans()) == 1
