"""Unit tests for the metrics registry (counters/gauges/histograms)."""

import json

import pytest

from repro.observability.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_total(self):
        registry = MetricsRegistry()
        counter = registry.counter("svqa_test_total", "A test counter.")
        counter.inc()
        counter.inc(4)
        assert counter.total() == 5

    def test_labeled_series_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("svqa_test_total", "help.",
                                   labels=("store",))
        counter.inc(store="scope")
        counter.inc(2, store="path")
        assert counter.value(store="scope") == 1
        assert counter.value(store="path") == 2
        assert counter.total() == 3

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("svqa_test_total", "help.")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_wrong_label_schema_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("svqa_test_total", "help.",
                                   labels=("store",))
        with pytest.raises(ValueError):
            counter.inc(site="oops")
        with pytest.raises(ValueError):
            counter.inc()


class TestGauge:
    def test_set_and_signed_inc(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("svqa_test", "help.")
        gauge.set(3.5)
        gauge.inc(-1.5)
        assert gauge.value() == 2.0


class TestHistogram:
    def test_observe_fills_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("svqa_test", "help.",
                                  buckets=(1.0, 2.0, 4.0))
        hist.observe(0.5)   # le=1,2,4
        hist.observe(3.0)   # le=4
        hist.observe(100.0)  # only +Inf
        text = registry.to_prometheus()
        assert 'svqa_test_bucket{le="1"} 1' in text
        assert 'svqa_test_bucket{le="2"} 1' in text
        assert 'svqa_test_bucket{le="4"} 2' in text
        assert 'svqa_test_bucket{le="+Inf"} 3' in text
        assert "svqa_test_count 3" in text

    def test_sum_tracks_observations(self):
        registry = MetricsRegistry()
        hist = registry.histogram("svqa_test", "help.", buckets=(1.0,))
        hist.observe(0.25)
        hist.observe(0.5)
        snap = registry.to_json()
        series = snap["svqa_test"]["series"][0]
        assert series["sum"] == 0.75
        assert series["count"] == 2

    def test_unsorted_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("svqa_test", "help.", buckets=(2.0, 1.0))

    def test_default_bucket_sets_are_sorted(self):
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)
        assert list(COUNT_BUCKETS) == sorted(COUNT_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        a = registry.counter("svqa_test_total", "help.")
        b = registry.counter("svqa_test_total", "help.")
        assert a is b

    def test_type_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("svqa_test_total", "help.")
        with pytest.raises(ValueError):
            registry.gauge("svqa_test_total", "help.")

    def test_label_schema_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("svqa_test_total", "help.", labels=("a",))
        with pytest.raises(ValueError):
            registry.counter("svqa_test_total", "help.", labels=("b",))

    def test_invalid_metric_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name!", "help.")

    def test_reset_zeroes_everything(self):
        registry = MetricsRegistry()
        counter = registry.counter("svqa_test_total", "help.")
        counter.inc(7)
        registry.reset()
        assert counter.total() == 0

    def test_prometheus_exposition_shape(self):
        registry = MetricsRegistry()
        counter = registry.counter("svqa_test_total", "A test counter.",
                                   labels=("store",))
        counter.inc(store="scope")
        text = registry.to_prometheus()
        assert "# HELP svqa_test_total A test counter." in text
        assert "# TYPE svqa_test_total counter" in text
        assert 'svqa_test_total{store="scope"} 1' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("svqa_test_total", "help.",
                                   labels=("key",))
        counter.inc(key='a"b\\c\nd')
        text = registry.to_prometheus()
        assert '{key="a\\"b\\\\c\\nd"}' in text

    def test_json_snapshot_is_deterministic(self):
        def build():
            registry = MetricsRegistry()
            counter = registry.counter("svqa_b_total", "help.",
                                       labels=("x",))
            counter.inc(x="2")
            counter.inc(x="1")
            registry.counter("svqa_a_total", "help.").inc()
            return json.dumps(registry.to_json(), sort_keys=True)

        assert build() == build()
