"""Anti-drift tests for the shared metric/bench glossary.

Three artifacts describe the same metric families — the registering
source code, :mod:`repro.observability.glossary`, and the operator
runbook ``docs/OPERATIONS.md`` — and these tests hold them together:
a family added in code without a glossary entry, or a glossary entry
missing from the runbook, fails here instead of silently drifting.
"""

import ast
import re
from pathlib import Path

from repro.observability import (
    BENCH_GLOSSARY,
    METRIC_GLOSSARY,
    explain_lines,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"
OPERATIONS = REPO_ROOT / "docs" / "OPERATIONS.md"


def registered_families():
    """Every ``svqa_*`` string literal in the package source."""
    families = set()
    for path in sorted(SRC_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if isinstance(node, ast.Constant) \
                    and isinstance(node.value, str) \
                    and node.value.startswith("svqa_"):
                families.add(node.value)
    return families


class TestMetricGlossary:
    def test_every_registered_family_has_a_definition(self):
        missing = registered_families() - set(METRIC_GLOSSARY)
        assert not missing, (
            f"metric families registered in code but absent from "
            f"METRIC_GLOSSARY: {sorted(missing)}"
        )

    def test_every_definition_is_registered_somewhere(self):
        orphaned = set(METRIC_GLOSSARY) - registered_families()
        assert not orphaned, (
            f"METRIC_GLOSSARY entries no code registers: "
            f"{sorted(orphaned)}"
        )

    def test_operations_runbook_covers_every_family(self):
        text = OPERATIONS.read_text(encoding="utf-8")
        missing = [name for name in METRIC_GLOSSARY if name not in text]
        assert not missing, (
            f"docs/OPERATIONS.md does not mention: {missing}"
        )

    def test_definitions_are_one_line_and_nonempty(self):
        for name, definition in {**METRIC_GLOSSARY,
                                 **BENCH_GLOSSARY}.items():
            assert definition.strip(), f"empty definition for {name}"
            assert "\n" not in definition, \
                f"multi-line definition for {name}"


class TestExplainOutput:
    def test_explain_lines_cover_the_bench_glossary(self):
        lines = explain_lines()
        assert len(lines) == len(BENCH_GLOSSARY)
        joined = "\n".join(lines)
        for name in BENCH_GLOSSARY:
            assert re.search(rf"^\s+{re.escape(name)}\s\s+", joined,
                             re.MULTILINE), f"{name} not rendered"
