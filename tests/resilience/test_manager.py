"""Tests for the ResilienceManager guard (retry + breaker + fallback)."""

import pytest

from repro.core.stats import ExecutorStats
from repro.errors import CircuitOpenError, FaultToleranceError
from repro.resilience import (
    FaultSpec,
    OPEN,
    ResilienceConfig,
    ResilienceManager,
    RetryPolicy,
)
from repro.simtime import SimClock

SITE = "executor.match"


def manager(spec=None, stats=None, **config_kwargs):
    specs = {SITE: spec} if spec is not None else {}
    return ResilienceManager(
        ResilienceConfig(fault_specs=specs, **config_kwargs), stats=stats
    )


class TestGuard:
    def test_value_passes_through_unguarded(self):
        assert manager().call(SITE, "k", lambda: 42) == 42

    def test_unregistered_site_rejected(self):
        with pytest.raises(ValueError):
            manager().call("not.a.site", "k", lambda: 42)

    def test_transient_fault_retries_then_succeeds(self):
        stats = ExecutorStats()
        guard = manager(FaultSpec(rate=1.0, fail_times=1), stats=stats)
        events = []
        clock = SimClock()
        assert guard.call(SITE, "k", lambda: "ok", clock=clock,
                          events=events) == "ok"
        kinds = [e.kind for e in events]
        assert kinds == ["fault", "retry", "recovered"]
        report = stats.snapshot()
        assert report.faults_injected == 1
        assert report.retry_attempts == 1
        assert report.retry_recoveries == 1
        assert report.retries_exhausted == 0
        assert clock.elapsed > 0  # fault latency + backoff were charged

    def test_persistent_fault_exhausts_and_raises(self):
        stats = ExecutorStats()
        guard = manager(FaultSpec(rate=1.0, persistent_fraction=1.0),
                        stats=stats)
        calls = []
        with pytest.raises(FaultToleranceError) as excinfo:
            guard.call(SITE, "k", lambda: calls.append(1))
        assert excinfo.value.site == SITE
        assert excinfo.value.attempts == guard.config.retry.max_attempts
        assert not calls  # the guarded fn never ran
        assert stats.snapshot().retries_exhausted == 1

    def test_exhaustion_runs_fallback_instead_of_raising(self):
        guard = manager(FaultSpec(rate=1.0, persistent_fraction=1.0))
        events = []
        value = guard.call(SITE, "k", lambda: "never", events=events,
                           fallback=lambda: "salvaged")
        assert value == "salvaged"
        assert events[-1].kind == "degraded"
        assert any(e.kind == "exhausted" for e in events)

    def test_backoff_is_charged_in_simulated_time(self):
        policy = RetryPolicy(max_attempts=3, backoff_base=0.1,
                             backoff_multiplier=2.0, jitter=0.0)
        guard = manager(FaultSpec(rate=1.0, persistent_fraction=1.0),
                        retry=policy)
        clock = SimClock()
        with pytest.raises(FaultToleranceError):
            guard.call(SITE, "k", lambda: None, clock=clock)
        # two backoffs between three attempts: 0.1 + 0.2
        assert clock.elapsed == pytest.approx(0.3)


class TestBreakerIntegration:
    def trip_site(self, guard):
        """Exhaust retries until the site's breaker opens."""
        while guard.breaker_state(SITE) != OPEN:
            with pytest.raises(FaultToleranceError):
                guard.call(SITE, "k", lambda: None)

    def test_repeated_faults_trip_the_breaker(self):
        stats = ExecutorStats()
        guard = manager(FaultSpec(rate=1.0, persistent_fraction=1.0),
                        stats=stats, breaker_threshold=3)
        self.trip_site(guard)
        assert stats.snapshot().breaker_trips == 1

    def test_open_breaker_short_circuits_to_fallback(self):
        stats = ExecutorStats()
        guard = manager(FaultSpec(rate=1.0, persistent_fraction=1.0),
                        stats=stats, breaker_threshold=3,
                        breaker_cooldown=100)
        self.trip_site(guard)
        events = []
        value = guard.call(SITE, "other", lambda: "never",
                           events=events, fallback=lambda: "bypassed")
        assert value == "bypassed"
        assert events[0].kind == "short-circuit"
        assert stats.snapshot().breaker_short_circuits == 1

    def test_open_breaker_raises_without_fallback(self):
        guard = manager(FaultSpec(rate=1.0, persistent_fraction=1.0),
                        breaker_threshold=3, breaker_cooldown=100)
        self.trip_site(guard)
        with pytest.raises(CircuitOpenError):
            guard.call(SITE, "other", lambda: "never")

    def test_breaker_recovers_through_half_open_probe(self):
        guard = manager(FaultSpec(rate=0.0), breaker_threshold=1,
                        breaker_cooldown=2)
        breaker = guard._breaker(SITE)
        breaker.record_failure()  # trip
        assert guard.breaker_state(SITE) == OPEN
        # first guarded call is rejected (cooldown), second is the probe
        assert guard.call(SITE, "k", lambda: "ok",
                          fallback=lambda: "rejected") == "rejected"
        assert guard.call(SITE, "k", lambda: "ok") == "ok"
        assert guard.breaker_state(SITE) == "closed"


class TestDeadlineFactory:
    def test_no_deadline_configured_returns_none(self):
        assert manager().deadline(SimClock()) is None

    def test_deadline_budget_starts_at_current_elapsed(self):
        guard = manager(query_deadline=1.5)
        clock = SimClock()
        clock.charge_amount("warmup", 2.0)
        budget = guard.deadline(clock)
        assert budget is not None
        assert budget.limit == 1.5
        assert budget.consumed == pytest.approx(0.0)


class TestChaosConfig:
    def test_chaos_config_covers_all_sites(self):
        from repro.resilience import FAULT_SITES

        config = ResilienceConfig.chaos(0.2, seed=9)
        assert set(config.fault_specs) == set(FAULT_SITES)
        assert all(s.rate == 0.2 for s in config.fault_specs.values())
        assert config.seed == 9
