"""Tests for the call-count circuit breaker state machine."""

import pytest

from repro.resilience import CLOSED, CircuitBreaker, HALF_OPEN, OPEN


def trip(breaker):
    for _ in range(breaker.failure_threshold):
        breaker.record_failure()


class TestTrip:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0)

    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3)
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.record_failure()  # third consecutive: trips
        assert breaker.state == OPEN
        assert breaker.trips == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        assert not breaker.record_failure()
        assert breaker.state == CLOSED


class TestCooldownAndHalfOpen:
    def test_open_rejects_for_cooldown_calls_then_probes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=3)
        trip(breaker)
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.allow()  # third rejection exhausts the cooldown
        assert breaker.state == HALF_OPEN

    def test_half_open_rejects_concurrent_probes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1)
        trip(breaker)
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # concurrent call while probing

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1)
        trip(breaker)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1)
        trip(breaker)
        assert breaker.allow()
        assert breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 2
