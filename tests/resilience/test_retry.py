"""Tests for retry policies and deadline budgets (simulated time)."""

import pytest

from repro.errors import DeadlineExceededError
from repro.resilience import DeadlineBudget, RetryPolicy
from repro.simtime import SimClock


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_multiplier=2.0,
                             jitter=0.0)
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(1) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.8)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_multiplier=2.0,
                             jitter=0.25)
        first = policy.backoff(1, "executor.match", "dog")
        second = policy.backoff(1, "executor.match", "dog")
        assert first == second
        base = 0.2
        assert base * 0.75 <= first <= base * 1.25

    def test_jitter_desynchronises_keys(self):
        policy = RetryPolicy(backoff_base=0.1, jitter=0.25)
        assert policy.backoff(1, "executor.match", "dog") != \
            policy.backoff(1, "executor.match", "cat")

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff(-1)


class TestDeadlineBudget:
    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            DeadlineBudget.start(SimClock(), 0.0)

    def test_budget_tracks_clock_charges(self):
        clock = SimClock()
        clock.charge_amount("warmup", 1.0)  # pre-budget work is excluded
        budget = DeadlineBudget.start(clock, limit=0.5)
        assert budget.consumed == pytest.approx(0.0)
        clock.charge_amount("work", 0.3)
        assert budget.consumed == pytest.approx(0.3)
        assert budget.remaining == pytest.approx(0.2)
        assert not budget.exceeded

    def test_exceeded_flips_past_limit(self):
        clock = SimClock()
        budget = DeadlineBudget.start(clock, limit=0.5)
        clock.charge_amount("work", 0.6)
        assert budget.exceeded

    def test_check_raises_with_attribution(self):
        clock = SimClock()
        budget = DeadlineBudget.start(clock, limit=0.5)
        clock.charge_amount("work", 0.6)
        with pytest.raises(DeadlineExceededError) as excinfo:
            budget.check("executor")
        assert excinfo.value.site == "executor"
        assert excinfo.value.elapsed_budget == pytest.approx(0.6)
