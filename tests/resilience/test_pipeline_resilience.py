"""End-to-end resilience tests over the SVQA facade and batch engine.

Covers the acceptance criteria of the resilience layer: zero-cost when
off, batch slot alignment under mid-batch crashes (workers=1 and 4
agree), deadline cutoff determinism, parse-failure survival in
``answer_many``, and a chaos sweep with graceful, reproducible decay.
"""

import pytest

from repro.core import (
    SVQA,
    SVQAConfig,
    BatchExecutor,
    generate_query_graph,
)
from repro.core.spoc import DependencyKind, QueryGraph, QuestionType, SPOC, Term
from repro.dataset.kg import build_commonsense_kg
from repro.errors import TokenizationError
from repro.resilience import ResilienceConfig
from repro.synth import SceneGenerator
from tests.core.test_executor import make_merged

QUESTIONS = [
    "Is there a dog near the fence?",
    "How many dogs are standing on the grass?",
    "Is there a cat near the grass?",
    "What kind of animals is standing on the grass?",
    "Is there a fence near the grass?",
]


def build_svqa(resilience=None, seed=31, pool=40, workers=1):
    scenes = SceneGenerator(seed=seed).generate_pool(pool)
    system = SVQA(scenes, build_commonsense_kg(),
                  SVQAConfig(workers=workers, resilience=resilience))
    system.build()
    return system


def poisoned_graph():
    """A query graph whose execution raises (cyclic wiring, no start)."""
    spoc = SPOC(
        subject=Term(text="dog", head="dog"), predicate="near",
        object=Term(text="fence", head="fence"), clause_index=0,
        depth=0, is_main=True, question_type=QuestionType.JUDGMENT,
        answer_role="subject", source_text="poisoned",
    )
    other = SPOC(
        subject=Term(text="cat", head="cat"), predicate="near",
        object=Term(text="sofa", head="sofa"), clause_index=1,
        depth=1, is_main=False, question_type=None,
        answer_role="subject", source_text="poisoned",
    )
    kind = DependencyKind.S2S
    return QueryGraph(vertices=[spoc, other],
                      edges=[(0, 1, kind), (1, 0, kind)],
                      question="poisoned")


class TestZeroCostWhenOff:
    def test_answers_and_latencies_identical_without_resilience(self):
        baseline = build_svqa(resilience=None)
        vanilla = baseline.answer_many(QUESTIONS)
        chaosless = build_svqa(resilience=ResilienceConfig.chaos(0.0))
        guarded = chaosless.answer_many(QUESTIONS)
        assert [a.value for a in vanilla] == [a.value for a in guarded]
        assert [a.latency for a in vanilla] == \
            [a.latency for a in guarded]
        assert baseline.elapsed == pytest.approx(chaosless.elapsed)

    def test_no_resilience_counters_move_when_off(self):
        system = build_svqa(resilience=None)
        system.answer_many(QUESTIONS)
        stats = system.execution_report().stats
        assert stats.faults_injected == 0
        assert stats.retry_attempts == 0
        assert stats.breaker_trips == 0
        assert stats.deadline_cutoffs == 0
        assert stats.degraded_answers == 0


class TestBatchCrashAbsorption:
    def run_batch(self, workers):
        merged = make_merged()
        graphs = [generate_query_graph(q) for q in [
            "Is there a dog near the fence?",
            "How many dogs are standing on the grass?",
        ]]
        graphs.insert(1, poisoned_graph())
        return BatchExecutor(merged, workers=workers).run(graphs)

    def test_crash_mid_batch_keeps_slots_aligned(self):
        result = self.run_batch(workers=1)
        assert len(result.answers) == 3
        assert len(result.latencies) == 3
        crashed = result.answers[1]
        assert crashed.value == "unknown"
        assert crashed.degraded
        assert crashed.fault_events
        assert crashed.fault_events[0].site == "executor.execute"
        # the healthy neighbours answered normally
        assert result.answers[0].value in ("yes", "no")
        assert result.answers[2].value.isdigit()

    def test_workers_1_and_4_agree(self):
        serial = self.run_batch(workers=1)
        parallel = self.run_batch(workers=4)
        assert [a.value for a in serial.answers] == \
            [a.value for a in parallel.answers]
        assert [a.degraded for a in serial.answers] == \
            [a.degraded for a in parallel.answers]


class TestParseFailureSurvival:
    def test_answer_many_absorbs_non_query_repro_errors(self, monkeypatch):
        """Satellite: ParseError/TokenizationError are ReproErrors but
        not QueryErrors — they must cost one slot, not the batch."""
        system = build_svqa(resilience=None)
        real_parse = generate_query_graph

        def flaky_parse(question, clock=None, tracer=None):
            if question == "BOOM":
                raise TokenizationError("unlexable input")
            return real_parse(question, clock=clock)

        monkeypatch.setattr("repro.core.pipeline.generate_query_graph",
                            flaky_parse)
        answers = system.answer_many([QUESTIONS[0], "BOOM", QUESTIONS[1]])
        assert len(answers) == 3
        assert answers[1].value == "unknown"
        assert answers[0].value in ("yes", "no")
        assert answers[2].value.isdigit()

    def test_keyword_fallback_salvages_rejected_parse(self, monkeypatch):
        system = build_svqa(resilience=ResilienceConfig.chaos(0.0))
        real_parse = generate_query_graph

        def rejecting_parse(question, clock=None, tracer=None):
            if question.startswith("Is there a dog"):
                raise TokenizationError("grammar rejected")
            return real_parse(question, clock=clock)

        monkeypatch.setattr("repro.core.pipeline.generate_query_graph",
                            rejecting_parse)
        answer = system.answer("Is there a dog near the fence?")
        assert answer.degraded
        assert answer.confidence <= 0.3
        assert any(e.site == "parse.question" for e in answer.fault_events)
        # the keyword fallback still produced a typed yes/no answer
        assert answer.value in ("yes", "no", "unknown")
        assert system.execution_report().stats.degraded_answers >= 1


class TestDeadlineCutoff:
    def make_system(self):
        config = ResilienceConfig(query_deadline=0.001)
        return build_svqa(resilience=config, pool=30)

    def test_tiny_deadline_degrades_with_attribution(self):
        # multi-clause: the budget is spent after the first condition
        # vertex, so the main clause is cut off mid-walk
        system = self.make_system()
        answer = system.answer(
            "What kind of animals is carried by the pets that are "
            "standing on the grass?"
        )
        assert answer.degraded
        assert any(e.kind == "deadline" for e in answer.fault_events)
        assert system.execution_report().stats.deadline_cutoffs >= 1

    def test_cutoff_is_deterministic(self):
        first = self.make_system().answer_many(QUESTIONS)
        second = self.make_system().answer_many(QUESTIONS)
        assert [a.value for a in first] == [a.value for a in second]
        assert [a.latency for a in first] == [a.latency for a in second]
        assert [len(a.fault_events) for a in first] == \
            [len(a.fault_events) for a in second]


class TestChaosSweep:
    RATES = [0.0, 0.3, 0.7]

    def sweep(self, seed=0):
        outcomes = {}
        for rate in self.RATES:
            system = build_svqa(
                resilience=ResilienceConfig.chaos(rate, seed=seed),
                pool=30,
            )
            answers = system.answer_many(QUESTIONS)
            outcomes[rate] = (answers, system.execution_report().stats)
        return outcomes

    def test_every_question_answered_at_every_rate(self):
        for rate, (answers, _) in self.sweep().items():
            assert len(answers) == len(QUESTIONS), f"rate {rate}"
            assert all(a.value for a in answers)

    def test_degraded_answers_carry_provenance(self):
        for _, (answers, _) in self.sweep().items():
            for answer in answers:
                if answer.degraded:
                    assert answer.fault_events

    def test_fault_pressure_grows_with_rate(self):
        outcomes = self.sweep()
        faults = [outcomes[r][1].faults_injected for r in self.RATES]
        assert faults[0] == 0
        assert faults == sorted(faults)
        assert faults[-1] > 0

    def test_same_seed_identical_outcomes(self):
        first = self.sweep(seed=3)
        second = self.sweep(seed=3)
        for rate in self.RATES:
            assert [a.value for a in first[rate][0]] == \
                [a.value for a in second[rate][0]]
            assert first[rate][1] == second[rate][1]

    def test_chaos_build_marks_skipped_images(self):
        system = build_svqa(resilience=ResilienceConfig.chaos(0.9, seed=1),
                            pool=30)
        assert system.merged.is_partial
        assert system.merged.skipped_images
