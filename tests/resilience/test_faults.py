"""Tests for the deterministic seeded fault injector."""

import pytest

from repro.errors import InjectedFaultError
from repro.resilience import FAULT_SITES, FaultInjector, FaultSpec
from repro.simtime import SimClock

SITE = "executor.match"
KEYS = [f"key-{i}" for i in range(400)]


class TestFaultSpec:
    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec(rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(rate=-0.1)

    def test_fail_times_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultSpec(rate=0.1, fail_times=0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(rate=0.1, latency=-1.0)


class TestRegistry:
    def test_unregistered_site_rejected_at_construction(self):
        with pytest.raises(ValueError):
            FaultInjector(specs={"nonexistent.site": FaultSpec(rate=0.5)})

    def test_unregistered_site_rejected_at_query(self):
        injector = FaultInjector.uniform(0.5)
        with pytest.raises(ValueError):
            injector.would_fault("nonexistent.site", "k")

    def test_uniform_covers_every_site(self):
        injector = FaultInjector.uniform(0.5)
        assert set(injector.specs) == set(FAULT_SITES)


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        a = FaultInjector.uniform(0.3, seed=7)
        b = FaultInjector.uniform(0.3, seed=7)
        decisions_a = [a.would_fault(SITE, k) for k in KEYS]
        decisions_b = [b.would_fault(SITE, k) for k in KEYS]
        assert decisions_a == decisions_b

    def test_different_seeds_differ(self):
        a = FaultInjector.uniform(0.3, seed=1)
        b = FaultInjector.uniform(0.3, seed=2)
        assert [a.would_fault(SITE, k) for k in KEYS] != \
            [b.would_fault(SITE, k) for k in KEYS]

    def test_rate_zero_never_faults(self):
        injector = FaultInjector.uniform(0.0)
        assert not any(injector.would_fault(SITE, k) for k in KEYS)

    def test_rate_one_always_faults(self):
        injector = FaultInjector.uniform(1.0)
        assert all(injector.would_fault(SITE, k) for k in KEYS)

    def test_raising_rate_grows_faulted_set_monotonically(self):
        low = FaultInjector.uniform(0.05, seed=3)
        high = FaultInjector.uniform(0.4, seed=3)
        low_set = {k for k in KEYS if low.would_fault(SITE, k)}
        high_set = {k for k in KEYS if high.would_fault(SITE, k)}
        assert low_set  # the sample is large enough to fault something
        assert low_set <= high_set


class TestTransience:
    def test_transient_faults_clear_after_fail_times(self):
        spec = FaultSpec(rate=1.0, persistent_fraction=0.0, fail_times=2)
        injector = FaultInjector(seed=0, specs={SITE: spec})
        assert injector.would_fault(SITE, "k", attempt=0)
        assert injector.would_fault(SITE, "k", attempt=1)
        assert not injector.would_fault(SITE, "k", attempt=2)

    def test_persistent_faults_never_clear(self):
        spec = FaultSpec(rate=1.0, persistent_fraction=1.0, fail_times=1)
        injector = FaultInjector(seed=0, specs={SITE: spec})
        assert all(injector.would_fault(SITE, "k", attempt=n)
                   for n in range(10))


class TestCheck:
    def test_check_raises_and_charges_latency(self):
        spec = FaultSpec(rate=1.0, latency=0.5)
        injector = FaultInjector(seed=0, specs={SITE: spec})
        clock = SimClock()
        with pytest.raises(InjectedFaultError) as excinfo:
            injector.check(SITE, "k", clock=clock)
        assert excinfo.value.site == SITE
        assert clock.elapsed == pytest.approx(0.5)

    def test_check_passes_quietly_when_no_fault(self):
        injector = FaultInjector.uniform(0.0)
        clock = SimClock()
        injector.check(SITE, "k", clock=clock)
        assert clock.elapsed == 0.0
