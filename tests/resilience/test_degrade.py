"""Tests for the graceful-degradation ladder's bottom rungs."""

from repro.core.spoc import QuestionType
from repro.resilience.degrade import (
    classify_question_text,
    keyword_query_graph,
)


class TestClassify:
    def test_counting(self):
        assert classify_question_text(
            "How many dogs are on the grass?"
        ) is QuestionType.COUNTING

    def test_judgment(self):
        assert classify_question_text(
            "Is there a cat near the sofa?"
        ) is QuestionType.JUDGMENT

    def test_reasoning_default(self):
        assert classify_question_text(
            "What kind of animal is on the grass?"
        ) is QuestionType.REASONING


class TestKeywordFallback:
    def test_builds_single_clause_graph_from_nouns(self):
        graph = keyword_query_graph("Is there a dog near the fence?")
        assert graph is not None
        assert len(graph.vertices) == 1
        spoc = graph.vertices[graph.main_index]
        assert spoc.is_main
        assert spoc.question_type is QuestionType.JUDGMENT
        heads = {t.head for t in (spoc.subject, spoc.object)
                 if t is not None}
        assert "dog" in heads

    def test_counting_question_keeps_subject_answer_role(self):
        graph = keyword_query_graph("How many dogs are on the grass?")
        assert graph is not None
        spoc = graph.vertices[graph.main_index]
        assert spoc.question_type is QuestionType.COUNTING
        assert spoc.answer_role == "subject"

    def test_no_usable_nouns_returns_none(self):
        assert keyword_query_graph("zzzxqw vfrt qqq?") is None
