"""Unit tests for answer scoring and the evaluation harness."""

import pytest

from repro.core.answer import Answer
from repro.core.spoc import QuestionType
from repro.eval import (
    AccuracyReport,
    answers_match,
    evaluate,
    format_table,
    percentage,
)


class TestAnswersMatch:
    def test_judgment_exact(self):
        assert answers_match("yes", "yes", QuestionType.JUDGMENT)
        assert not answers_match("no", "yes", QuestionType.JUDGMENT)

    def test_judgment_case_insensitive(self):
        assert answers_match("Yes", "yes", QuestionType.JUDGMENT)

    def test_counting_exact(self):
        assert answers_match("3", "3", QuestionType.COUNTING)
        assert not answers_match("4", "3", QuestionType.COUNTING)

    def test_reasoning_exact(self):
        assert answers_match("dog", "dog", QuestionType.REASONING)

    def test_reasoning_synonym(self):
        # the §VII example: "puppy" is consistent with "dog"
        assert answers_match("puppy", "dog", QuestionType.REASONING)

    def test_reasoning_plural(self):
        assert answers_match("dogs", "dog", QuestionType.REASONING)

    def test_reasoning_unrelated(self):
        assert not answers_match("fence", "dog", QuestionType.REASONING)

    def test_unknown_never_matches(self):
        assert not answers_match("unknown", "dog", QuestionType.REASONING)


class TestAccuracyReport:
    def test_accumulates(self):
        report = AccuracyReport()
        report.record(QuestionType.JUDGMENT, True)
        report.record(QuestionType.JUDGMENT, False)
        report.record(QuestionType.COUNTING, True)
        assert report.accuracy(QuestionType.JUDGMENT) == 0.5
        assert report.accuracy(QuestionType.COUNTING) == 1.0
        assert report.overall == pytest.approx(2 / 3)

    def test_empty(self):
        report = AccuracyReport()
        assert report.overall == 0.0
        assert report.accuracy(QuestionType.JUDGMENT) == 0.0

    def test_as_row_keys(self):
        row = AccuracyReport().as_row()
        assert set(row) == {"judgment", "counting", "reasoning", "overall"}


class TestEvaluate:
    def make_questions(self):
        from repro.dataset.questions import MVQAQuestion

        return [
            MVQAQuestion("q1", QuestionType.JUDGMENT, "yes", 2, False,
                         (), (), 10),
            MVQAQuestion("q2", QuestionType.COUNTING, "3", 2, False,
                         (), (), 10),
        ]

    def test_scores_and_latency(self):
        clock = {"t": 0.0}

        def answer_batch(questions):
            clock["t"] += 5.0
            return [Answer(QuestionType.JUDGMENT, "yes"),
                    Answer(QuestionType.COUNTING, "4")]

        result = evaluate("sys", self.make_questions(), answer_batch,
                          lambda: clock["t"])
        assert result.latency == 5.0
        assert result.report.overall == 0.5
        assert len(result.failures) == 1

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            evaluate("sys", self.make_questions(), lambda qs: [],
                     lambda: 0.0)


class TestFormatting:
    def test_format_table(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "333" in text

    def test_percentage(self):
        assert percentage(0.8575) == "85.8%"
