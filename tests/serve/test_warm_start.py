"""Serve warm start from the durable store.

The contract: a server warm-started from a snapshot of a same-seed
cold build answers **byte-identically** to that cold build — same
``/ask`` bodies, same ``/metrics`` exposition — while skipping the
vision pipeline entirely (no ``build``/``aggregate.merge`` spans, one
``store.recover`` span).  An unrecoverable store degrades to the cold
path, counted and surfaced in ``/healthz``.
"""

import json

import pytest

from repro.dataset.kg import build_movie_kg
from repro.dataset.movie import (
    FLAGSHIP_ANSWER,
    FLAGSHIP_QUESTION,
    build_movie_scenes,
)
from repro.core.pipeline import SVQA, SVQAConfig
from repro.graph.durable import DurableStore
from repro.observability import ObservabilityConfig
from repro.observability.spans import span_multiset
from repro.serve import ServeConfig, build_service
from repro.serve.app import _warm_start
from repro.vision.detector import DetectorConfig

from tests.serve.test_app import ask, request


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    """A durable store holding a snapshot of the cold movie build."""
    root = tmp_path_factory.mktemp("store")
    service = build_service(ServeConfig())
    merged = service.svqa.merged
    store = DurableStore(root)
    store.snapshot(merged.graph, merged_meta=merged.meta_dict())
    store.close()
    return root


def transcript(service):
    """A fixed request sequence -> list of (status, body) + metrics."""
    out = []
    for question, deadline in [(FLAGSHIP_QUESTION, None),
                               ("canis canis canis", None),
                               (FLAGSHIP_QUESTION, "0.0005"),
                               (FLAGSHIP_QUESTION, None)]:
        headers = {} if deadline is None else {"Deadline-Ms": deadline}
        status, _, body = ask(service, question, headers=headers,
                              client="warm")
        out.append((status, body))
    return out, request(service, "GET", "/metrics")[2]


class TestWarmStartByteIdentity:
    def test_ask_and_metrics_byte_identical(self, store_dir):
        cold = transcript(build_service(ServeConfig()))
        warm = transcript(
            build_service(ServeConfig(snapshot=str(store_dir))))
        assert cold[0] == warm[0]
        assert cold[1] == warm[1]

    def test_healthz_reports_snapshot_source(self, store_dir):
        service = build_service(ServeConfig(snapshot=str(store_dir)))
        payload = json.loads(request(service, "GET", "/healthz")[2])
        store = payload["store"]
        assert store["source"] == "snapshot"
        assert store["epoch"] == service.svqa.merged.graph.epoch
        assert store["wal_records_replayed"] == 0
        assert payload["status"] == "ok"


class TestWarmStartSkipsVisionPipeline:
    def _traced_svqa(self):
        movie = build_movie_scenes()
        return SVQA(
            movie.scenes,
            build_movie_kg(),
            SVQAConfig(
                detector=DetectorConfig(label_noise=0.0, miss_rate=0.0),
                observability=ObservabilityConfig(trace=True),
            ),
            annotations=movie.annotations,
        )

    def test_span_multiset_has_recover_and_no_merge(self, store_dir):
        svqa = self._traced_svqa()
        report = _warm_start(svqa, str(store_dir))
        assert report.source == "snapshot"
        assert svqa.merged is not None
        counts = span_multiset(svqa.finished_spans())
        names = {name for name, _ in counts}
        assert "store.recover" in names
        assert "build" not in names
        assert "aggregate.merge" not in names
        answer = svqa.answer(FLAGSHIP_QUESTION)
        assert answer.value == FLAGSHIP_ANSWER

    def test_cold_build_does_run_vision_pipeline(self):
        svqa = self._traced_svqa()
        svqa.build()
        names = {name for name, _
                 in span_multiset(svqa.finished_spans())}
        assert "build" in names
        assert "aggregate.merge" in names
        assert "store.recover" not in names


class TestWarmStartDegradation:
    def test_empty_store_degrades_to_cold_build(self, tmp_path):
        service = build_service(
            ServeConfig(snapshot=str(tmp_path / "empty")))
        payload = json.loads(request(service, "GET", "/healthz")[2])
        assert payload["store"]["source"] == "rebuild"
        assert payload["index"]["ready"] is True
        stats = service.svqa.execution_report().stats
        assert stats.store_rebuilds == 1
        status, _, body = ask(service, FLAGSHIP_QUESTION)
        assert status == 200
        assert json.loads(body)["answer"] == FLAGSHIP_ANSWER

    def test_missing_merged_meta_degrades(self, tmp_path):
        root = tmp_path / "nometa"
        graph = build_movie_kg()
        store = DurableStore(root)
        store.snapshot(graph)  # no merged_meta record
        store.close()
        service = build_service(ServeConfig(snapshot=str(root)))
        payload = json.loads(request(service, "GET", "/healthz")[2])
        assert payload["store"]["source"] == "rebuild"
        assert payload["index"]["ready"] is True
        assert service.svqa.execution_report().stats.store_rebuilds == 1

    def test_corrupt_snapshot_degrades_with_attribution(
            self, tmp_path, store_dir):
        root = tmp_path / "corrupt"
        root.mkdir()
        raw = (store_dir / DurableStore.SNAPSHOT_NAME).read_bytes()
        (root / DurableStore.SNAPSHOT_NAME).write_bytes(raw[:-7])
        (root / DurableStore.WAL_NAME).write_bytes(
            (store_dir / DurableStore.WAL_NAME).read_bytes())
        service = build_service(ServeConfig(snapshot=str(root)))
        report = service.store_report
        assert report.source == "rebuild"
        assert report.quarantined
        assert (root / DurableStore.QUARANTINE_DIR
                / DurableStore.SNAPSHOT_NAME).exists()
        status, _, body = ask(service, FLAGSHIP_QUESTION)
        assert status == 200
        assert json.loads(body)["answer"] == FLAGSHIP_ANSWER
