"""The micro-batching bridge: alignment, coalescing, failure paths."""

import threading

import pytest

from repro.core.answer import Answer
from repro.core.spoc import QuestionType
from repro.serve.batching import BatchingBridge


class StubSVQA:
    """Stands in for the pipeline: echoes each question into its slot."""

    def __init__(self, fail_on=None):
        self.fail_on = fail_on or set()
        self.calls = []
        self._lock = threading.Lock()

    def answer_many(self, questions, workers=None, deadlines=None):
        with self._lock:
            self.calls.append((tuple(questions), tuple(deadlines)))
        if any(q in self.fail_on for q in questions):
            raise RuntimeError("batch exploded")
        return [
            Answer(QuestionType.REASONING,
                   f"echo:{question}|deadline:{deadline}")
            for question, deadline in
            zip(questions, deadlines, strict=True)
        ]


class TestInlineMode:
    def test_inline_answers_synchronously(self):
        svqa = StubSVQA()
        bridge = BatchingBridge(svqa, max_wait=0.0)
        assert bridge.inline
        answer = bridge.submit("q1", deadline=0.5)
        assert answer.value == "echo:q1|deadline:0.5"
        assert svqa.calls == [(("q1",), (0.5,))]

    def test_inline_closed_bridge_refuses(self):
        bridge = BatchingBridge(StubSVQA(), max_wait=0.0)
        bridge.close()
        with pytest.raises(RuntimeError):
            bridge.submit("q")

    def test_on_batch_observes_sizes(self):
        sizes = []
        bridge = BatchingBridge(StubSVQA(), max_wait=0.0,
                                on_batch=sizes.append)
        bridge.submit("a")
        bridge.submit("b")
        assert sizes == [1, 1]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BatchingBridge(StubSVQA(), max_batch=0)
        with pytest.raises(ValueError):
            BatchingBridge(StubSVQA(), max_wait=-1.0)


class TestThreadedMode:
    def submit_all(self, bridge, questions):
        answers = {}
        errors = {}

        def run(question, deadline):
            try:
                answers[question] = bridge.submit(question, deadline)
            except Exception as exc:  # noqa: BLE001
                errors[question] = exc

        threads = [
            threading.Thread(target=run, args=(q, i / 10))
            for i, q in enumerate(questions)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return answers, errors

    def test_concurrent_submitters_get_their_own_slots(self):
        svqa = StubSVQA()
        bridge = BatchingBridge(svqa, max_batch=4, max_wait=0.05)
        questions = [f"q{i}" for i in range(10)]
        answers, errors = self.submit_all(bridge, questions)
        bridge.close()
        assert not errors
        # every submitter got the answer for *its* question and its
        # own deadline, regardless of how the batches formed
        for i, question in enumerate(questions):
            assert answers[question].value == \
                f"echo:{question}|deadline:{i / 10}"
        assert all(len(call[0]) <= 4 for call in svqa.calls)
        assert sum(len(call[0]) for call in svqa.calls) == 10

    def test_batch_failure_propagates_to_every_member(self):
        svqa = StubSVQA(fail_on={"boom"})
        bridge = BatchingBridge(svqa, max_batch=2, max_wait=0.02)
        answers, errors = self.submit_all(bridge, ["boom"])
        bridge.close()
        assert not answers
        assert isinstance(errors["boom"], RuntimeError)

    def test_close_drains_queued_work(self):
        bridge = BatchingBridge(StubSVQA(), max_batch=8, max_wait=0.02)
        answers, errors = self.submit_all(
            bridge, [f"q{i}" for i in range(5)])
        bridge.close()
        assert not errors
        assert len(answers) == 5
        # a second close is a harmless no-op
        bridge.close()
