"""Admission control: token buckets, shedding, and determinism."""

import pytest

from repro.serve.admission import AdmissionController, TokenBucket


class FakeClock:
    """A settable simulated-time source."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestTokenBucket:
    def test_burst_then_empty(self):
        bucket = TokenBucket(rate=1.0, burst=2, now=0.0)
        assert bucket.try_take(0.0) == (True, 0.0)
        assert bucket.try_take(0.0) == (True, 0.0)
        granted, retry_after = bucket.try_take(0.0)
        assert not granted
        assert retry_after == pytest.approx(1.0)

    def test_refills_with_simulated_time(self):
        bucket = TokenBucket(rate=2.0, burst=1, now=0.0)
        assert bucket.try_take(0.0)[0]
        assert not bucket.try_take(0.0)[0]
        # half a simulated second accrues one token at rate 2/s
        assert bucket.try_take(0.5)[0]

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(rate=100.0, burst=3, now=0.0)
        bucket._refill(1000.0)
        assert bucket.tokens == 3.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1, now=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0, now=0.0)


class TestRateLimiting:
    def test_429_after_burst_with_retry_hint(self):
        clock = FakeClock()
        admission = AdmissionController(clock, rate=1.0, burst=2,
                                        max_queue=64)
        assert admission.admit("alice").admitted
        admission.release()
        assert admission.admit("alice").admitted
        admission.release()
        decision = admission.admit("alice")
        assert not decision.admitted
        assert decision.status == 429
        assert decision.reason == "rate-limited"
        assert decision.retry_after_s == pytest.approx(1.0)

    def test_buckets_are_per_client(self):
        admission = AdmissionController(FakeClock(), rate=1.0, burst=1,
                                        max_queue=64)
        assert admission.admit("alice").admitted
        # alice is out of tokens; bob is not
        assert admission.admit("bob").admitted

    def test_tokens_refill_as_simulated_time_advances(self):
        clock = FakeClock()
        admission = AdmissionController(clock, rate=10.0, burst=1,
                                        max_queue=64)
        assert admission.admit("c").admitted
        admission.release()
        assert admission.admit("c").status == 429
        clock.now = 0.1  # one token at 10 tokens/sim-second
        assert admission.admit("c").admitted


class TestLoadShedding:
    def test_hard_bound_is_unconditional_503(self):
        admission = AdmissionController(FakeClock(), rate=100.0,
                                        burst=100, max_queue=2,
                                        soft_queue=2)
        assert admission.admit("a").admitted
        assert admission.admit("a").admitted
        decision = admission.admit("a")
        assert (decision.admitted, decision.status, decision.reason) \
            == (False, 503, "overloaded")

    def test_soft_band_sheds_probabilistically(self):
        # with the band occupied, some sequence numbers shed and some
        # pass — both outcomes must occur across enough attempts
        admission = AdmissionController(FakeClock(), rate=1000.0,
                                        burst=1000, max_queue=10,
                                        soft_queue=2, seed=0)
        assert admission.admit("warm").admitted
        assert admission.admit("warm").admitted
        outcomes = set()
        for _ in range(40):
            decision = admission.admit("crowd")
            outcomes.add(decision.reason)
            if decision.admitted:
                admission.release()
        assert outcomes == {"admitted", "shed"}

    def test_shed_does_not_consume_a_token(self):
        admission = AdmissionController(FakeClock(), rate=1.0, burst=1,
                                        max_queue=4, soft_queue=0,
                                        seed=0)
        # find a shedding sequence number first, then confirm the
        # token survives to serve the eventually-admitted request
        admitted = 0
        for _ in range(50):
            decision = admission.admit("c")
            if decision.admitted:
                admitted += 1
                admission.release()
        assert admitted == 1  # burst=1, no refill: exactly one token

    def test_release_requires_matching_admit(self):
        admission = AdmissionController(FakeClock())
        with pytest.raises(RuntimeError):
            admission.release()


class TestDeterminism:
    def drive(self, seed):
        admission = AdmissionController(FakeClock(), rate=5.0, burst=3,
                                        max_queue=6, soft_queue=1,
                                        seed=seed)
        held = 0
        decisions = []
        for step in range(60):
            client = f"client-{step % 3}"
            decision = admission.admit(client)
            decisions.append((client, decision.reason,
                              decision.status,
                              decision.retry_after_s))
            if decision.admitted:
                held += 1
            if held and step % 4 == 3:
                admission.release()
                held -= 1
        return decisions

    def test_same_seed_same_decisions(self):
        assert self.drive(seed=7) == self.drive(seed=7)

    def test_decision_mix_varies_with_seed(self):
        # not a distribution test — just that the seed is live: the
        # shed coin flips differ between two far-apart seeds
        assert self.drive(seed=0) != self.drive(seed=12345)
