"""The WSGI QA service: contract, admission, health, determinism.

Everything here drives the app in-process (plain WSGI environ dicts,
no sockets); the CI smoke job covers the real threaded server.
"""

import io
import json

import pytest

from repro.dataset.movie import FLAGSHIP_ANSWER, FLAGSHIP_QUESTION
from repro.observability import parse_prometheus
from repro.serve import QAService, ServeConfig, build_svqa


def request(service, method, path, body=None, headers=None):
    """One in-process WSGI round trip -> (status_code, headers, bytes)."""
    environ = {"REQUEST_METHOD": method, "PATH_INFO": path}
    if body is not None:
        raw = json.dumps(body).encode("utf-8")
        environ["CONTENT_LENGTH"] = str(len(raw))
        environ["wsgi.input"] = io.BytesIO(raw)
    for name, value in (headers or {}).items():
        environ["HTTP_" + name.upper().replace("-", "_")] = value
    captured = {}

    def start_response(status, response_headers):
        captured["status"] = int(status.split()[0])
        captured["headers"] = dict(response_headers)

    payload = b"".join(service(environ, start_response))
    return captured["status"], captured["headers"], payload


def ask(service, question, headers=None, client=None):
    body = {"question": question}
    if client is not None:
        body["client"] = client
    return request(service, "POST", "/ask", body, headers)


@pytest.fixture(scope="module")
def svqa():
    return build_svqa(ServeConfig())


@pytest.fixture()
def service(svqa):
    return QAService(svqa, ServeConfig())


class TestAskContract:
    def test_answer_payload_shape(self, service):
        status, headers, body = ask(service, FLAGSHIP_QUESTION)
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        payload = json.loads(body)
        assert sorted(payload) == ["answer", "meta", "question_type",
                                   "sources"]
        assert payload["answer"] == FLAGSHIP_ANSWER
        assert sorted(payload["sources"]) == ["images", "support"]
        assert payload["sources"]["images"]
        meta = payload["meta"]
        assert sorted(meta) == ["confidence", "deadline_s", "degraded",
                                "fault_events", "latency"]
        assert meta["degraded"] is False
        assert meta["confidence"] == 1.0
        assert meta["fault_events"] == []

    def test_body_and_content_length_agree(self, service):
        _, headers, body = ask(service, FLAGSHIP_QUESTION)
        assert int(headers["Content-Length"]) == len(body)

    def test_unparseable_question_degrades_not_500(self, service):
        status, _, body = ask(service, "canis canis canis")
        assert status == 200
        payload = json.loads(body)
        assert payload["answer"] == "unknown"
        assert payload["meta"]["degraded"] is True
        assert payload["meta"]["confidence"] < 1.0
        assert any(event["site"] == "parse.question"
                   for event in payload["meta"]["fault_events"])

    def test_deadline_header_cuts_execution(self, service):
        status, _, body = ask(service, FLAGSHIP_QUESTION,
                              headers={"Deadline-Ms": "0.0005"})
        assert status == 200
        payload = json.loads(body)
        assert payload["meta"]["deadline_s"] == 5e-07
        assert payload["meta"]["degraded"] is True
        assert any(event["kind"] == "deadline"
                   for event in payload["meta"]["fault_events"])

    def test_bad_deadline_header_is_400(self, service):
        for bad in ("abc", "-5", "0"):
            status, _, body = ask(service, FLAGSHIP_QUESTION,
                                  headers={"Deadline-Ms": bad})
            assert status == 400
            assert json.loads(body)["error"]["reason"] == "bad-deadline"

    def test_malformed_requests_are_400(self, service):
        for body in ({}, {"question": ""}, {"question": 7}, []):
            status, _, raw = request(service, "POST", "/ask", body)
            assert status == 400
            assert json.loads(raw)["error"]["status"] == 400

    def test_unknown_route_and_wrong_method(self, service):
        assert request(service, "GET", "/nope")[0] == 404
        assert request(service, "GET", "/ask")[0] == 405
        assert request(service, "POST", "/healthz")[0] == 405
        assert request(service, "POST", "/metrics")[0] == 405


class TestAdmission:
    def test_rate_limit_returns_structured_429(self, svqa):
        service = QAService(svqa, ServeConfig(rate=1e-9, burst=1))
        assert ask(service, FLAGSHIP_QUESTION, client="c")[0] == 200
        status, headers, body = ask(service, FLAGSHIP_QUESTION,
                                    client="c")
        assert status == 429
        error = json.loads(body)["error"]
        assert error["reason"] == "rate-limited"
        assert error["retry_after_s"] > 0
        assert headers["Retry-After"] == str(error["retry_after_s"])

    def test_overload_returns_structured_503(self, svqa):
        service = QAService(svqa, ServeConfig(max_queue=1, soft_queue=1))
        # occupy the only slot, as a stuck in-flight request would
        assert service.admission.admit("stuck").admitted
        try:
            status, _, body = ask(service, FLAGSHIP_QUESTION)
            assert status == 503
            error = json.loads(body)["error"]
            assert error["reason"] == "overloaded"
            assert error["status"] == 503
        finally:
            service.admission.release()

    def test_refusals_never_misalign_answers(self, svqa):
        # interleave refused and served requests: every 200 must carry
        # the answer to *its own* question, with no dropped slots
        service = QAService(svqa, ServeConfig(rate=1e-9, burst=2))
        expected = {FLAGSHIP_QUESTION: FLAGSHIP_ANSWER,
                    "canis canis canis": "unknown"}
        outcomes = []
        for question in [FLAGSHIP_QUESTION, "canis canis canis",
                         FLAGSHIP_QUESTION, FLAGSHIP_QUESTION]:
            status, _, body = ask(service, question, client="c")
            payload = json.loads(body)
            outcomes.append(status)
            if status == 200:
                assert payload["answer"] == expected[question]
        assert outcomes == [200, 200, 429, 429]


class TestHealthz:
    def test_shape(self, service):
        status, _, body = request(service, "GET", "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert sorted(payload) == ["admission", "breakers", "index",
                                   "status", "store"]
        assert payload["status"] == "ok"
        assert payload["index"]["ready"] is True
        assert payload["index"]["graph_vertices"] > 0
        assert set(payload["breakers"].values()) == {"closed"}
        assert len(payload["breakers"]) == 10
        admission = payload["admission"]
        assert admission["in_flight"] == 0
        assert admission["queued"] == 0
        # a cold-built server reports the plain-rebuild store default
        assert payload["store"] == {"source": "rebuild", "epoch": 0,
                                    "wal_records_replayed": 0}

    def test_breaker_trip_visible_on_next_request(self, svqa):
        service = QAService(svqa, ServeConfig())
        manager = svqa.resilience
        breaker = manager._breaker("executor.match")
        try:
            for _ in range(breaker.failure_threshold):
                breaker.record_failure()
            payload = json.loads(
                request(service, "GET", "/healthz")[2])
            assert payload["breakers"]["executor.match"] == "open"
            assert payload["status"] == "degraded"
        finally:
            breaker.record_success()
        payload = json.loads(request(service, "GET", "/healthz")[2])
        assert payload["breakers"]["executor.match"] == "closed"

    def test_requests_total_counts(self, service):
        before = json.loads(request(service, "GET", "/healthz")[2])
        ask(service, FLAGSHIP_QUESTION)
        after = json.loads(request(service, "GET", "/healthz")[2])
        assert after["admission"]["requests_total"] == \
            before["admission"]["requests_total"] + 2


class TestMetrics:
    def test_exposition_parses_and_counts_requests(self, service):
        ask(service, FLAGSHIP_QUESTION)
        status, headers, body = request(service, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        families = parse_prometheus(body.decode("utf-8"))
        assert "svqa_http_requests_total" in families
        assert "svqa_admission_total" in families
        assert "svqa_serve_batch_size" in families
        samples = families["svqa_http_requests_total"]["samples"]
        served = {
            (labels["route"], labels["code"]): value
            for _, labels, value in samples
        }
        assert served[("/ask", "200")] >= 1


class TestDeterministicReplay:
    SEQUENCE = [
        (FLAGSHIP_QUESTION, None),
        ("canis canis canis", None),
        (FLAGSHIP_QUESTION, "0.0005"),
        (FLAGSHIP_QUESTION, None),
    ]

    def replay(self):
        service = QAService(build_svqa(ServeConfig()), ServeConfig())
        transcript = []
        for question, deadline_ms in self.SEQUENCE:
            headers = {} if deadline_ms is None \
                else {"Deadline-Ms": deadline_ms}
            status, _, body = ask(service, question, headers=headers,
                                  client="replay")
            transcript.append((status, body))
        metrics = request(service, "GET", "/metrics")[2]
        return transcript, metrics

    def test_fresh_servers_replay_byte_identically(self):
        first_transcript, first_metrics = self.replay()
        second_transcript, second_metrics = self.replay()
        assert first_transcript == second_transcript
        assert first_metrics == second_metrics
