"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestParseCommand:
    def test_parse_prints_query_graph(self, capsys):
        code = main(["parse", "Is there a dog near the fence?"])
        out = capsys.readouterr().out
        assert code == 0
        assert "v0" in out

    def test_parse_failure_exits_nonzero(self, capsys):
        code = main(["parse", "canis canis canis"])
        assert code == 1
        assert "parse failed" in capsys.readouterr().err


class TestAskCommand:
    def test_flagship_default(self, capsys):
        code = main(["ask"])
        out = capsys.readouterr().out
        assert code == 0
        assert "A: robe" in out

    def test_custom_question(self, capsys):
        code = main(["ask", "Is there a woman standing on the grass?"])
        out = capsys.readouterr().out
        assert code == 0
        assert "A: " in out


class TestBenchCommand:
    def test_bench_reports_latency_and_stats(self, capsys):
        code = main(["bench", "--fast", "--workers", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Concurrent batch execution" in out
        assert "Makespan" in out
        assert "scope hit rate" in out
        assert "constraint applications" in out

    def test_bench_leads_with_measured_makespan(self, capsys):
        """Bugfix: the measured makespan is the headline figure; the
        retired bin-packing model only appears as a labeled estimate
        outside the measured table."""
        code = main(["bench", "--fast", "--workers", "2"])
        out = capsys.readouterr().out
        assert code == 0
        header = next(line for line in out.splitlines()
                      if "Makespan (s)" in line)
        # measured makespan column precedes everything else after
        # Workers, and the old Estimate column is out of the table
        assert header.index("Makespan (s)") < header.index("Sim total")
        assert "Estimate (s)" not in header
        assert "Analytical estimate (bin-packing fallback model):" in out


class TestProfileCommand:
    def test_profile_prints_stage_breakdown(self, capsys):
        code = main(["profile", "--fast"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Per-stage simulated-time breakdown" in out
        assert "query_graph" in out
        assert "executor.execute" in out
        assert "overall accuracy:" in out

    def test_profile_artifacts_are_byte_identical(self, capsys,
                                                  tmp_path):
        """Acceptance: two same-seed runs produce byte-identical
        metric snapshots (what the CI observability job diffs)."""
        snap1 = tmp_path / "snap-1.json"
        snap2 = tmp_path / "snap-2.json"
        base1 = tmp_path / "base-1.json"
        base2 = tmp_path / "base-2.json"
        spans = tmp_path / "spans.jsonl"
        assert main(["profile", "--fast", "--snapshot", str(snap1),
                     "--baseline", str(base1),
                     "--spans", str(spans)]) == 0
        assert main(["profile", "--fast", "--snapshot", str(snap2),
                     "--baseline", str(base2)]) == 0
        capsys.readouterr()
        assert snap1.read_bytes() == snap2.read_bytes()
        assert base1.read_bytes() == base2.read_bytes()
        assert spans.stat().st_size > 0


class TestTraceCommand:
    def test_trace_prints_span_tree(self, capsys):
        code = main(["trace"])
        out = capsys.readouterr().out
        assert code == 0
        assert "A: robe" in out
        assert "question" in out
        assert "executor.execute" in out
        assert "sim-ms" in out

    def test_trace_with_build_phase(self, capsys):
        code = main(["trace", "--build",
                     "Is there a woman standing on the grass?"])
        out = capsys.readouterr().out
        assert code == 0
        assert "aggregate.merge" in out


class TestStatsCommand:
    def test_fast_stats(self, capsys):
        code = main(["stats", "--fast"])
        out = capsys.readouterr().out
        assert code == 0
        assert "MVQA: 400 images" in out
        assert "judgment" in out


class TestArgumentErrors:
    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])

    @pytest.mark.parametrize("argv", [
        ["serve", "--rate", "-1"],
        ["serve", "--rate", "0"],
        ["serve", "--burst", "0"],
        ["serve", "--max-queue", "0"],
        ["serve", "--max-batch", "0"],
        ["serve", "--batch-wait", "-0.5"],
        ["serve", "--deadline-ms", "0"],
        ["serve", "--workers", "banana"],
        ["serve", "--chaos", "1.5"],
    ])
    def test_serve_rejects_bad_arguments(self, argv, capsys):
        # bad serve flags must exit 2 at argparse time, never boot
        # the server with a config the admission layer would reject
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert "error" in capsys.readouterr().err
