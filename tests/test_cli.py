"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestParseCommand:
    def test_parse_prints_query_graph(self, capsys):
        code = main(["parse", "Is there a dog near the fence?"])
        out = capsys.readouterr().out
        assert code == 0
        assert "v0" in out

    def test_parse_failure_exits_nonzero(self, capsys):
        code = main(["parse", "canis canis canis"])
        assert code == 1
        assert "parse failed" in capsys.readouterr().err


class TestAskCommand:
    def test_flagship_default(self, capsys):
        code = main(["ask"])
        out = capsys.readouterr().out
        assert code == 0
        assert "A: robe" in out

    def test_custom_question(self, capsys):
        code = main(["ask", "Is there a woman standing on the grass?"])
        out = capsys.readouterr().out
        assert code == 0
        assert "A: " in out


class TestBenchCommand:
    def test_bench_reports_latency_and_stats(self, capsys):
        code = main(["bench", "--fast", "--workers", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Concurrent batch execution" in out
        assert "Makespan" in out
        assert "scope hit rate" in out
        assert "constraint applications" in out


class TestStatsCommand:
    def test_fast_stats(self, capsys):
        code = main(["stats", "--fast"])
        out = capsys.readouterr().out
        assert code == 0
        assert "MVQA: 400 images" in out
        assert "judgment" in out


class TestArgumentErrors:
    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])
