"""Unit tests for deterministic embeddings and maxScore."""

import numpy as np
import pytest

from repro.nlp import (
    are_synonyms,
    cosine,
    hypernym_chain,
    hyponyms_of,
    is_kind_of,
    max_score,
    phrase_vector,
    rank_scores,
    word_vector,
)


class TestVectors:
    def test_unit_norm(self):
        assert np.linalg.norm(word_vector("dog")) == pytest.approx(1.0)

    def test_deterministic(self):
        assert np.allclose(word_vector("wizard"), word_vector("wizard"))

    def test_case_insensitive(self):
        assert np.allclose(word_vector("Dog"), word_vector("dog"))

    def test_phrase_vector_unit_norm(self):
        assert np.linalg.norm(phrase_vector("hanging out with")) == \
            pytest.approx(1.0)

    def test_empty_phrase_raises(self):
        with pytest.raises(ValueError):
            phrase_vector("  ")


class TestSimilarityStructure:
    def test_synonyms_are_close(self):
        # §VII: "dog" and "puppy" must be consistent
        assert cosine("dog", "puppy") > 0.6

    def test_unrelated_words_are_far(self):
        assert cosine("dog", "fence") < 0.4

    def test_synonyms_beat_unrelated(self):
        assert cosine("wear", "wearing") > cosine("wear", "jump")

    def test_relation_phrases(self):
        assert cosine("hang out", "hang out with") > 0.6

    def test_self_similarity_is_one(self):
        assert cosine("dog", "dog") == pytest.approx(1.0)


class TestMaxScore:
    def test_picks_most_similar(self):
        best, score = max_score("wearing", ["wearing", "holding", "near"])
        assert best == "wearing"
        assert score == pytest.approx(1.0)

    def test_synonym_match(self):
        best, _ = max_score("wear", ["holding", "wearing", "riding"])
        assert best == "wearing"

    def test_empty_candidates(self):
        best, score = max_score("dog", [])
        assert best is None
        assert score == float("-inf")

    def test_rank_scores_sorted(self):
        ranked = rank_scores("dog", ["puppy", "fence", "dog"])
        assert ranked[0][0] == "dog"
        scores = [s for _, s in ranked]
        assert scores == sorted(scores, reverse=True)


class TestSemanticLexicon:
    def test_are_synonyms(self):
        assert are_synonyms("dog", "puppy")
        assert are_synonyms("dog", "dog")
        assert not are_synonyms("dog", "cat")

    def test_hypernym_chain(self):
        assert hypernym_chain("dog") == ["pet", "animal"]

    def test_hyponyms(self):
        assert set(hyponyms_of("pet")) == {"dog", "cat", "bird"}

    def test_is_kind_of(self):
        assert is_kind_of("dog", "animal")
        assert is_kind_of("robe", "clothes")
        assert not is_kind_of("dog", "vehicle")

    def test_hypernym_chain_of_root(self):
        assert hypernym_chain("animal") == []
