"""Unit tests for the dependency parser."""

import pytest

from repro.errors import ParseError
from repro.nlp import parse


def arcs_by_text(tree):
    """Map dependent text -> (label, head text) for easy assertions."""
    result = {}
    for i, token in enumerate(tree.tokens):
        head = tree.heads[i]
        head_word = "ROOT" if head == -1 else tree.tokens[head].text
        result[token.text] = (tree.labels[i], head_word)
    return result


class TestPassiveWHQuestion:
    QUESTION = (
        "What kind of clothes are worn by the wizard who is most "
        "frequently hanging out with Harry Potter's girlfriend?"
    )

    @pytest.fixture(scope="class")
    def tree(self):
        return parse(self.QUESTION)

    def test_root_is_main_verb(self, tree):
        assert tree.tokens[tree.root].text == "worn"

    def test_passive_subject(self, tree):
        arcs = arcs_by_text(tree)
        assert arcs["kind"] == ("nsubj:pass", "worn")

    def test_of_chain(self, tree):
        arcs = arcs_by_text(tree)
        assert arcs["clothes"] == ("nmod", "kind")
        assert arcs["of"] == ("case", "clothes")

    def test_agent_oblique(self, tree):
        arcs = arcs_by_text(tree)
        assert arcs["wizard"] == ("obl", "worn")
        assert arcs["by"] == ("case", "wizard")

    def test_relative_clause(self, tree):
        # the paper: "the acl edge connects from hanging to wizard"
        arcs = arcs_by_text(tree)
        assert arcs["hanging"] == ("acl:relcl", "wizard")
        assert arcs["who"] == ("nsubj", "hanging")

    def test_constraint_adverbs(self, tree):
        arcs = arcs_by_text(tree)
        assert arcs["most"] == ("advmod", "frequently")
        assert arcs["frequently"] == ("advmod", "hanging")

    def test_particle(self, tree):
        arcs = arcs_by_text(tree)
        assert arcs["out"] == ("compound:prt", "hanging")

    def test_possessive(self, tree):
        arcs = arcs_by_text(tree)
        assert arcs["Potter"] == ("nmod:poss", "girlfriend")
        assert arcs["'s"] == ("case", "Potter")
        assert arcs["Harry"] == ("compound", "Potter")

    def test_possessed_is_oblique_of_relative(self, tree):
        arcs = arcs_by_text(tree)
        assert arcs["girlfriend"] == ("obl", "hanging")


class TestJudgmentQuestion:
    QUESTION = "Does the dog that is holding the frisbee appear in front of the man?"

    @pytest.fixture(scope="class")
    def tree(self):
        return parse(self.QUESTION)

    def test_root(self, tree):
        assert tree.tokens[tree.root].text == "appear"

    def test_do_support(self, tree):
        arcs = arcs_by_text(tree)
        assert arcs["Does"] == ("aux", "appear")

    def test_subject_skips_relative_clause(self, tree):
        arcs = arcs_by_text(tree)
        assert arcs["dog"] == ("nsubj", "appear")

    def test_relative_object(self, tree):
        arcs = arcs_by_text(tree)
        assert arcs["frisbee"] == ("obj", "holding")
        assert arcs["holding"] == ("acl:relcl", "dog")

    def test_multiword_preposition_merged(self, tree):
        arcs = arcs_by_text(tree)
        assert arcs["in front of"] == ("case", "man")
        assert arcs["man"] == ("obl", "appear")


class TestCountingQuestion:
    QUESTION = "How many dogs are standing on the grass that is near the fence?"

    @pytest.fixture(scope="class")
    def tree(self):
        return parse(self.QUESTION)

    def test_root(self, tree):
        assert tree.tokens[tree.root].text == "standing"

    def test_how_many(self, tree):
        arcs = arcs_by_text(tree)
        assert arcs["How"] == ("advmod", "many")
        assert arcs["many"] == ("amod", "dogs")
        assert arcs["dogs"] == ("nsubj", "standing")

    def test_copular_relative(self, tree):
        arcs = arcs_by_text(tree)
        assert arcs["is"] == ("acl:relcl", "grass")
        assert arcs["fence"] == ("obl", "is")


class TestCopularQuestion:
    QUESTION = "Is the animal that is sitting on the sofa a cat?"

    @pytest.fixture(scope="class")
    def tree(self):
        return parse(self.QUESTION)

    def test_root_is_copula(self, tree):
        assert tree.tokens[tree.root].text == "Is"

    def test_subject(self, tree):
        arcs = arcs_by_text(tree)
        assert arcs["animal"] == ("nsubj", "Is")

    def test_attribute(self, tree):
        arcs = arcs_by_text(tree)
        assert arcs["cat"] == ("attr", "Is")

    def test_relative_not_stealing_attr(self, tree):
        arcs = arcs_by_text(tree)
        assert arcs["sofa"] == ("obl", "sitting")


class TestExistentialQuestion:
    QUESTION = "Is there a dog near the fence that is behind the house?"

    @pytest.fixture(scope="class")
    def tree(self):
        return parse(self.QUESTION)

    def test_expletive(self, tree):
        arcs = arcs_by_text(tree)
        assert arcs["there"] == ("expl", "Is")

    def test_subject(self, tree):
        arcs = arcs_by_text(tree)
        assert arcs["dog"] == ("nsubj", "Is")

    def test_nested_relative(self, tree):
        arcs = arcs_by_text(tree)
        assert arcs["house"] == ("obl", "is")


class TestReducedRelative:
    def test_reduced_relative_attaches_acl(self):
        tree = parse("Does the dog sitting on the sofa appear near the man?")
        arcs = arcs_by_text(tree)
        assert arcs["sitting"] == ("acl", "dog")
        assert arcs["dog"] == ("nsubj", "appear")


class TestTreeInvariants:
    QUESTIONS = [
        "What kind of animals is carried by the pets that were situated in the car?",
        "How many kinds of food are eaten by the animals that are standing on the beach?",
        "Does the dog that is holding the frisbee appear in front of the man?",
        "Is the animal that is sitting on the sofa a cat?",
        "Is there a dog near the fence?",
    ]

    @pytest.mark.parametrize("question", QUESTIONS)
    def test_single_root(self, question):
        tree = parse(question)
        assert tree.heads.count(-1) == 1

    @pytest.mark.parametrize("question", QUESTIONS)
    def test_no_cycles(self, question):
        tree = parse(question)
        for start in range(len(tree.tokens)):
            seen = set()
            current = start
            while current != -1:
                assert current not in seen
                seen.add(current)
                current = tree.heads[current]

    @pytest.mark.parametrize("question", QUESTIONS)
    def test_every_token_labeled(self, question):
        tree = parse(question)
        assert all(tree.labels)


class TestHelpers:
    def test_children_filtering(self):
        tree = parse("Does the dog appear near the man?")
        root = tree.root
        assert tree.child(root, "nsubj") is not None
        assert tree.children(root, "nonexistent") == []

    def test_subtree_text(self):
        tree = parse("What kind of clothes are worn by the wizard?")
        kind = next(i for i, t in enumerate(tree.tokens) if t.text == "kind")
        text = tree.text_of_subtree(kind, exclude_labels={"det"})
        assert text == "kind of clothes"

    def test_to_table_renders(self):
        tree = parse("Is there a dog near the fence?")
        assert "ROOT" in tree.to_table()


class TestFailureModes:
    def test_foreign_word_raises(self):
        # Fig. 8(a): "canis" tagged FW breaks the parse
        with pytest.raises(ParseError):
            parse("Does the kind of canis that is sitting on the bed "
                  "appear in front of the vehicle?")

    def test_no_verb_raises(self):
        with pytest.raises(ParseError):
            parse("the red dog")
