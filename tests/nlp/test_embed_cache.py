"""Thread-safety and identity tests for the shared VectorCache.

The old module-level ``_CACHE`` dict was read-then-written from
BatchExecutor worker threads with no lock; :class:`VectorCache` is the
lock-disciplined replacement.  These tests pin the two contracts that
matter: cached vectors are byte-identical to fresh computes, and
concurrent misses on the same keys are clean under the runtime
sanitizer (the ``repro sanitize`` / ``SVQA_SANITIZE=1`` observer).
"""

import threading

import numpy as np
import pytest

from repro import locks
from repro.analysis.concurrency.sanitizer import Sanitizer, SanitizerConfig
from repro.nlp.embeddings import (
    VectorCache,
    _compute_phrase_vector,
    _compute_word_vector,
    phrase_vector,
    word_vector,
)


@pytest.fixture(autouse=True)
def _pristine_observer():
    """Detach any process-global observer; restore it afterwards."""
    previous = locks.current()
    if previous is not None:
        locks.uninstall(previous)
    yield
    leftover = locks.current()
    if leftover is not None:
        locks.uninstall(leftover)
    if previous is not None:
        locks.install(previous)


class TestCachedVsFresh:
    def test_word_vector_matches_uncached_compute(self):
        for word in ("dog", "wearing", "fence", "Neville"):
            np.testing.assert_array_equal(
                word_vector(word), _compute_word_vector(word.lower())
            )

    def test_phrase_vector_matches_uncached_compute(self):
        for phrase in ("standing on", "hanging out with"):
            np.testing.assert_array_equal(
                phrase_vector(phrase), _compute_phrase_vector(phrase)
            )

    def test_repeat_lookups_share_one_canonical_array(self):
        assert word_vector("dog") is word_vector("dog")
        assert phrase_vector("standing on") is \
            phrase_vector("standing on")

    def test_store_keeps_first_writer(self):
        cache = VectorCache()
        first = np.zeros(3)
        second = np.ones(3)
        assert cache.store("word", "x", first) is first
        assert cache.store("word", "x", second) is first
        assert cache.lookup("word", "x") is first

    def test_lookup_miss_is_none(self):
        cache = VectorCache()
        assert cache.lookup("word", "nothing") is None


class TestUnderSanitizer:
    def test_concurrent_misses_are_clean_and_identical(self):
        """Worker threads racing on the same cache keys must produce
        no sanitizer findings and converge on the fresh-compute values
        — the regression test for the unlocked module dict."""
        san = Sanitizer(SanitizerConfig(seed=3))
        locks.install(san)
        try:
            cache = VectorCache()

            def compute(kind, key):
                if kind == "word":
                    return _compute_word_vector(key)
                return _compute_phrase_vector(key)

            keys = [("word", f"racer{i}") for i in range(8)] + \
                [("phrase", f"race phrase {i}") for i in range(8)]
            results = [[] for _ in range(4)]

            def worker(slot):
                for kind, key in keys:
                    cached = cache.lookup(kind, key)
                    if cached is None:
                        cached = cache.store(kind, key,
                                             compute(kind, key))
                    results[slot].append(cached)

            locks.note_fork()
            threads = [threading.Thread(target=worker, args=(slot,))
                       for slot in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            locks.note_join()

            report = san.report()
            assert report.clean, report.render()
            for slot in range(4):
                for (kind, key), got in zip(keys, results[slot]):
                    np.testing.assert_array_equal(got,
                                                  compute(kind, key))
            # all threads converged on one canonical array per key
            for row in zip(*results):
                assert all(arr is row[0] for arr in row)
        finally:
            locks.uninstall(san)

    def test_runtime_installed_observer_sees_the_cache_lock(self):
        """The cache is built at import time; a sanitizer installed
        later must still observe its critical sections (the
        ``_refresh_lock`` re-wrap seam)."""
        san = Sanitizer(SanitizerConfig(seed=4))
        locks.install(san)
        try:
            word_vector("observed-after-install")
            events = [e for e in san.report().order_edges]
            # the lock participated in at least the access log: the
            # race tracker saw the guarded read/write without findings
            assert san.report().clean
            assert events is not None
        finally:
            locks.uninstall(san)
