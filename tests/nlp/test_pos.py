"""Unit tests for the POS tagger."""

from repro.nlp import tag, unknown_word_report


def tags_of(text):
    return [t.tag for t in tag(text)]


class TestClosedClasses:
    def test_determiners(self):
        assert tags_of("the dog")[0] == "DT"

    def test_wh_words(self):
        tagged = tag("What kind of clothes")
        assert tagged[0].tag == "WP"

    def test_how_is_wrb(self):
        assert tags_of("How many dogs")[0] == "WRB"

    def test_prepositions(self):
        tagged = tag("the dog in the car")
        assert tagged[2].tag == "IN"

    def test_possessive_clitic(self):
        tagged = tag("Harry Potter's girlfriend")
        assert [t.tag for t in tagged] == ["NNP", "NNP", "POS", "NN"]


class TestVerbs:
    def test_be_forms(self):
        assert tag("is")[0].tag == "VBZ"
        assert tag("are worn")[0].tag == "VBP"

    def test_be_lemma(self):
        assert tag("are")[0].lemma == "be"

    def test_participles(self):
        tagged = tag("worn by the wizard")
        assert tagged[0].tag == "VBN"
        assert tagged[0].lemma == "wear"

    def test_gerund(self):
        tagged = tag("sitting on the bed")
        assert tagged[0].tag == "VBG"
        assert tagged[0].lemma == "sit"

    def test_third_singular(self):
        tagged = tag("the dog carries a bird")
        assert tagged[2].tag == "VBZ"
        assert tagged[2].lemma == "carry"

    def test_was_held_becomes_vbn(self):
        # 'held' is VBN-preferred; after 'was' it must be VBN
        tagged = tag("the frisbee was held by the dog")
        held = [t for t in tagged if t.text == "held"][0]
        assert held.tag == "VBN"


class TestNouns:
    def test_plural(self):
        tagged = tag("the dogs")
        assert tagged[1].tag == "NNS"
        assert tagged[1].lemma == "dog"

    def test_irregular_plural(self):
        tagged = tag("the men")
        assert tagged[1].tag == "NNS"
        assert tagged[1].lemma == "man"

    def test_proper_noun(self):
        tagged = tag("Harry met the wizard")
        assert tagged[0].tag == "NNP"

    def test_clothes_is_plural_noun(self):
        tagged = tag("the clothes")
        assert tagged[1].tag == "NNS"


class TestContextualRules:
    def test_the_watch_is_noun(self):
        tagged = tag("the watch is red")
        assert tagged[1].tag == "NN"

    def test_that_before_verb_is_relativizer(self):
        tagged = tag("the dog that is sitting")
        that = [t for t in tagged if t.text == "that"][0]
        assert that.tag == "WDT"

    def test_that_as_determiner(self):
        tagged = tag("that dog is sitting")
        assert tagged[0].tag == "DT"


class TestUnknownWords:
    def test_latinate_unknown_is_fw(self):
        # the Fig. 8(a) failure mode: "canis" -> FW
        tagged = tag("the kind of canis that is sitting")
        canis = [t for t in tagged if t.text == "canis"][0]
        assert canis.tag == "FW"

    def test_unknown_word_report(self):
        tagged = tag("the kind of canis")
        assert [t.text for t in unknown_word_report(tagged)] == ["canis"]

    def test_unknown_ing_is_vbg(self):
        tagged = tag("the dog is zooming")
        assert tagged[-1].tag == "VBG"

    def test_unknown_ly_is_rb(self):
        tagged = tag("the dog runs swiftly")
        assert tagged[-1].tag == "RB"

    def test_unknown_plural_is_nns(self):
        tagged = tag("the gizmos")
        assert tagged[1].tag == "NNS"

    def test_unknown_default_nn(self):
        tagged = tag("the blorp")
        assert tagged[1].tag == "NN"

    def test_digits_are_cd(self):
        tagged = tag("more than 3 dogs")
        three = [t for t in tagged if t.text == "3"][0]
        assert three.tag == "CD"


class TestFullQuestions:
    def test_flagship_question_tags(self):
        tagged = tag(
            "What kind of clothes are worn by the wizard who is most "
            "frequently hanging out with Harry Potter's girlfriend?"
        )
        by_text = {t.text: t.tag for t in tagged}
        assert by_text["What"] == "WP"
        assert by_text["worn"] == "VBN"
        assert by_text["who"] == "WP"
        assert by_text["most"] == "RBS"
        assert by_text["frequently"] == "RB"
        assert by_text["hanging"] == "VBG"
        assert by_text["'s"] == "POS"

    def test_every_token_gets_one_tag(self):
        tagged = tag("Does the dog appear in front of the man?")
        assert all(t.tag for t in tagged)
