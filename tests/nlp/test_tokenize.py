"""Unit tests for the tokenizer."""

import pytest

from repro.errors import TokenizationError
from repro.nlp import detokenize, tokenize


class TestTokenize:
    def test_simple_sentence(self):
        assert [t.text for t in tokenize("the dog runs")] == ["the", "dog", "runs"]

    def test_question_mark_detached(self):
        tokens = tokenize("Is this a cat?")
        assert tokens[-1].text == "?"
        assert tokens[-2].text == "cat"

    def test_possessive_clitic_split(self):
        texts = [t.text for t in tokenize("Harry Potter's girlfriend")]
        assert texts == ["Harry", "Potter", "'s", "girlfriend"]

    def test_contraction_split(self):
        texts = [t.text for t in tokenize("doesn't it run?")]
        assert texts == ["does", "n't", "it", "run", "?"]

    def test_contraction_whats(self):
        texts = [t.text for t in tokenize("What's that?")]
        assert texts == ["What", "'s", "that", "?"]

    def test_indices_are_sequential(self):
        tokens = tokenize("a b c d")
        assert [t.index for t in tokens] == [0, 1, 2, 3]

    def test_numbers_kept_whole(self):
        texts = [t.text for t in tokenize("more than 25 dogs")]
        assert "25" in texts

    def test_hyphenated_word_kept(self):
        texts = [t.text for t in tokenize("a well-known wizard")]
        assert "well-known" in texts

    def test_comma_detached(self):
        texts = [t.text for t in tokenize("dogs, cats and birds")]
        assert texts[:2] == ["dogs", ","]

    def test_empty_raises(self):
        with pytest.raises(TokenizationError):
            tokenize("   ")

    def test_non_string_raises(self):
        with pytest.raises(TokenizationError):
            tokenize(None)  # type: ignore[arg-type]

    def test_is_word_and_is_punct(self):
        tokens = tokenize("dog?")
        assert tokens[0].is_word and not tokens[0].is_punct
        assert tokens[1].is_punct and not tokens[1].is_word


class TestDetokenize:
    def test_round_trip_simple(self):
        text = "the dog runs"
        assert detokenize(tokenize(text)) == text

    def test_punctuation_reattaches(self):
        assert detokenize(tokenize("Is this a cat?")) == "Is this a cat?"

    def test_clitic_reattaches(self):
        out = detokenize(tokenize("Harry's owl"))
        assert out == "Harry's owl"
