"""Unit and property tests for Levenshtein distance."""

from hypothesis import given
from hypothesis import strategies as st

from repro.nlp import levenshtein, normalized_levenshtein, within_distance

WORDS = st.text(alphabet="abcdefg", max_size=12)


class TestLevenshtein:
    def test_identity(self):
        assert levenshtein("dog", "dog") == 0

    def test_single_substitution(self):
        assert levenshtein("dog", "dig") == 1

    def test_insertion(self):
        assert levenshtein("dog", "dogs") == 1

    def test_deletion(self):
        assert levenshtein("dogs", "dog") == 1

    def test_empty_vs_word(self):
        assert levenshtein("", "dog") == 3
        assert levenshtein("dog", "") == 3

    def test_both_empty(self):
        assert levenshtein("", "") == 0

    def test_classic_example(self):
        assert levenshtein("kitten", "sitting") == 3


class TestLevenshteinProperties:
    @given(WORDS, WORDS)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(WORDS)
    def test_identity_property(self, a):
        assert levenshtein(a, a) == 0

    @given(WORDS, WORDS)
    def test_bounded_by_longer(self, a, b):
        assert levenshtein(a, b) <= max(len(a), len(b))

    @given(WORDS, WORDS)
    def test_lower_bound_length_difference(self, a, b):
        assert levenshtein(a, b) >= abs(len(a) - len(b))

    @given(WORDS, WORDS, WORDS)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


class TestNormalized:
    def test_identity_zero(self):
        assert normalized_levenshtein("dog", "dog") == 0.0

    def test_in_unit_interval(self):
        value = normalized_levenshtein("dog", "elephant")
        assert 0.0 < value <= 1.0

    @given(WORDS, WORDS)
    def test_always_in_unit_interval(self, a, b):
        value = normalized_levenshtein(a, b)
        assert 0.0 <= value <= 1.0

    @given(WORDS, WORDS)
    def test_symmetry(self, a, b):
        assert normalized_levenshtein(a, b) == normalized_levenshtein(b, a)

    @given(WORDS, WORDS, WORDS)
    def test_triangle_inequality(self, a, b, c):
        # Yujian-Bo normalization preserves the metric property
        ab = normalized_levenshtein(a, b)
        bc = normalized_levenshtein(b, c)
        ac = normalized_levenshtein(a, c)
        assert ac <= ab + bc + 1e-12


class TestWithinDistance:
    def test_near_match(self):
        assert within_distance("dog", "dogs", 0.5)

    def test_case_insensitive(self):
        assert within_distance("Dog", "dog", 0.01)

    def test_far_match_rejected(self):
        assert not within_distance("dog", "elephant", 0.3)
