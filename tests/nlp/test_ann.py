"""Unit and equivalence tests for the EmbeddingANNIndex.

``rank``/``best`` must be extensionally equal to the linear
:func:`repro.nlp.embeddings.rank_scores` / ``max_score`` scans — the
contract the executor's retrieval tier relies on for byte-identical
answers.  The fuzz classes at the bottom mirror
``tests/graph/test_candidates.py``: the MVQA vocabulary and randomly
mutated synthetic graphs.
"""

import random

import pytest

from repro.dataset.mvqa import build_mvqa
from repro.graph import Graph
from repro.nlp.ann import ANN_BANDS, ANN_PLANES, EmbeddingANNIndex
from repro.nlp.embeddings import max_score, rank_scores

PREDICATES = [
    "standing on", "sitting on", "near", "wearing", "holding",
    "carrying", "riding", "watching", "hanging out with", "is a",
    "wears", "held by", "next to", "on", "under",
]


def make_index(*labels):
    index = EmbeddingANNIndex()
    for label in labels:
        index.add_label(label)
    return index


def assert_rank_equivalent(index, queries, candidates):
    """``rank``/``best`` must equal the linear scans outright."""
    for query in queries:
        ranked, _, _ = index.rank(query, candidates)
        assert ranked == rank_scores(query, candidates), query
        best, score, _, _ = index.best(query, candidates)
        assert (best, score) == max_score(query, candidates), query


class TestConstruction:
    def test_uneven_bands_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingANNIndex(planes=10, bands=4)

    def test_default_geometry(self):
        index = EmbeddingANNIndex()
        stats = index.stats()
        assert stats["planes"] == ANN_PLANES
        assert stats["bands"] == ANN_BANDS


class TestExactScoring:
    def test_rank_matches_linear_scan(self):
        index = make_index(*PREDICATES)
        assert_rank_equivalent(index, ["wear", "stand", "sit near"],
                               PREDICATES)

    def test_empty_candidates(self):
        index = make_index("near")
        assert index.best("dog", []) == (None, float("-inf"), 0, 0)
        ranked, fresh, probes = index.rank("dog", [])
        assert ranked == [] and fresh == 0 and probes == 0

    def test_fresh_then_probes(self):
        index = make_index(*PREDICATES)
        _, _, fresh, probes = index.best("wear", PREDICATES)
        assert (fresh, probes) == (len(PREDICATES), 0)
        _, _, fresh, probes = index.best("wear", PREDICATES)
        assert (fresh, probes) == (0, len(PREDICATES))

    def test_memo_is_case_insensitive(self):
        index = make_index("Wearing", "near")
        index.rank("Wear", ["Wearing", "near"])
        _, fresh, probes = index.rank("wear", ["wearing", "NEAR"])
        assert (fresh, probes) == (0, 2)

    def test_duplicate_candidates_charge_like_the_scan(self):
        # the linear scan charges per candidate occurrence, so fresh
        # counts occurrences too (only one float is actually computed)
        index = make_index("near")
        ranked, fresh, probes = index.rank("near",
                                           ["near", "near", "near"])
        assert fresh == 3 and probes == 0
        assert ranked == rank_scores("near", ["near", "near", "near"])
        _, fresh, probes = index.rank("near", ["near", "near"])
        assert fresh == 0 and probes == 2


class TestRefcounting:
    def test_duplicate_labels_survive_one_removal(self):
        index = make_index("near", "near")
        assert index.count("near") == 2
        index.remove_label("near")
        assert "near" in index
        index.remove_label("near")
        assert "near" not in index
        assert len(index) == 0

    def test_remove_unknown_label_raises(self):
        index = make_index("near")
        with pytest.raises(KeyError):
            index.remove_label("far")

    def test_retire_purges_memo_rows(self):
        index = make_index("wearing", "near")
        index.rank("wear", ["wearing", "near"])
        assert index.stats()["memo_entries"] == 2
        index.remove_label("wearing")
        assert index.stats()["memo_entries"] == 1
        index.add_label("wearing")
        # a re-added label recomputes identical floats (scores are
        # pure), so correctness is unaffected by the purge
        assert_rank_equivalent(index, ["wear"], ["wearing", "near"])


class TestNeighbors:
    def test_finds_morphological_variant(self):
        index = make_index(*PREDICATES)
        neighbors = index.neighbors("wears", limit=4)
        assert neighbors, "LSH bands missed every label"
        labels = [label for label, _ in neighbors]
        # the indexed identical spelling ranks first, the
        # morphological variant lands in the same LSH neighborhood
        assert labels[0] == "wears"
        assert "wearing" in labels
        scores = [score for _, score in neighbors]
        assert scores == sorted(scores, reverse=True)

    def test_deterministic_across_instances(self):
        one = make_index(*PREDICATES)
        two = make_index(*PREDICATES)
        for query in ("wears", "held", "standing"):
            assert one.neighbors(query) == two.neighbors(query)

    def test_retired_label_leaves_neighborhoods(self):
        index = make_index(*PREDICATES)
        assert any(label == "wearing"
                   for label, _ in index.neighbors("wears"))
        index.remove_label("wearing")
        assert all(label != "wearing"
                   for label, _ in index.neighbors("wears"))

    def test_limit_truncates(self):
        index = make_index(*PREDICATES)
        assert len(index.neighbors("on", limit=2)) <= 2

    def test_scores_are_exact(self):
        index = make_index(*PREDICATES)
        for label, score in index.neighbors("wears"):
            expected = dict(rank_scores("wears", [label]))
            assert score == expected[label]


class TestGraphMaintenance:
    def test_add_edge_indexes_label(self):
        graph = Graph(name="g")
        a = graph.add_vertex("dog", {})
        b = graph.add_vertex("grass", {})
        graph.add_edge(a.id, b.id, "standing on")
        assert "standing on" in graph.ann_index

    def test_remove_edge_unindexes_last_copy(self):
        graph = Graph(name="g")
        a = graph.add_vertex("dog", {})
        b = graph.add_vertex("grass", {})
        c = graph.add_vertex("cat", {})
        first = graph.add_edge(a.id, b.id, "near")
        graph.add_edge(c.id, b.id, "near")
        graph.remove_edge(first.id)
        assert graph.ann_index.count("near") == 1

    def test_remove_vertex_retires_its_edge_labels(self):
        graph = Graph(name="g")
        a = graph.add_vertex("dog", {})
        b = graph.add_vertex("grass", {})
        graph.add_edge(a.id, b.id, "standing on")
        graph.remove_vertex(a.id)
        assert "standing on" not in graph.ann_index

    def test_index_stays_fresh_across_epochs(self):
        """Epoch-bump staleness regression: the index must track the
        live edge-label multiset through arbitrary mutations."""
        graph = Graph(name="g")
        a = graph.add_vertex("dog", {})
        b = graph.add_vertex("grass", {})
        before = graph.epoch
        edge = graph.add_edge(a.id, b.id, "standing on")
        assert graph.epoch > before
        assert graph.ann_index.labels() == ["standing on"]
        graph.remove_edge(edge.id)
        assert graph.ann_index.labels() == []


FUZZ_LABELS = PREDICATES + [
    "wore", "worn by", "sat on", "stands on", "close to", "beside",
    "behind", "in front of", "part of", "made of", "owns", "owned by",
]
FUZZ_QUERIES = [
    "wear", "wears", "sit", "stand", "near", "hold", "ride", "own",
    "front", "behind", "hang out", "be",
]


class TestScanEquivalence:
    """The ANN tier is extensionally equal to the linear embedding
    scans — the contract the executor relies on."""

    def test_mvqa_vocabulary(self):
        dataset = build_mvqa(seed=7, pool_size=1_200, image_count=400)
        words = sorted({
            word.strip("?,.'\"").lower()
            for question in dataset.questions
            for word in question.text.split()
            if word.strip("?,.'\"")
        })
        assert len(words) > 50
        index = make_index(*FUZZ_LABELS)
        assert_rank_equivalent(index, words, FUZZ_LABELS)

    def test_interleaved_mutations(self):
        rng = random.Random(1234)
        for round_index in range(4):
            graph = Graph(name=f"fuzz-{round_index}")
            hub = graph.add_vertex("hub", {})
            live = []
            for step in range(50):
                op = rng.random()
                if op < 0.6 or not live:
                    spoke = graph.add_vertex("spoke", {})
                    edge = graph.add_edge(hub.id, spoke.id,
                                          rng.choice(FUZZ_LABELS))
                    live.append(edge.id)
                else:
                    graph.remove_edge(
                        live.pop(rng.randrange(len(live)))
                    )
                if step % 10 == 9:
                    labels = graph.ann_index.labels()
                    assert set(labels) == \
                        {e.label for e in graph.edges()}
                    assert len(labels) == len(set(labels))
                    queries = rng.sample(FUZZ_QUERIES, 4)
                    if labels:
                        assert_rank_equivalent(graph.ann_index,
                                               queries, labels)
