"""Unit tests for morphology: lemmas, number, inflection, voice."""

from repro.nlp import (
    gerund,
    normalize_predicate,
    noun_plural,
    noun_singular,
    past_participle,
    present_3sg,
    verb_lemma,
)


class TestVerbLemma:
    def test_irregular_participle(self):
        assert verb_lemma("worn") == "wear"

    def test_irregular_past(self):
        assert verb_lemma("wore") == "wear"

    def test_gerund_form(self):
        assert verb_lemma("hanging") == "hang"

    def test_doubled_consonant(self):
        assert verb_lemma("sitting") == "sit"

    def test_third_singular(self):
        assert verb_lemma("carries") == "carry"

    def test_be_forms(self):
        assert verb_lemma("is") == "be"
        assert verb_lemma("were") == "be"

    def test_unknown_regular_ed(self):
        assert verb_lemma("zoomed") == "zoom"

    def test_unknown_regular_ing(self):
        assert verb_lemma("zooming") == "zoom"

    def test_base_is_identity(self):
        assert verb_lemma("wear") == "wear"


class TestNounNumber:
    def test_singular_regular(self):
        assert noun_singular("dogs") == "dog"

    def test_singular_irregular(self):
        assert noun_singular("men") == "man"
        assert noun_singular("people") == "person"

    def test_singular_es(self):
        assert noun_singular("benches") == "bench"

    def test_singular_ies(self):
        assert noun_singular("puppies") == "puppy"

    def test_singular_of_singular_is_identity(self):
        assert noun_singular("dog") == "dog"

    def test_invariant_plural(self):
        assert noun_singular("sheep") == "sheep"

    def test_plural_regular(self):
        assert noun_plural("dog") == "dogs"

    def test_plural_irregular(self):
        assert noun_plural("man") == "men"

    def test_plural_y(self):
        assert noun_plural("puppy") == "puppies"

    def test_plural_ch(self):
        assert noun_plural("bench") == "benches"


class TestInflection:
    def test_present_3sg(self):
        assert present_3sg("wear") == "wears"
        assert present_3sg("carry") == "carries"
        assert present_3sg("watch") == "watches"

    def test_gerund(self):
        assert gerund("sit") == "sitting"
        assert gerund("ride") == "riding"

    def test_past_participle(self):
        assert past_participle("wear") == "worn"
        assert past_participle("walk") == "walked"


class TestNormalizePredicate:
    def test_passive_to_active(self):
        # §IV-B Example 4: "are worn" -> "wear"
        assert normalize_predicate(["are", "worn"]) == "wear"

    def test_progressive(self):
        assert normalize_predicate(["is", "hanging"]) == "hang"

    def test_phrasal_verb_keeps_particle(self):
        assert normalize_predicate(["is", "hanging", "out", "with"]) == \
            "hang out with"

    def test_bare_copula(self):
        assert normalize_predicate(["is"]) == "be"

    def test_negation_dropped(self):
        assert normalize_predicate(["is", "not", "sitting"]) == "sit"

    def test_do_support_dropped(self):
        assert normalize_predicate(["does", "appear"]) == "appear"

    def test_simple_present_kept(self):
        assert normalize_predicate(["wears"]) == "wear"
