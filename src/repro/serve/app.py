"""The QA service: a stdlib-only WSGI app plus its reference server.

The heavy lifting — scene-graph generation, KG merge, executor and
cache construction — happens **once**, in :func:`build_service`,
before the first request.  Request handling then only parses a
question, passes admission control, rides a micro-batch through the
shared BatchExecutor, and serializes the slot's answer.

Routes:

========  ==========  ==================================================
method    path        body
========  ==========  ==================================================
POST      /ask        :func:`repro.serve.contract.ask_response`
GET       /healthz    :func:`repro.serve.contract.healthz_payload`
GET       /metrics    Prometheus text (``MetricsRegistry.to_prometheus``)
========  ==========  ==================================================

The app is a plain WSGI callable, so tests drive it in-process with
no sockets; ``serve_forever`` wraps it in ``wsgiref`` +
``ThreadingMixIn`` for real deployments and the CI smoke job.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server

from socketserver import ThreadingMixIn

from repro.core.pipeline import SVQA, SVQAConfig
from repro.graph.durable import RecoveryReport
from repro.locks import wrap_lock
from repro.errors import QueryError
from repro.observability.metrics import COUNT_BUCKETS
from repro.resilience import ResilienceConfig
from repro.serve.admission import AdmissionController
from repro.serve.batching import BatchingBridge
from repro.serve.contract import (
    DEADLINE_HEADER,
    ask_response,
    encode_json,
    error_body,
    healthz_payload,
    parse_deadline_ms,
)

_MAX_BODY_BYTES = 64 * 1024
_STATUS_LINES = {
    200: "200 OK",
    400: "400 Bad Request",
    404: "404 Not Found",
    405: "405 Method Not Allowed",
    413: "413 Payload Too Large",
    429: "429 Too Many Requests",
    500: "500 Internal Server Error",
    503: "503 Service Unavailable",
}


@dataclass
class ServeConfig:
    """Every serving knob in one place (CLI flags map 1:1 onto this).

    ``scenario`` picks the corpus built at startup: ``movie`` (the
    flagship five-scene set, fast) or ``mvqa`` (the reduced synthetic
    benchmark).  ``rate``/``burst`` parameterize the per-client token
    bucket in tokens per *simulated* second; ``default_deadline_ms``
    applies when a request carries no ``Deadline-Ms`` header
    (``None`` = unbounded).  ``batch_wait`` is the micro-batching
    coalescing window in wall seconds — 0 serves inline
    (deterministic, the default).
    """

    scenario: str = "movie"
    seed: int = 0
    workers: int = 1
    max_batch: int = 8
    batch_wait: float = 0.0
    rate: float = 10.0
    burst: int = 20
    max_queue: int = 64
    soft_queue: int | None = None
    default_deadline_ms: float | None = None
    chaos: float | None = None
    #: durable-store directory for warm start (``repro serve
    #: --snapshot``); recovery failure degrades to a cold rebuild
    snapshot: str | None = None


def build_svqa(config: ServeConfig) -> SVQA:
    """Construct and build the pipeline for one server process."""
    svqa, _report = build_svqa_with_store(config)
    return svqa


def build_svqa_with_store(
    config: ServeConfig,
) -> tuple[SVQA, RecoveryReport | None]:
    """Construct the pipeline, warm-starting from a snapshot if asked.

    The resilience layer is always on (empty fault specs = production
    guards) so ``/healthz`` can report breaker state and the
    degradation ladder backs every response; ``chaos`` switches on
    uniform fault injection for soak-style runs.

    With ``config.snapshot`` set, the durable store at that directory
    is recovered (snapshot load + WAL replay) and adopted in place of
    the cold vision-pipeline build; an unrecoverable store degrades to
    the cold build, counted on ``svqa_store_rebuilds_total`` and
    surfaced in the returned :class:`~repro.graph.durable.RecoveryReport`.
    Either way, every breaker gauge series is published so cold and
    warm servers expose identical ``/metrics`` families.
    """
    if config.chaos is not None:
        resilience = ResilienceConfig.chaos(config.chaos,
                                            seed=config.seed)
    else:
        resilience = ResilienceConfig(seed=config.seed)
    if config.scenario == "movie":
        from repro.dataset.kg import build_movie_kg
        from repro.dataset.movie import build_movie_scenes
        from repro.vision.detector import DetectorConfig

        movie = build_movie_scenes()
        svqa = SVQA(
            movie.scenes,
            build_movie_kg(),
            SVQAConfig(
                workers=config.workers,
                resilience=resilience,
                detector=DetectorConfig(label_noise=0.0, miss_rate=0.0),
            ),
            annotations=movie.annotations,
        )
    elif config.scenario == "mvqa":
        from repro.dataset.mvqa import build_mvqa

        dataset = build_mvqa(seed=5, pool_size=1_200, image_count=400)
        svqa = SVQA(dataset.scenes, dataset.kg,
                    SVQAConfig(workers=config.workers,
                               resilience=resilience))
    else:
        raise ValueError(
            f"unknown scenario {config.scenario!r} "
            "(expected 'movie' or 'mvqa')"
        )
    report: RecoveryReport | None = None
    if config.snapshot is not None:
        report = _warm_start(svqa, config.snapshot)
    if svqa.merged is None:
        svqa.build()
    if svqa.resilience is not None:
        svqa.resilience.publish_breaker_states()
    return svqa, report


def _warm_start(svqa: SVQA, store_root: str) -> RecoveryReport:
    """Adopt the durable store's recovered graph, or degrade to cold.

    A recovered snapshot must also carry the ``merged_meta`` record
    (the MergedGraph bookkeeping); without it the graph alone cannot
    seed the executor, so the warm start degrades to a rebuild with an
    attributed note.  The caller runs the cold build when
    ``svqa.merged`` is still ``None`` afterwards.
    """
    from repro.core.aggregator import MergedGraph
    from repro.graph.durable import DurableStore
    from repro.observability.spans import maybe_trace

    store = DurableStore(store_root, resilience=svqa.resilience,
                         clock=svqa.clock, tracer=svqa.tracer)
    with maybe_trace(svqa.tracer, "warm-start", svqa.clock):
        result = store.recover()
    report = result.report
    if result.graph is not None:
        if result.merged_meta is None:
            report.source = "rebuild"
            report.notes.append(
                "snapshot carries no merged_meta record; cannot seed "
                "the executor — rebuilding")
        else:
            try:
                merged = MergedGraph.from_snapshot(
                    result.graph, result.merged_meta)
            except (KeyError, TypeError, ValueError) as exc:
                report.source = "rebuild"
                report.notes.append(
                    "merged_meta record is malformed "
                    f"({type(exc).__name__}); rebuilding")
            else:
                svqa.adopt_merged(merged)
    if report.source == "rebuild":
        svqa.stats.record_store_rebuild()
    return report


class QAService:
    """The WSGI application: routing, admission, and serialization.

    One instance owns the built pipeline, the admission controller,
    and the batching bridge for the whole process lifetime.
    """

    def __init__(
        self,
        svqa: SVQA,
        config: ServeConfig | None = None,
        store_report: RecoveryReport | None = None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.svqa = svqa
        self.store_report = store_report
        self.admission = AdmissionController(
            clock=lambda: svqa.clock.elapsed,
            rate=self.config.rate,
            burst=self.config.burst,
            max_queue=self.config.max_queue,
            soft_queue=self.config.soft_queue,
            seed=self.config.seed,
        )
        self.bridge = BatchingBridge(
            svqa,
            max_batch=self.config.max_batch,
            max_wait=self.config.batch_wait,
            workers=self.config.workers,
            on_batch=self._record_batch,
        )
        self._lock = wrap_lock(threading.Lock(), "serve.app")
        self._requests_total = 0
        registry = svqa.metrics
        self._http_requests = registry.counter(
            "svqa_http_requests_total",
            "HTTP requests served, by route and status code.",
            labels=("route", "code"),
        )
        self._admission_outcomes = registry.counter(
            "svqa_admission_total",
            "Admission decisions, by outcome.",
            labels=("outcome",),
        )
        self._batch_sizes = registry.histogram(
            "svqa_serve_batch_size",
            "Executed micro-batch sizes.",
            buckets=COUNT_BUCKETS,
        )

    def _record_batch(self, size: int) -> None:
        self._batch_sizes.observe(float(size))

    # -- request handling -------------------------------------------------

    def __call__(
        self,
        environ: dict[str, object],
        start_response: Callable[..., object],
    ) -> Iterable[bytes]:
        """WSGI entry point: route, handle, and meter one request."""
        method = str(environ.get("REQUEST_METHOD", "GET")).upper()
        path = str(environ.get("PATH_INFO", "/"))
        route = path if path in ("/ask", "/healthz", "/metrics") \
            else "unknown"
        try:
            status, headers, body = self._dispatch(method, path, environ)
        except Exception as exc:  # noqa: BLE001 - edge of the service
            status = 500
            headers = [("Content-Type", "application/json")]
            body = encode_json(error_body(
                500, "internal-error", f"{type(exc).__name__}: {exc}"))
        with self._lock:
            self._requests_total += 1
        self._http_requests.inc(route=route, code=str(status))
        headers = [*headers, ("Content-Length", str(len(body)))]
        start_response(_STATUS_LINES[status], headers)
        return [body]

    def _dispatch(
        self, method: str, path: str, environ: dict[str, object]
    ) -> tuple[int, list[tuple[str, str]], bytes]:
        if path == "/ask":
            if method != "POST":
                return self._json(405, error_body(
                    405, "method-not-allowed", "POST /ask"))
            return self._handle_ask(environ)
        if path == "/healthz":
            if method != "GET":
                return self._json(405, error_body(
                    405, "method-not-allowed", "GET /healthz"))
            return self._json(200, self.healthz())
        if path == "/metrics":
            if method != "GET":
                return self._json(405, error_body(
                    405, "method-not-allowed", "GET /metrics"))
            text = self.svqa.metrics_exposition().encode("utf-8")
            return (
                200,
                [("Content-Type",
                  "text/plain; version=0.0.4; charset=utf-8")],
                text,
            )
        return self._json(404, error_body(404, "not-found", path))

    @staticmethod
    def _json(
        status: int, payload: dict[str, object]
    ) -> tuple[int, list[tuple[str, str]], bytes]:
        return (status, [("Content-Type", "application/json")],
                encode_json(payload))

    def _read_body(self, environ: dict[str, object]) -> bytes:
        try:
            length = int(str(environ.get("CONTENT_LENGTH") or 0))
        except ValueError:
            length = 0
        if length <= 0:
            return b""
        if length > _MAX_BODY_BYTES:
            raise _RequestTooLarge(length)
        stream = environ.get("wsgi.input")
        if stream is None:
            return b""
        return stream.read(length)  # type: ignore[attr-defined]

    def _handle_ask(
        self, environ: dict[str, object]
    ) -> tuple[int, list[tuple[str, str]], bytes]:
        import json as _json

        try:
            raw = self._read_body(environ)
        except _RequestTooLarge as exc:
            return self._json(413, error_body(
                413, "payload-too-large",
                f"body of {exc.length} bytes exceeds "
                f"{_MAX_BODY_BYTES}"))
        try:
            payload = _json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, _json.JSONDecodeError) as exc:
            return self._json(400, error_body(
                400, "bad-json", str(exc)))
        if not isinstance(payload, dict) or \
                not isinstance(payload.get("question"), str) or \
                not payload["question"].strip():
            return self._json(400, error_body(
                400, "bad-request",
                'body must be {"question": "<non-empty string>"}'))
        question = payload["question"]
        client = str(
            environ.get("HTTP_X_CLIENT_ID")
            or payload.get("client")
            or "anonymous"
        )
        raw_deadline = environ.get("HTTP_DEADLINE_MS")
        try:
            deadline_s = parse_deadline_ms(
                None if raw_deadline is None else str(raw_deadline))
        except ValueError as exc:
            return self._json(400, error_body(400, "bad-deadline",
                                              str(exc)))
        if deadline_s is None and \
                self.config.default_deadline_ms is not None:
            deadline_s = self.config.default_deadline_ms / 1000.0
        decision = self.admission.admit(client)
        self._admission_outcomes.inc(outcome=decision.reason)
        if not decision.admitted:
            status, headers, body = self._json(
                decision.status,
                error_body(decision.status, decision.reason,
                           f"client {client!r} refused admission",
                           retry_after_s=decision.retry_after_s),
            )
            if decision.retry_after_s is not None:
                headers = [*headers,
                           ("Retry-After", f"{decision.retry_after_s}")]
            return status, headers, body
        try:
            answer = self.bridge.submit(question, deadline_s)
        except QueryError as exc:
            # only reachable with degrade_parse off; the production
            # config degrades to an attributed "unknown" instead
            return self._json(400, error_body(400, "unanswerable",
                                              str(exc)))
        finally:
            self.admission.release()
        return self._json(200, ask_response(answer, deadline_s))

    # -- health -----------------------------------------------------------

    def healthz(self) -> dict[str, object]:
        """Live service health (read fresh on every call)."""
        manager = self.svqa.resilience
        breakers = manager.breaker_states() if manager is not None \
            else {}
        merged = getattr(self.svqa, "merged", None)
        with self._lock:
            requests_total = self._requests_total
        return healthz_payload(
            breakers=breakers,
            index_ready=merged is not None,
            graph_epoch=merged.graph.epoch if merged is not None else 0,
            graph_vertices=merged.graph.vertex_count
            if merged is not None else 0,
            in_flight=self.admission.in_flight,
            queued=self.bridge.pending_count(),
            requests_total=requests_total,
            store=self.store_report.healthz()
            if self.store_report is not None else None,
        )

    def close(self) -> None:
        """Stop the batching collector (idempotent)."""
        self.bridge.close()


class _RequestTooLarge(Exception):
    def __init__(self, length: int) -> None:
        super().__init__(f"request body too large: {length}")
        self.length = length


def build_service(config: ServeConfig | None = None) -> QAService:
    """Build the pipeline once and wrap it in a ready service."""
    config = config if config is not None else ServeConfig()
    svqa, report = build_svqa_with_store(config)
    return QAService(svqa, config, store_report=report)


class _ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
    """One thread per connection; daemonic so shutdown never hangs."""

    daemon_threads = True


class _QuietHandler(WSGIRequestHandler):
    """Suppress per-request stderr lines (metrics cover visibility)."""

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Drop the default per-request access-log line."""


def make_qa_server(
    service: QAService, host: str = "127.0.0.1", port: int = 0
):
    """Bind the reference server (port 0 = ephemeral, for tests/CI)."""
    return make_server(host, port, service,
                       server_class=_ThreadingWSGIServer,
                       handler_class=_QuietHandler)


__all__ = [
    "DEADLINE_HEADER",
    "QAService",
    "ServeConfig",
    "build_service",
    "build_svqa",
    "build_svqa_with_store",
    "make_qa_server",
]
