"""The wire contract of the QA service.

Every byte the service emits is built here, from plain data, with
deterministic JSON encoding (sorted keys, compact separators) — two
same-seed request sequences against fresh servers must produce
byte-identical payloads, so nothing in a response may depend on wall
time, dict insertion order, or object identity.

Shapes:

* ``POST /ask`` success — :meth:`repro.core.answer.Answer.to_dict`
  (``{"answer", "question_type", "sources", "meta"}``) with the
  request's effective simulated-seconds deadline echoed into
  ``meta.deadline_s``;
* any refusal or failure —
  ``{"error": {"status", "reason", "detail", "retry_after_s"}}``;
* ``GET /healthz`` — service status, per-stage circuit-breaker state
  map, index readiness, and admission gauges.
"""

from __future__ import annotations

import json

from repro.core.answer import Answer

#: request header carrying the per-request deadline in *simulated*
#: milliseconds (WSGI environ key: ``HTTP_DEADLINE_MS``)
DEADLINE_HEADER = "Deadline-Ms"


def encode_json(payload: dict[str, object]) -> bytes:
    """The one JSON encoding of the service: deterministic bytes."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8") + b"\n"


def parse_deadline_ms(raw: str | None) -> float | None:
    """``Deadline-Ms`` header value -> simulated seconds (or None).

    The header is expressed in simulated milliseconds because the
    pipeline's latencies are simulated; raises :class:`ValueError` on
    non-numeric or non-positive values so the app can answer 400.
    """
    if raw is None or not raw.strip():
        return None
    try:
        millis = float(raw)
    except ValueError:
        raise ValueError(
            f"{DEADLINE_HEADER} must be a number, got {raw!r}"
        ) from None
    if millis <= 0:
        raise ValueError(
            f"{DEADLINE_HEADER} must be > 0, got {raw!r}"
        )
    return millis / 1000.0


def ask_response(answer: Answer,
                 deadline_s: float | None) -> dict[str, object]:
    """The ``POST /ask`` success body for one answered question."""
    payload = answer.to_dict()
    meta = payload["meta"]
    assert isinstance(meta, dict)
    meta["deadline_s"] = None if deadline_s is None \
        else round(deadline_s, 9)
    return payload


def error_body(
    status: int,
    reason: str,
    detail: str = "",
    retry_after_s: float | None = None,
) -> dict[str, object]:
    """The structured refusal/failure body (429/503/4xx/5xx alike)."""
    return {
        "error": {
            "status": status,
            "reason": reason,
            "detail": detail,
            "retry_after_s": retry_after_s,
        }
    }


def healthz_payload(
    breakers: dict[str, str],
    index_ready: bool,
    graph_epoch: int,
    graph_vertices: int,
    in_flight: int,
    queued: int,
    requests_total: int,
    store: dict[str, object] | None = None,
) -> dict[str, object]:
    """The ``GET /healthz`` body.

    ``status`` is ``"ok"`` unless any circuit breaker has left the
    ``closed`` state or the index is not ready — a tripped breaker
    shows up here on the very next request, because the map is read
    live from the ResilienceManager rather than cached.

    ``store`` is the durable-store provenance block
    (``{"source": "snapshot"|"rebuild", "epoch",
    "wal_records_replayed"}``, see
    :meth:`repro.graph.durable.RecoveryReport.healthz`); a server
    built cold without a store reports the plain-rebuild default.
    """
    degraded = any(state != "closed" for state in breakers.values())
    status = "ok" if index_ready and not degraded else "degraded"
    if store is None:
        store = {"source": "rebuild", "epoch": 0,
                 "wal_records_replayed": 0}
    return {
        "status": status,
        "index": {
            "ready": index_ready,
            "graph_epoch": graph_epoch,
            "graph_vertices": graph_vertices,
        },
        "breakers": dict(sorted(breakers.items())),
        "admission": {
            "in_flight": in_flight,
            "queued": queued,
            "requests_total": requests_total,
        },
        "store": dict(store),
    }


__all__ = [
    "DEADLINE_HEADER",
    "ask_response",
    "encode_json",
    "error_body",
    "healthz_payload",
    "parse_deadline_ms",
]
