"""Admission control: per-client rate limiting + queue-depth shedding.

The serving layer refuses work it cannot absorb *before* the work
starts, with structured, attributable errors:

* **token bucket per client** — each client id owns a bucket of
  ``burst`` tokens refilled at ``rate`` tokens per *simulated* second
  (the service clock is the SVQA system's
  :class:`~repro.simtime.SimClock`, so admission behaviour is a pure
  function of the request sequence and replays byte-identically);
  an empty bucket answers **429** with a ``retry_after_s`` hint;
* **load shedder** — above ``max_queue`` requests in flight the
  service answers **503** unconditionally; between ``soft_queue`` and
  ``max_queue`` it sheds *probabilistically*, with the probability
  rising linearly toward 1.0.  The coin flip is a blake2b hash of
  ``(seed, client, sequence)`` — the same discipline as the fault
  injector — so shed-vs-served decisions are deterministic per seed
  and reproducible across replays and thread interleavings.

Every decision is an :class:`AdmissionDecision` carrying the HTTP
status, machine-readable reason, and retry hint the contract layer
serializes into the error body.
"""

from __future__ import annotations

import hashlib
import threading
from collections.abc import Callable
from dataclasses import dataclass

from repro.locks import wrap_lock


def _unit_hash(seed: int, client: str, sequence: int) -> float:
    """Deterministic uniform value in ``[0, 1)`` for one decision."""
    payload = f"{seed}|{client}|{sequence}|shed".encode()
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


@dataclass(frozen=True)
class AdmissionDecision:
    """One admit-or-refuse verdict, ready for serialization.

    ``reason`` is the machine-readable outcome (``admitted``,
    ``rate-limited``, ``shed``, ``overloaded``); ``retry_after_s`` is
    the simulated seconds until the client's bucket accrues a token
    (rate-limit refusals only).
    """

    admitted: bool
    reason: str
    status: int
    retry_after_s: float | None = None


class TokenBucket:
    """A single client's bucket: ``burst`` capacity, ``rate``/sim-s.

    Not thread-safe on its own — the owning
    :class:`AdmissionController` serializes access under its lock.
    """

    __slots__ = ("rate", "burst", "tokens", "updated_at")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated_at = now

    def _refill(self, now: float) -> None:
        if now > self.updated_at:
            self.tokens = min(
                self.burst,
                self.tokens + (now - self.updated_at) * self.rate,
            )
            self.updated_at = now

    def try_take(self, now: float) -> tuple[bool, float]:
        """``(granted, retry_after_s)`` for one request at ``now``."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self.tokens) / self.rate


class AdmissionController:
    """Thread-safe admission state shared by every request thread.

    ``clock`` is a zero-arg callable returning the current simulated
    time (the serving layer passes ``lambda: svqa.clock.elapsed``);
    because simulated time only advances when queries do work, two
    identical request sequences against fresh servers see identical
    bucket levels, depths, and hash coins — decision sequences are
    byte-identical per seed.

    Callers must pair every admitted request with exactly one
    :meth:`release` (the request's ``finally`` block).
    """

    def __init__(
        self,
        clock: Callable[[], float],
        rate: float = 10.0,
        burst: int = 20,
        max_queue: int = 64,
        soft_queue: int | None = None,
        seed: int = 0,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        soft = max_queue * 3 // 4 if soft_queue is None else soft_queue
        if not 0 <= soft <= max_queue:
            raise ValueError(
                f"soft_queue must be in [0, max_queue], got {soft}"
            )
        self.clock = clock
        self.rate = rate
        self.burst = burst
        self.max_queue = max_queue
        self.soft_queue = soft
        self.seed = seed
        self._lock = wrap_lock(threading.Lock(), "serve.admission")
        self._buckets: dict[str, TokenBucket] = {}
        self._sequences: dict[str, int] = {}
        self._in_flight = 0

    @property
    def in_flight(self) -> int:
        """Requests admitted and not yet released."""
        with self._lock:
            return self._in_flight

    def _shed_probability(self, depth: int) -> float:
        """Linear ramp from 0 at ``soft_queue`` to 1 at ``max_queue``."""
        if depth < self.soft_queue:
            return 0.0
        if depth >= self.max_queue:
            return 1.0
        span = self.max_queue - self.soft_queue
        return (depth - self.soft_queue + 1) / (span + 1)

    def admit(self, client: str) -> AdmissionDecision:
        """Decide one request; pairs with :meth:`release` if admitted.

        Decision order matters and is part of the contract: the hard
        queue bound is checked first (503), then the probabilistic
        shed band (503), then the client's token bucket (429) — a
        shed request must not consume a token the client could have
        spent once the queue drains.
        """
        now = self.clock()
        with self._lock:
            sequence = self._sequences.get(client, 0)
            self._sequences[client] = sequence + 1
            depth = self._in_flight
            if depth >= self.max_queue:
                return AdmissionDecision(False, "overloaded", 503)
            probability = self._shed_probability(depth)
            if probability > 0.0 and \
                    _unit_hash(self.seed, client, sequence) < probability:
                return AdmissionDecision(False, "shed", 503)
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, now)
                self._buckets[client] = bucket
            granted, retry_after = bucket.try_take(now)
            if not granted:
                return AdmissionDecision(
                    False, "rate-limited", 429,
                    retry_after_s=round(retry_after, 9),
                )
            self._in_flight += 1
            return AdmissionDecision(True, "admitted", 200)

    def release(self) -> None:
        """One admitted request finished (success or failure)."""
        with self._lock:
            if self._in_flight <= 0:
                raise RuntimeError(
                    "release() without a matching admitted request"
                )
            self._in_flight -= 1


__all__ = ["AdmissionController", "AdmissionDecision", "TokenBucket"]
