"""The serving layer: a long-lived QA server over the SVQA pipeline.

Built once at startup, then stateless per request (DESIGN.md §5g):

* :mod:`repro.serve.app` — the WSGI application, scenario builders,
  and the threaded reference server behind ``repro serve``;
* :mod:`repro.serve.admission` — deterministic token-bucket rate
  limiting and queue-depth load shedding;
* :mod:`repro.serve.batching` — the micro-batching bridge from
  request threads into the shared
  :class:`~repro.core.batch.BatchExecutor`;
* :mod:`repro.serve.contract` — every wire shape the service emits,
  with deterministic JSON encoding.

Stdlib only: ``wsgiref`` + ``socketserver``; no new dependencies.
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionDecision,
    TokenBucket,
)
from repro.serve.app import (
    QAService,
    ServeConfig,
    build_service,
    build_svqa,
    make_qa_server,
)
from repro.serve.batching import BatchingBridge
from repro.serve.contract import (
    DEADLINE_HEADER,
    ask_response,
    encode_json,
    error_body,
    healthz_payload,
    parse_deadline_ms,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "BatchingBridge",
    "DEADLINE_HEADER",
    "QAService",
    "ServeConfig",
    "TokenBucket",
    "ask_response",
    "build_service",
    "build_svqa",
    "encode_json",
    "error_body",
    "healthz_payload",
    "make_qa_server",
    "parse_deadline_ms",
]
