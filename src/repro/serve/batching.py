"""Micro-batching bridge from request threads to the BatchExecutor.

HTTP requests arrive one at a time on independent handler threads;
the SVQA pipeline is at its best answering *batches* (shared worker
pool, per-worker clock shards, slot-aligned results).  The bridge sits
between the two: request threads :meth:`BatchingBridge.submit` their
question and block; a single collector thread coalesces everything
that arrived within a short window (bounded by ``max_batch``) into one
:meth:`repro.core.pipeline.SVQA.answer_many` call and hands each
thread back exactly the answer in its slot.

Slot alignment is inherited from the BatchExecutor contract (PR 3):
a request that is deadline-killed or crashes mid-batch still yields a
fallback answer *in its own slot*, so neighbours in the same batch can
never receive each other's answers.

With ``max_wait == 0`` the bridge runs **inline**: submit executes a
one-question batch synchronously under a serialization lock.  That
mode is fully deterministic (no coalescing races) and is the default
for tests and for replay-style serving.
"""

from __future__ import annotations

import threading
from collections.abc import Callable

from repro.core.answer import Answer
from repro.core.pipeline import SVQA
from repro.locks import note_read, note_write, wrap_lock


class _PendingRequest:
    """One blocked submitter: its question, deadline, and result slot."""

    __slots__ = ("question", "deadline", "done", "answer", "error")

    def __init__(self, question: str, deadline: float | None) -> None:
        self.question = question
        self.deadline = deadline
        self.done = threading.Event()
        self.answer: Answer | None = None
        self.error: Exception | None = None


class BatchingBridge:
    """Coalesce concurrent requests into ``answer_many`` batches.

    ``on_batch`` (optional) is called with each executed batch size —
    the serving layer points it at a histogram metric.
    """

    def __init__(
        self,
        svqa: SVQA,
        max_batch: int = 8,
        max_wait: float = 0.0,
        workers: int | None = None,
        on_batch: Callable[[int], None] | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        self.svqa = svqa
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.workers = workers
        self.on_batch = on_batch
        self._lock = wrap_lock(threading.Lock(), "serve.bridge")
        self._cond = threading.Condition(self._lock)
        self._pending: list[_PendingRequest] = []
        self._closed = False
        self._collector: threading.Thread | None = None
        if max_wait > 0:
            self._collector = threading.Thread(
                target=self._collect_loop,
                name="repro-serve-batcher",
                daemon=True,
            )
            self._collector.start()

    @property
    def inline(self) -> bool:
        """True when submit executes synchronously (``max_wait == 0``)."""
        return self._collector is None

    def pending_count(self) -> int:
        """Requests queued for the collector, not yet executing."""
        with self._lock:
            note_read("bridge.pending")
            return len(self._pending)

    def submit(self, question: str,
               deadline: float | None = None) -> Answer:
        """Answer one question, riding whatever batch forms around it.

        Blocks the calling thread until its slot's answer is ready;
        re-raises in the caller if the whole batch failed.
        """
        if self.inline:
            # Serialize under the bridge lock: answer_many merges
            # shard clocks back into the shared SimClock and is not
            # reentrant across threads.
            with self._lock:
                if self._closed:
                    raise RuntimeError("bridge is closed")
                answers = self.svqa.answer_many(
                    [question],
                    workers=self.workers,
                    deadlines=[deadline],
                )
            self._record_batch(1)
            return answers[0]
        request = _PendingRequest(question, deadline)
        with self._cond:
            if self._closed:
                raise RuntimeError("bridge is closed")
            note_write("bridge.pending")
            self._pending.append(request)
            self._cond.notify()
        request.done.wait()
        if request.error is not None:
            raise request.error  # the whole batch failed; rethrow here
        assert request.answer is not None
        return request.answer

    def _record_batch(self, size: int) -> None:
        if self.on_batch is not None:
            self.on_batch(size)

    def _collect_loop(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if self._closed and not self._pending:
                    return
                if len(self._pending) < self.max_batch \
                        and not self._closed:
                    # one coalescing window: let stragglers join the
                    # batch that the first arrival opened
                    self._cond.wait(timeout=self.max_wait)
                note_write("bridge.pending")
                batch = self._pending[: self.max_batch]
                del self._pending[: self.max_batch]
            if batch:
                self._run_batch(batch)

    def _run_batch(self, batch: list[_PendingRequest]) -> None:
        try:
            answers = self.svqa.answer_many(
                [request.question for request in batch],
                workers=self.workers,
                deadlines=[request.deadline for request in batch],
            )
        except Exception as exc:  # noqa: BLE001 - handed to callers
            for request in batch:
                request.error = exc
                request.done.set()
            return
        self._record_batch(len(batch))
        for request, answer in zip(batch, answers, strict=True):
            request.answer = answer
            request.done.set()

    def close(self) -> None:
        """Stop accepting work; the collector drains what's queued."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if self._collector is not None:
            self._collector.join(timeout=5.0)


__all__ = ["BatchingBridge"]
