"""Deterministic, seeded fault injection at named pipeline sites.

Chaos testing needs faults that are (a) *attributable* — every fault
names the stage it hit — and (b) *reproducible* — two runs with the
same seed inject exactly the same faults.  The injector therefore
derives every decision from a stable hash of ``(seed, site, key)``
rather than from a stateful RNG: thread interleaving cannot perturb
which calls fault, and raising the fault rate strictly grows the
faulted-key set (the decay curves of ``repro chaos`` are monotone by
construction).

Fault *sites* are a closed registry (:data:`FAULT_SITES`); the
RP006 lint rule rejects guard calls against unregistered site names,
so every injection point in the codebase is discoverable from one
table.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import InjectedFaultError
from repro.simtime import SimClock

#: The closed fault-site registry: every site the resilience layer can
#: inject faults at, with the pipeline stage it guards.  Guard calls
#: (``ResilienceManager.call`` / ``FaultInjector.check``) must name a
#: registered site — enforced by lint rule RP006.
FAULT_SITES: dict[str, str] = {
    "parse.question": "question -> query-graph decomposition (Algorithm 2)",
    "detector.detect": "per-image object detection in SGGPipeline.run",
    "relation.predict": "per-image relation prediction in SGGPipeline.run",
    "aggregator.merge": "attaching one scene graph in DataAggregator.merge",
    "cache.scope": "scope-store lookup in the key-centric cache",
    "cache.path": "path-store lookup in the key-centric cache",
    "executor.match": "matchVertex slot resolution in QueryGraphExecutor",
    "store.snapshot": "writing one durable-store snapshot of G_mg",
    "store.wal_append": "appending one mutation to the write-ahead log",
    "store.recover": "snapshot load + WAL replay in DurableStore.recover",
}


@dataclass(frozen=True)
class FaultSpec:
    """How one site misbehaves.

    ``rate`` is the probability that a given ``(site, key)`` faults at
    all; of the faulted keys, ``persistent_fraction`` never recover
    (every attempt fails) while the rest are *transient* and clear
    after ``fail_times`` failed attempts — the shape retry policies are
    built for.  ``latency`` is charged to the :class:`SimClock` per
    fired fault, modelling the time a real failed call burns before
    erroring.
    """

    rate: float = 0.0
    persistent_fraction: float = 0.0
    latency: float = 0.0
    fail_times: int = 1

    def __post_init__(self) -> None:
        """Validate rates and fractions fall in their legal ranges."""
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if not 0.0 <= self.persistent_fraction <= 1.0:
            raise ValueError(
                "persistent_fraction must be in [0, 1], "
                f"got {self.persistent_fraction}"
            )
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.fail_times < 1:
            raise ValueError(
                f"fail_times must be >= 1, got {self.fail_times}"
            )


def _roll(seed: int, site: str, key: str, salt: str) -> float:
    """A uniform [0, 1) value fully determined by its inputs."""
    payload = f"{seed}|{site}|{key}|{salt}".encode()
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


class FaultInjector:
    """Injects faults at registered sites, deterministically.

    The injector is *stateless*: whether attempt ``n`` on
    ``(site, key)`` faults is a pure function of the seed, so the
    injector is trivially thread-safe and identical across runs.
    """

    def __init__(
        self,
        seed: int = 0,
        specs: dict[str, FaultSpec] | None = None,
    ) -> None:
        specs = specs or {}
        for site in specs:
            if site not in FAULT_SITES:
                raise ValueError(
                    f"unregistered fault site: {site!r} "
                    f"(expected one of {sorted(FAULT_SITES)})"
                )
        self.seed = seed
        self.specs = dict(specs)

    @classmethod
    def uniform(
        cls,
        rate: float,
        seed: int = 0,
        persistent_fraction: float = 0.25,
        latency: float = 0.02,
        fail_times: int = 1,
    ) -> FaultInjector:
        """One spec with the given rate at every registered site."""
        spec = FaultSpec(rate=rate, persistent_fraction=persistent_fraction,
                         latency=latency, fail_times=fail_times)
        return cls(seed=seed, specs=dict.fromkeys(FAULT_SITES, spec))

    def spec_for(self, site: str) -> FaultSpec | None:
        """The fault spec registered for ``site``, if any."""
        if site not in FAULT_SITES:
            raise ValueError(f"unregistered fault site: {site!r}")
        return self.specs.get(site)

    def would_fault(self, site: str, key: object, attempt: int = 0) -> bool:
        """Whether attempt number ``attempt`` on ``(site, key)`` faults."""
        spec = self.spec_for(site)
        if spec is None or spec.rate <= 0.0:
            return False
        key_text = str(key)
        if _roll(self.seed, site, key_text, "fault") >= spec.rate:
            return False
        if _roll(self.seed, site, key_text, "persist") \
                < spec.persistent_fraction:
            return True  # persistent: every attempt fails
        return attempt < spec.fail_times

    def check(
        self,
        site: str,
        key: object,
        attempt: int = 0,
        clock: SimClock | None = None,
    ) -> None:
        """Raise :class:`~repro.errors.InjectedFaultError` if this
        attempt faults, charging the fault's latency on ``clock``."""
        if not self.would_fault(site, key, attempt):
            return
        spec = self.specs[site]
        if clock is not None and spec.latency > 0:
            clock.charge_amount("fault_delay", spec.latency)
        raise InjectedFaultError(
            f"injected fault at {site} (key={key!r}, attempt {attempt})",
            site=site,
            attempts=attempt + 1,
        )


__all__ = ["FAULT_SITES", "FaultInjector", "FaultSpec"]
