"""Retry policies and per-query deadline budgets, in simulated time.

Both primitives charge the :class:`~repro.simtime.SimClock` rather
than sleeping: a backoff is simulated seconds added to the lane that
retried, and a deadline is a budget of simulated seconds per query —
so retry/deadline behaviour is deterministic and shows up in exactly
the latency figures the benchmarks already report.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import DeadlineExceededError
from repro.simtime import SimClock


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with exponential backoff + deterministic jitter.

    ``backoff(attempt)`` for attempt ``n`` (0-based) is
    ``base * multiplier**n``, jittered by up to ``+-jitter`` (a
    fraction) using a hash of ``(site, key, attempt)`` — the same
    inputs always produce the same delay, so retries are reproducible
    while still de-synchronised across keys.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05     # simulated seconds before attempt 1
    backoff_multiplier: float = 2.0
    jitter: float = 0.1            # fraction of the delay, +-

    def __post_init__(self) -> None:
        """Validate the retry policy's numeric parameters."""
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0:
            raise ValueError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                "backoff_multiplier must be >= 1, "
                f"got {self.backoff_multiplier}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff(self, attempt: int, site: str = "", key: str = "") -> float:
        """Simulated seconds to wait before retrying after ``attempt``."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        delay = self.backoff_base * self.backoff_multiplier ** attempt
        if self.jitter <= 0 or delay <= 0:
            return delay
        payload = f"{site}|{key}|{attempt}|backoff".encode()
        digest = hashlib.blake2b(payload, digest_size=8).digest()
        unit = int.from_bytes(digest, "big") / 2.0 ** 64
        return delay * (1.0 + self.jitter * (2.0 * unit - 1.0))


@dataclass
class DeadlineBudget:
    """A per-query budget of simulated seconds on one clock.

    Created at query start (:meth:`start`); ``exceeded`` flips once
    the clock has charged more than ``limit`` seconds since then.  The
    executor polls ``exceeded`` between query-graph vertices and cuts
    execution off with the best partial answer; :meth:`check` is the
    raising variant for callers that prefer an exception.
    """

    clock: SimClock
    limit: float
    started_at: float

    @classmethod
    def start(cls, clock: SimClock, limit: float) -> DeadlineBudget:
        """Open a budget of ``limit`` sim-seconds starting now."""
        if limit <= 0:
            raise ValueError(f"deadline limit must be > 0, got {limit}")
        return cls(clock=clock, limit=limit, started_at=clock.elapsed)

    @property
    def consumed(self) -> float:
        """Simulated seconds charged since the budget started."""
        return self.clock.elapsed - self.started_at

    @property
    def remaining(self) -> float:
        """Simulated seconds left before the budget is exceeded."""
        return self.limit - self.consumed

    @property
    def exceeded(self) -> bool:
        """Whether the budget has been overspent."""
        return self.consumed > self.limit

    def check(self, site: str = "query") -> None:
        """Raise :class:`~repro.errors.DeadlineExceededError` once the
        budget is exhausted."""
        if self.exceeded:
            raise DeadlineExceededError(
                f"deadline of {self.limit:.3f} simulated seconds exceeded "
                f"at {site} ({self.consumed:.3f}s consumed)",
                site=site,
                elapsed_budget=self.consumed,
            )


__all__ = ["DeadlineBudget", "RetryPolicy"]
