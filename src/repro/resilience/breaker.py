"""Per-stage circuit breaker: trip after repeated faults, route around.

Classic three-state breaker, except the open-state cooldown is counted
in *rejected calls* rather than wall-clock time — call counts are
deterministic under the SimClock regime, wall-clock is not.

* **closed** — calls flow; ``failure_threshold`` consecutive failures
  trip the breaker open.
* **open** — calls are short-circuited (the caller routes around the
  stage, e.g. cache bypass); after ``cooldown`` rejections the breaker
  moves to half-open.
* **half-open** — exactly one probe call is let through: success
  closes the breaker, failure re-opens it.

The class is lock-disciplined (RP003): every public method mutates
state only under ``self._lock``.
"""

from __future__ import annotations

import threading

from repro.locks import wrap_lock

#: breaker states
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """One stage's trip/half-open/reset state machine."""

    def __init__(self, failure_threshold: int = 3, cooldown: int = 8) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown < 1:
            raise ValueError(f"cooldown must be >= 1, got {cooldown}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._lock = wrap_lock(threading.Lock(), "resilience.breaker")
        self._state = CLOSED
        self._consecutive_failures = 0
        self._rejections_since_open = 0
        self._trips = 0

    @property
    def state(self) -> str:
        """Current breaker state: closed, half-open, or open."""
        with self._lock:
            return self._state

    @property
    def trips(self) -> int:
        """How many times this breaker transitioned to open."""
        with self._lock:
            return self._trips

    def allow(self) -> bool:
        """Whether the next call may proceed.

        Open-state rejections count toward the cooldown; the call that
        finds the cooldown exhausted becomes the half-open probe.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                # one probe is already in flight; reject concurrents
                return False
            self._rejections_since_open += 1
            if self._rejections_since_open >= self.cooldown:
                self._state = HALF_OPEN
                return True
            return False

    def record_success(self) -> None:
        """The guarded call succeeded: reset (closes a half-open probe)."""
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0
            self._rejections_since_open = 0

    def record_failure(self) -> bool:
        """The guarded call failed; returns True when this trips open."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._state = OPEN
                self._rejections_since_open = 0
                self._trips += 1
                return True
            self._consecutive_failures += 1
            if self._state == CLOSED and \
                    self._consecutive_failures >= self.failure_threshold:
                self._state = OPEN
                self._rejections_since_open = 0
                self._trips += 1
                return True
            return False


__all__ = ["CLOSED", "CircuitBreaker", "HALF_OPEN", "OPEN"]
