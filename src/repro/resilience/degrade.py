"""Graceful-degradation ladder: salvage answers from partial failures.

The paper treats failure as a first-class outcome (§VII Fig. 8(a):
unanswerable and foreign-word questions), and scene-graph QA systems
degrade with upstream noise rather than crashing.  This module holds
the bottom rungs of the ladder:

* :func:`keyword_query_graph` — when Algorithm 2 rejects a question,
  fall back to a single-clause keyword-match query built from the
  known nouns of the surface text (skipping the unknown/foreign words
  that broke the parse);
* the degraded-confidence constants attached to salvaged answers.

Each rung trades answer quality for availability; every salvaged
answer is marked ``degraded`` and carries its
:class:`~repro.resilience.events.FaultEvent` provenance.
"""

from __future__ import annotations

from repro.core.spoc import QueryGraph, QuestionType, SPOC, Term
from repro.errors import ReproError

#: confidence of an answer produced by the keyword-match fallback
KEYWORD_FALLBACK_CONFIDENCE = 0.3
#: confidence of a best-partial answer after a deadline cutoff
PARTIAL_ANSWER_CONFIDENCE = 0.25
#: confidence of an attributed "unknown" produced when a stage crashed
FAILED_ANSWER_CONFIDENCE = 0.0

#: leading tokens that signal a yes/no question
_JUDGMENT_STARTERS = frozenset({
    "is", "are", "was", "were", "am", "do", "does", "did",
    "can", "could", "will", "would", "has", "have", "had",
})


def classify_question_text(question: str) -> QuestionType:
    """Best-effort question typing from surface text alone."""
    words = question.lower().split()
    if len(words) >= 2 and words[0] == "how" and words[1] in ("many", "much"):
        return QuestionType.COUNTING
    if words and words[0] in _JUDGMENT_STARTERS:
        return QuestionType.JUDGMENT
    return QuestionType.REASONING


def keyword_query_graph(question: str) -> QueryGraph | None:
    """A degraded single-clause query from the question's known nouns.

    Runs the POS tagger (never the parser that already rejected the
    question), keeps the in-lexicon noun lemmas, and wires them into
    one main-clause SPOC: the first noun anchors one slot, the second
    (if any) the other, and the first preposition or content verb
    becomes the predicate.  Returns ``None`` when nothing usable
    survives — the caller then answers ``"unknown"``.
    """
    try:
        from repro.nlp.lexicon import noun_form_index
        from repro.nlp.pos import tag

        tagged = tag(question)
    except ReproError:
        return None

    # only in-lexicon nouns anchor the fallback: the POS tagger guesses
    # NN for unknown words, and a query over gibberish labels would
    # just burn executor time to reach the same "unknown"
    known_nouns = noun_form_index()
    nouns = [t.lemma for t in tagged
             if t.is_noun and t.tag != "FW" and t.lemma
             and t.lemma in known_nouns]
    predicate = "be"
    for token in tagged:
        if token.tag == "IN":
            predicate = token.lemma
            break
        if token.is_verb and token.lemma not in ("be", "do", "have"):
            predicate = token.lemma
            break
    if not nouns:
        return None

    qtype = classify_question_text(question)
    subject: Term | None = Term(text=nouns[0], head=nouns[0])
    obj: Term | None = None
    if len(nouns) >= 2:
        obj = Term(text=nouns[1], head=nouns[1])
    answer_role = "subject"
    if qtype is QuestionType.REASONING and obj is None:
        # single anchor: ask what relates *to* it and answer with the
        # subject side of the retrieved pairs
        obj, subject = subject, None
    elif qtype is not QuestionType.COUNTING:
        answer_role = "object" if obj is not None else "subject"

    spoc = SPOC(
        subject=subject,
        predicate=predicate,
        object=obj,
        clause_index=0,
        depth=0,
        is_main=True,
        question_type=qtype,
        answer_role=answer_role,
        source_text=question,
    )
    return QueryGraph(vertices=[spoc], edges=[], question=question)


__all__ = [
    "FAILED_ANSWER_CONFIDENCE",
    "KEYWORD_FALLBACK_CONFIDENCE",
    "PARTIAL_ANSWER_CONFIDENCE",
    "classify_question_text",
    "keyword_query_graph",
]
