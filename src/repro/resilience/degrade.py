"""Graceful-degradation ladder: salvage answers from partial failures.

The paper treats failure as a first-class outcome (§VII Fig. 8(a):
unanswerable and foreign-word questions), and scene-graph QA systems
degrade with upstream noise rather than crashing.  This module holds
the bottom rungs of the ladder:

* :func:`retrieval_query_graph` — with the retrieval tier enabled,
  the question's noun tokens are BM25-ranked against the live
  merged-graph label corpus and the best-grounded labels anchor the
  fallback query; the normalized retrieval score (in [0, 1]) becomes
  the salvaged answer's confidence instead of the flat constant;
* :func:`keyword_query_graph` — when Algorithm 2 rejects a question
  (and retrieval is off, or found nothing), fall back to a
  single-clause keyword-match query built from the known nouns of the
  surface text (skipping the unknown/foreign words that broke the
  parse);
* the degraded-confidence constants attached to salvaged answers.

Each rung trades answer quality for availability; every salvaged
answer is marked ``degraded`` and carries its
:class:`~repro.resilience.events.FaultEvent` provenance.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.spoc import QueryGraph, QuestionType, SPOC, Term
from repro.errors import ReproError

if TYPE_CHECKING:
    from repro.graph.model import Graph
    from repro.retrieval.config import RetrievalConfig

#: confidence of an answer produced by the keyword-match fallback
KEYWORD_FALLBACK_CONFIDENCE = 0.3
#: confidence of a best-partial answer after a deadline cutoff
PARTIAL_ANSWER_CONFIDENCE = 0.25
#: confidence of an attributed "unknown" produced when a stage crashed
FAILED_ANSWER_CONFIDENCE = 0.0

#: leading tokens that signal a yes/no question
_JUDGMENT_STARTERS = frozenset({
    "is", "are", "was", "were", "am", "do", "does", "did",
    "can", "could", "will", "would", "has", "have", "had",
})


def classify_question_text(question: str) -> QuestionType:
    """Best-effort question typing from surface text alone."""
    words = question.lower().split()
    if len(words) >= 2 and words[0] == "how" and words[1] in ("many", "much"):
        return QuestionType.COUNTING
    if words and words[0] in _JUDGMENT_STARTERS:
        return QuestionType.JUDGMENT
    return QuestionType.REASONING


def _fallback_predicate(tagged: list) -> str:
    """The first preposition or content-verb lemma, default ``"be"``
    — the shared predicate heuristic of both fallback rungs."""
    for token in tagged:
        if token.tag == "IN":
            return token.lemma
        if token.is_verb and token.lemma not in ("be", "do", "have"):
            return token.lemma
    return "be"


def _fallback_graph(question: str, anchors: list[Term],
                    predicate: str) -> QueryGraph:
    """Wire up to two anchor terms and a predicate into the shared
    single-main-clause fallback query shape."""
    qtype = classify_question_text(question)
    subject: Term | None = anchors[0]
    obj: Term | None = anchors[1] if len(anchors) >= 2 else None
    answer_role = "subject"
    if qtype is QuestionType.REASONING and obj is None:
        # single anchor: ask what relates *to* it and answer with the
        # subject side of the retrieved pairs
        obj, subject = subject, None
    elif qtype is not QuestionType.COUNTING:
        answer_role = "object" if obj is not None else "subject"

    spoc = SPOC(
        subject=subject,
        predicate=predicate,
        object=obj,
        clause_index=0,
        depth=0,
        is_main=True,
        question_type=qtype,
        answer_role=answer_role,
        source_text=question,
    )
    return QueryGraph(vertices=[spoc], edges=[], question=question)


def retrieval_query_graph(
    question: str, graph: Graph, config: RetrievalConfig
) -> tuple[QueryGraph, float] | None:
    """A ranked-retrieval fallback query over the live label corpus.

    Each noun token of the question (unknown and foreign words
    included — gibberish simply retrieves nothing) is BM25-ranked
    against the merged graph's :class:`~repro.retrieval.lexical.LexicalIndex`;
    a token anchors the query when its best hit's *normalized* score
    (candidate over the label's self-score, in [0, 1]) clears
    ``config.fallback_floor``.  The first two distinct winning labels
    become the SPOC terms — grounded in labels that actually exist,
    unlike the keyword rung's surface lemmas — and the predicate
    guess is upgraded to its nearest indexed edge label when the
    graph's ANN index knows one within
    ``config.fallback_predicate_threshold``.

    Returns ``(query_graph, confidence)`` where ``confidence`` is the
    mean normalized anchor score, or ``None`` when tagging fails or
    no token retrieves anything — the caller then tries the keyword
    rung.
    """
    try:
        from repro.nlp.pos import tag

        tagged = tag(question)
    except ReproError:
        return None

    anchors: list[Term] = []
    scores: list[float] = []
    seen_labels: set[str] = set()
    for token in tagged:
        if len(anchors) >= 2:
            break
        if not token.is_noun:
            continue
        query = token.lemma or token.text
        ranked = graph.lexical_index.rank(query, limit=1)
        if not ranked:
            continue
        label, score = ranked[0]
        ceiling = graph.lexical_index.self_score(label)
        if ceiling <= 0.0:
            continue
        normalized = min(1.0, score / ceiling)
        if normalized < config.fallback_floor or label in seen_labels:
            continue
        seen_labels.add(label)
        anchors.append(Term(text=query, head=label))
        scores.append(normalized)
    if not anchors:
        return None

    predicate = _fallback_predicate(tagged)
    neighbors = graph.ann_index.neighbors(
        predicate, limit=config.neighbor_limit
    )
    if neighbors and \
            neighbors[0][1] >= config.fallback_predicate_threshold:
        predicate = neighbors[0][0]

    confidence = max(0.0, min(1.0, sum(scores) / len(scores)))
    return _fallback_graph(question, anchors, predicate), confidence


def keyword_query_graph(question: str) -> QueryGraph | None:
    """A degraded single-clause query from the question's known nouns.

    Runs the POS tagger (never the parser that already rejected the
    question), keeps the in-lexicon noun lemmas, and wires them into
    one main-clause SPOC: the first noun anchors one slot, the second
    (if any) the other, and the first preposition or content verb
    becomes the predicate.  Returns ``None`` when nothing usable
    survives — the caller then answers ``"unknown"``.
    """
    try:
        from repro.nlp.lexicon import noun_form_index
        from repro.nlp.pos import tag

        tagged = tag(question)
    except ReproError:
        return None

    # only in-lexicon nouns anchor the fallback: the POS tagger guesses
    # NN for unknown words, and a query over gibberish labels would
    # just burn executor time to reach the same "unknown"
    known_nouns = noun_form_index()
    nouns = [t.lemma for t in tagged
             if t.is_noun and t.tag != "FW" and t.lemma
             and t.lemma in known_nouns]
    if not nouns:
        return None
    anchors = [Term(text=noun, head=noun) for noun in nouns[:2]]
    return _fallback_graph(question, anchors,
                           _fallback_predicate(tagged))


__all__ = [
    "FAILED_ANSWER_CONFIDENCE",
    "KEYWORD_FALLBACK_CONFIDENCE",
    "PARTIAL_ANSWER_CONFIDENCE",
    "classify_question_text",
    "keyword_query_graph",
    "retrieval_query_graph",
]
