"""Resilience layer: fault injection, retry/deadline, degradation.

The production-scale north star means the pipeline must fail *soft per
query*, never *hard per batch*.  This package provides the machinery,
threaded through every pipeline layer:

* :mod:`repro.resilience.faults` — a deterministic, seeded
  :class:`FaultInjector` over the closed :data:`FAULT_SITES` registry
  (chaos testing);
* :mod:`repro.resilience.retry` — :class:`RetryPolicy` (bounded
  attempts, exponential backoff, deterministic jitter) and
  :class:`DeadlineBudget` (per-query simulated-time budgets);
* :mod:`repro.resilience.breaker` — per-stage :class:`CircuitBreaker`
  that trips after repeated faults and routes around the stage;
* :mod:`repro.resilience.manager` — :class:`ResilienceManager`, the
  single guard wrapper call sites use, configured by
  :class:`ResilienceConfig`;
* :mod:`repro.resilience.degrade` — the graceful-degradation ladder
  (keyword-match parse fallback, partial answers, attributed
  ``"unknown"``).

All timing stays on the :class:`~repro.simtime.SimClock`; with
``SVQAConfig.resilience`` unset the layer is strictly zero-cost.
"""

from repro.resilience.breaker import CLOSED, CircuitBreaker, HALF_OPEN, OPEN
from repro.resilience.events import FaultEvent
from repro.resilience.faults import FAULT_SITES, FaultInjector, FaultSpec
from repro.resilience.manager import ResilienceConfig, ResilienceManager
from repro.resilience.retry import DeadlineBudget, RetryPolicy

__all__ = [
    "CLOSED",
    "CircuitBreaker",
    "DeadlineBudget",
    "FAULT_SITES",
    "FaultEvent",
    "FaultInjector",
    "FaultSpec",
    "HALF_OPEN",
    "OPEN",
    "ResilienceConfig",
    "ResilienceManager",
    "RetryPolicy",
]
