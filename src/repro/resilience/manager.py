"""The resilience layer's central guard: retries, breakers, fallbacks.

``ResilienceManager.call(site, key, fn)`` is the one wrapper every
guarded pipeline stage goes through:

1. the site's :class:`~repro.resilience.breaker.CircuitBreaker` is
   consulted — when open, the call is short-circuited and the caller's
   ``fallback`` routes around the stage (cache bypass, skip-image, ...);
2. the seeded :class:`~repro.resilience.faults.FaultInjector` decides
   whether this attempt faults (charging fault latency on the clock);
3. faults are retried under the :class:`~repro.resilience.retry.RetryPolicy`
   with exponential backoff charged in simulated seconds;
4. an exhausted retry budget either raises
   :class:`~repro.errors.FaultToleranceError` or, when the caller
   provided a ``fallback``, degrades gracefully to it.

Every incident is recorded twice: as a
:class:`~repro.resilience.events.FaultEvent` on the caller's event
list (per-answer provenance) and as a counter on the shared
:class:`~repro.core.stats.ExecutorStats` (fleet-level observability).

With no manager present (``SVQAConfig.resilience is None``) none of
this code runs: the resilience layer is strictly zero-cost when off.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

from repro.errors import (
    CircuitOpenError,
    FaultToleranceError,
    InjectedFaultError,
)
from repro.observability.spans import Tracer, maybe_span
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.events import FaultEvent
from repro.resilience.faults import FAULT_SITES, FaultInjector, FaultSpec
from repro.resilience.retry import DeadlineBudget, RetryPolicy
from repro.locks import wrap_lock
from repro.simtime import SimClock

if TYPE_CHECKING:
    from repro.core.stats import ExecutorStats

#: sentinel distinguishing "no fallback" from "fallback returns None"
_RAISE = object()


@dataclass
class ResilienceConfig:
    """Every knob of the resilience layer in one place.

    ``fault_specs`` maps registered site names to
    :class:`~repro.resilience.faults.FaultSpec` values (empty = no
    injection, the production setting: retries/breakers/deadlines
    still guard real failures).  ``query_deadline`` is the per-query
    budget in simulated seconds (``None`` = unbounded).
    ``degrade_parse`` enables the keyword-match fallback for questions
    the grammar rejects.
    """

    seed: int = 0
    fault_specs: dict[str, FaultSpec] = field(default_factory=dict)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    query_deadline: float | None = None
    breaker_threshold: int = 3
    breaker_cooldown: int = 8
    degrade_parse: bool = True

    @classmethod
    def chaos(
        cls,
        rate: float,
        seed: int = 0,
        persistent_fraction: float = 0.25,
        fault_latency: float = 0.02,
        query_deadline: float | None = None,
    ) -> ResilienceConfig:
        """A uniform chaos-testing configuration: the same fault rate
        at every registered site."""
        spec = FaultSpec(rate=rate, persistent_fraction=persistent_fraction,
                         latency=fault_latency)
        return cls(
            seed=seed,
            fault_specs=dict.fromkeys(FAULT_SITES, spec),
            query_deadline=query_deadline,
        )


class ResilienceManager:
    """Shared, thread-safe guard state for one SVQA system.

    One manager is created per :class:`~repro.core.pipeline.SVQA`
    instance and threaded through the SGG pipeline, the aggregator,
    the executor, and the batch engine; breakers are per-site and
    shared across worker threads.
    """

    def __init__(
        self,
        config: ResilienceConfig | None = None,
        stats: ExecutorStats | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.config = config or ResilienceConfig()
        self.injector = FaultInjector(seed=self.config.seed,
                                      specs=self.config.fault_specs)
        self.stats = stats
        self.tracer = tracer
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = wrap_lock(threading.Lock(), "resilience.manager")

    def _breaker(self, site: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(site)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self.config.breaker_threshold,
                    cooldown=self.config.breaker_cooldown,
                )
                self._breakers[site] = breaker
            return breaker

    def breaker_state(self, site: str) -> str:
        """The named site's breaker state (for reports and tests)."""
        return self._breaker(site).state

    def breaker_states(self) -> dict[str, str]:
        """Every registered site's breaker state, sorted by site name.

        Sites whose breaker was never consulted report ``closed`` —
        the serving layer's ``/healthz`` endpoint needs the full map,
        not just the breakers that happen to exist yet.
        """
        return {site: self._breaker(site).state
                for site in sorted(FAULT_SITES)}

    def publish_breaker_states(self) -> None:
        """Publish the ``svqa_breaker_state`` gauge for every site.

        Normally the gauge only gains a series when a site's guard is
        first consulted, which makes the metrics exposition depend on
        *which* pipeline stages ran.  The serving layer calls this
        once at startup so cold-build and snapshot-warm-started
        servers expose identical gauge series.
        """
        for site in sorted(FAULT_SITES):
            self._publish_breaker_state(site, self._breaker(site))

    def deadline(
        self, clock: SimClock | None, limit: float | None = None
    ) -> DeadlineBudget | None:
        """A fresh per-query budget, or ``None`` when unconfigured.

        ``limit`` is a per-query override in simulated seconds (the
        serving layer's ``Deadline-Ms`` header lands here); the
        effective budget is the tighter of the override and the
        configured :attr:`ResilienceConfig.query_deadline`.
        """
        limits = [value for value in (limit, self.config.query_deadline)
                  if value is not None]
        if clock is None or not limits:
            return None
        return DeadlineBudget.start(clock, min(limits))

    # ------------------------------------------------------------------
    # the guard
    # ------------------------------------------------------------------
    def call(
        self,
        site: str,
        key: object,
        fn: Callable[[], Any],
        clock: SimClock | None = None,
        events: list[FaultEvent] | None = None,
        fallback: Any = _RAISE,
    ) -> Any:
        """Run ``fn`` under this site's breaker + retry policy.

        ``key`` is the stable identity of the operation (image id,
        cache key, term label): fault decisions are a pure function of
        ``(seed, site, key)``, so runs are reproducible regardless of
        thread interleaving.  ``fallback`` (a zero-arg callable) routes
        around the stage on breaker-open or retry exhaustion; without
        it those conditions raise :class:`~repro.errors.CircuitOpenError`
        / :class:`~repro.errors.FaultToleranceError`.
        """
        if site not in FAULT_SITES:
            raise ValueError(f"unregistered fault site: {site!r}")
        breaker = self._breaker(site)
        allowed = breaker.allow()
        self._publish_breaker_state(site, breaker)
        if not allowed:
            self._record("breaker_short_circuit", site)
            if events is not None:
                events.append(FaultEvent(site, "short-circuit",
                                         detail=str(key)))
            if fallback is _RAISE:
                raise CircuitOpenError(
                    f"circuit open at {site} (key={key!r})", site=site,
                )
            return fallback()
        policy = self.config.retry
        last_fault: InjectedFaultError | None = None
        for attempt in range(policy.max_attempts):
            try:
                self.injector.check(site, key, attempt=attempt, clock=clock)
            except InjectedFaultError as fault:
                last_fault = fault
                self._record("fault", site)
                if events is not None:
                    events.append(FaultEvent(site, "fault",
                                             attempts=attempt + 1,
                                             detail=str(key)))
                tripped = breaker.record_failure()
                if tripped:
                    self._record("breaker_trip", site)
                self._publish_breaker_state(site, breaker)
                if attempt + 1 < policy.max_attempts:
                    with maybe_span(self.tracer, "resilience.retry",
                                    site=site, attempt=attempt + 1):
                        if clock is not None:
                            clock.charge_amount(
                                "retry_backoff",
                                policy.backoff(attempt, site, str(key)),
                            )
                    self._record("retry", site)
                    if events is not None:
                        events.append(FaultEvent(site, "retry",
                                                 attempts=attempt + 1))
                continue
            value = fn()
            breaker.record_success()
            self._publish_breaker_state(site, breaker)
            if attempt > 0:
                self._record("recovery", site)
                if events is not None:
                    events.append(FaultEvent(site, "recovered",
                                             attempts=attempt + 1))
            return value
        self._record("exhausted", site)
        if events is not None:
            events.append(FaultEvent(site, "exhausted",
                                     attempts=policy.max_attempts,
                                     detail=str(key)))
        if fallback is _RAISE:
            raise FaultToleranceError(
                f"{site} failed permanently after "
                f"{policy.max_attempts} attempts (key={key!r})",
                site=site,
                attempts=policy.max_attempts,
            ) from last_fault
        if events is not None:
            events.append(FaultEvent(site, "degraded", detail=str(key)))
        return fallback()

    def _publish_breaker_state(
        self, site: str, breaker: CircuitBreaker
    ) -> None:
        """Refresh the ``svqa_breaker_state`` gauge after a transition."""
        if self.stats is not None:
            self.stats.record_breaker_state(site, breaker.state)

    def _record(self, incident: str, site: str) -> None:
        if self.stats is None:
            return
        if incident == "fault":
            self.stats.record_fault(site)
        elif incident == "retry":
            self.stats.record_retry()
        elif incident == "recovery":
            self.stats.record_recovery()
        elif incident == "exhausted":
            self.stats.record_retry_exhausted()
        elif incident == "breaker_trip":
            self.stats.record_breaker_trip()
        elif incident == "breaker_short_circuit":
            self.stats.record_breaker_short_circuit()


__all__ = ["ResilienceConfig", "ResilienceManager"]
