"""Fault provenance records attached to degraded answers.

:class:`FaultEvent` is deliberately a leaf type (no imports from the
core package) so :mod:`repro.core.answer` can carry fault provenance
without creating an import cycle with the resilience layer.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FaultEvent:
    """One observable resilience incident on a query or build stage.

    Attributes
    ----------
    site:
        The registered fault-site name (see
        :data:`repro.resilience.faults.FAULT_SITES`) or a pseudo-site
        such as ``executor.execute`` for uninjected crashes.
    kind:
        What happened: ``fault`` (one injected fault fired), ``retry``
        (a backoff was charged and the attempt repeated), ``recovered``
        (the operation succeeded after >= 1 fault), ``exhausted`` (the
        retry budget ran out), ``short-circuit`` (an open breaker
        rejected the call), ``deadline`` (the per-query budget cut
        execution off), ``degraded`` (a fallback value was substituted),
        or ``error`` (a real, uninjected exception was absorbed).
    attempts:
        Attempts made when the event was recorded.
    detail:
        Free-form attribution (offending key, exception text, ...).
    """

    site: str
    kind: str
    attempts: int = 0
    detail: str = ""

    def render(self) -> str:
        """One-line rendering for reports and CLI output."""
        suffix = f" after {self.attempts} attempt(s)" if self.attempts else ""
        detail = f": {self.detail}" if self.detail else ""
        return f"[{self.site}] {self.kind}{suffix}{detail}"

    def to_dict(self) -> dict[str, object]:
        """JSON-ready dict with a stable key set (the wire format of
        ``Answer.to_dict()['meta']['fault_events']``)."""
        return {
            "site": self.site,
            "kind": self.kind,
            "attempts": self.attempts,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> FaultEvent:
        """Rebuild an event from :meth:`to_dict`'s payload."""
        return cls(
            site=str(payload["site"]),
            kind=str(payload["kind"]),
            attempts=int(payload.get("attempts", 0)),  # type: ignore[arg-type]
            detail=str(payload.get("detail", "")),
        )


__all__ = ["FaultEvent"]
