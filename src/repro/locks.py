"""Lock instrumentation hooks: the runtime sanitizer's zero-cost seam.

Every lock-owning module creates its locks through :func:`wrap_lock`
and annotates its shared-structure accesses with :func:`note_read` /
:func:`note_write`.  With no sanitizer installed (the default) each
hook is a single ``is None`` check — ``wrap_lock`` hands back the raw
lock object untouched, so the off path is bit-identical to a build
without the hooks (the same zero-cost discipline as the resilience
and observability layers).

The sanitizer itself lives in
:mod:`repro.analysis.concurrency.sanitizer`; it cannot be imported
from here (``repro.analysis`` transitively imports ``repro.core``,
which imports this module), so this seam is deliberately a leaf:
stdlib-only, and the observer is *installed* into it at activation
time.  ``SVQA_SANITIZE=1`` in the environment installs a default
sanitizer lazily on the first ``wrap_lock`` call, which lets the
existing concurrency stress suites run fully instrumented without
touching any call site.
"""

from __future__ import annotations

import threading
from typing import Any, Protocol


class LockObserver(Protocol):
    """What an installed sanitizer must provide (duck-typed)."""

    def wrap(self, lock: Any, name: str) -> Any:
        """Return an instrumented stand-in for ``lock``."""

    def note_access(self, structure: str, key: object,
                    write: bool) -> None:
        """One read (``write=False``) or write of a shared location."""

    def note_fork(self) -> None:
        """The calling thread is about to start worker threads."""

    def note_join(self) -> None:
        """The calling thread joined every worker it forked."""


_active: LockObserver | None = None
_install_lock = threading.Lock()
_env_checked = False


def _maybe_env_activate() -> None:
    """Install a default sanitizer once if ``SVQA_SANITIZE`` is set."""
    global _env_checked, _active
    with _install_lock:
        if _env_checked or _active is not None:
            _env_checked = True
            return
        _env_checked = True
        import os

        flag = os.environ.get("SVQA_SANITIZE", "").strip().lower()
        if flag in ("", "0", "false", "no", "off"):
            return
        from repro.analysis.concurrency.sanitizer import (
            Sanitizer,
            SanitizerConfig,
        )

        _active = Sanitizer(SanitizerConfig.from_env())


def install(observer: LockObserver) -> None:
    """Make ``observer`` the process-wide active sanitizer."""
    global _active, _env_checked
    with _install_lock:
        if _active is not None and _active is not observer:
            raise RuntimeError("a lock observer is already installed")
        _active = observer
        _env_checked = True


def uninstall(observer: LockObserver) -> None:
    """Deactivate ``observer`` (no-op if it is not the active one)."""
    global _active
    with _install_lock:
        if _active is observer:
            _active = None


def current() -> LockObserver | None:
    """The active sanitizer, or ``None``."""
    return _active


def wrap_lock(lock: Any, name: str) -> Any:
    """Instrument ``lock`` under the active sanitizer, else return it.

    ``name`` is the lock's *role* (``"cache.scope"``,
    ``"serve.bridge"``, ...): the runtime lock-order graph is built
    over roles, so reports stay small and deterministic across
    instance counts.
    """
    if _active is None and not _env_checked:
        _maybe_env_activate()
    if _active is None:
        return lock
    return _active.wrap(lock, name)


def note_read(structure: str, key: object = None) -> None:
    """Annotate one read of a shared location (no-op when inactive)."""
    if _active is not None:
        _active.note_access(structure, key, write=False)


def note_write(structure: str, key: object = None) -> None:
    """Annotate one write of a shared location (no-op when inactive)."""
    if _active is not None:
        _active.note_access(structure, key, write=True)


def note_fork() -> None:
    """Annotate a fork point: worker threads inherit the caller's
    happens-before frontier (no-op when inactive)."""
    if _active is not None:
        _active.note_fork()


def note_join() -> None:
    """Annotate a join point: the caller inherits every worker's
    happens-before frontier (no-op when inactive)."""
    if _active is not None:
        _active.note_join()


__all__ = [
    "LockObserver",
    "current",
    "install",
    "note_fork",
    "note_join",
    "note_read",
    "note_write",
    "uninstall",
    "wrap_lock",
]
