"""Small shared utilities."""

from __future__ import annotations

import hashlib


def stable_hash(*parts: object) -> int:
    """A process-independent 63-bit hash of the given parts.

    Python's builtin ``hash`` randomizes string hashing per process
    (PYTHONHASHSEED), which would make every seeded component
    nondeterministic across runs — fatal for a reproduction.  This
    digest is stable everywhere.
    """
    text = "\x1f".join(repr(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFFFFFFFFFFFFFF
