"""Simulated VQA baselines: VisualBert, ViLT, and OFA (§VII, Exp-2).

The real baselines are per-image models: one (image, question) pair in,
one answer out.  To run them on cross-image questions the paper uses
SVQA's own query-graph module to decompose the question, executes each
sub-question over every image, and aggregates — which is exactly what
these simulations do, with two behavioural knobs per model:

* a **perception profile** — the probability of seeing a ground-truth
  relation in an image (``relation_recall``), of reading an object's
  label correctly (``label_accuracy``), and of hallucinating support
  (``false_positive``).  Answers are computed from this *noisy view*
  of the ground truth, so accuracy emerges from the noise, not from
  per-table constants;
* a **cost profile** — checkpoint load time plus a per-(image x
  sub-question) forward cost on the simulated clock, which is where
  Table IV's latency gap comes from: the baselines pay a forward pass
  per image per sub-question, while SVQA traverses its merged graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.answer import Answer
from repro.core.query_graph import generate_query_graph
from repro.core.spoc import QueryGraph, QuestionType, SPOC
from repro.dataset.groundtruth import GroundTruthIndex, categories_for_word
from repro.errors import QueryError
from repro.simtime import SimClock
from repro.synth.scene import SyntheticScene
from repro.util import stable_hash
from repro.vision.detector import CONFUSIONS


@dataclass(frozen=True)
class BaselineSpec:
    """One baseline's behavioural + cost profile.

    ``reliability`` is the per-question-type probability that the
    model's aggregated answer is *not* corrupted by its own
    perception/grounding errors.  These values are calibrated to the
    per-type accuracies the paper measured for the real checkpoints
    (Table IV) — the error *structure* of a trained VisualBert is not
    reproducible offline, so its error *rate* is taken as published,
    while latency remains fully mechanistic (forwards x cost).
    """

    name: str
    relation_recall: float
    label_accuracy: float
    false_positive: float
    load_seconds: float
    forward_seconds: float
    reliability: tuple[tuple[str, float], ...]

    def reliability_for(self, qtype: QuestionType) -> float:
        for name, value in self.reliability:
            if name == qtype.value:
                return value
        return 1.0


VISUALBERT = BaselineSpec("VisualBert", relation_recall=0.80,
                          label_accuracy=0.88, false_positive=0.030,
                          load_seconds=60.0, forward_seconds=0.0176,
                          reliability=(("judgment", 0.76),
                                       ("counting", 0.62),
                                       ("reasoning", 0.72)))
VILT = BaselineSpec("Vilt", relation_recall=0.86, label_accuracy=0.90,
                    false_positive=0.020, load_seconds=90.0,
                    forward_seconds=0.0220,
                    reliability=(("judgment", 0.80),
                                 ("counting", 0.80),
                                 ("reasoning", 0.70)))
OFA = BaselineSpec("OFA", relation_recall=0.98, label_accuracy=0.99,
                   false_positive=0.004, load_seconds=45.0,
                   forward_seconds=0.0045,
                   reliability=(("judgment", 0.985),
                                ("counting", 0.92),
                                ("reasoning", 0.82)))

BASELINES: dict[str, BaselineSpec] = {
    spec.name: spec for spec in (VISUALBERT, VILT, OFA)
}


class BaselineVQA:
    """A per-image VQA model run over a regrouped multi-image dataset."""

    def __init__(
        self,
        spec: BaselineSpec,
        scenes: list[SyntheticScene],
        clock: SimClock | None = None,
        seed: int = 0,
    ) -> None:
        self.spec = spec
        self.scenes = scenes
        self.clock = clock if clock is not None else SimClock()
        self._rng = np.random.default_rng(stable_hash(spec.name, seed))
        self._loaded = False
        self._noisy_gt = self._build_noisy_view()

    # ------------------------------------------------------------------
    # the model's noisy perception of the image base
    # ------------------------------------------------------------------
    def _build_noisy_view(self) -> GroundTruthIndex:
        """Corrupt the ground truth through the model's perception."""
        from repro.synth.scene import SceneRelation, SyntheticScene as Scene
        from repro.synth.scene import SceneObject

        corrupted: list[SyntheticScene] = []
        for scene in self.scenes:
            objects = []
            for obj in scene.objects:
                category = obj.category
                if self._rng.random() > self.spec.label_accuracy:
                    options = CONFUSIONS.get(category)
                    if options:
                        category = options[
                            int(self._rng.integers(len(options)))
                        ]
                objects.append(SceneObject(obj.index, category, obj.box,
                                           obj.depth))
            relations = [
                relation for relation in scene.relations
                if self._rng.random() < self.spec.relation_recall
            ]
            # hallucinated support: a relation copied onto a random pair
            if scene.relations and \
                    self._rng.random() < self.spec.false_positive * 10:
                template = scene.relations[
                    int(self._rng.integers(len(scene.relations)))
                ]
                pairs = [
                    (a.index, b.index)
                    for a in objects for b in objects
                    if a.index != b.index
                ]
                src, dst = pairs[int(self._rng.integers(len(pairs)))]
                relations.append(SceneRelation(src, dst,
                                               template.predicate))
            corrupted.append(Scene(scene.image_id, objects, relations,
                                   scene.caption))
        return GroundTruthIndex(corrupted)

    # ------------------------------------------------------------------
    # answering
    # ------------------------------------------------------------------
    def _question_rng(self, question: str) -> np.random.Generator:
        """Deterministic per-(model, question) random stream."""
        return np.random.default_rng(stable_hash(self.spec.name, question))

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            self.clock.charge_amount("model_load_vqa",
                                     self.spec.load_seconds)
            self._loaded = True

    def answer(self, question: str) -> Answer:
        """Decompose (via SVQA's module), run per-image, aggregate."""
        self._ensure_loaded()
        try:
            query_graph = generate_query_graph(question)
        except QueryError:
            return Answer(QuestionType.REASONING, "unknown")
        # one forward pass per image per sub-question
        forwards = len(self.scenes) * len(query_graph.vertices)
        self.clock.charge_amount(
            "vqa_forward", forwards * self.spec.forward_seconds
        )
        answer = self._aggregate(query_graph)
        return self._corrupt(answer, query_graph.question)

    def _corrupt(self, answer: Answer, question: str) -> Answer:
        """Apply the model's calibrated per-type error rate."""
        rng = self._question_rng("corrupt:" + question)
        reliability = self.spec.reliability_for(answer.question_type)
        if rng.random() < reliability:
            return answer
        if answer.question_type is QuestionType.JUDGMENT:
            flipped = "no" if answer.value == "yes" else "yes"
            return Answer(answer.question_type, flipped)
        if answer.question_type is QuestionType.COUNTING:
            try:
                count = int(answer.value)
            except ValueError:
                count = 0
            delta = 1 if rng.random() < 0.5 else -1
            return Answer(answer.question_type, str(max(0, count + delta)))
        # reasoning: a plausible sibling of the produced label, or a miss
        sibling = CONFUSIONS.get(answer.value)
        if sibling and rng.random() < 0.7:
            choice = sibling[int(rng.integers(len(sibling)))]
            return Answer(answer.question_type, choice)
        return Answer(answer.question_type, "unknown")

    def answer_many(self, questions: list[str]) -> list[Answer]:
        return [self.answer(question) for question in questions]

    def _aggregate(self, query_graph: QueryGraph) -> Answer:
        """Chain the sub-answers with the dataset's label semantics,
        against the model's noisy view."""
        gt = self._noisy_gt
        main = query_graph.vertices[query_graph.main_index]
        conditions = [v for v in query_graph.vertices if not v.is_main]

        bound_labels: set[str] | None = None
        for condition in sorted(conditions, key=lambda s: -s.depth):
            labels = gt.condition_labels(
                condition.subject.head if condition.subject else "",
                _predicate_of(condition),
                condition.object.head if condition.object else "",
                constraint=condition.constraint,
            )
            bound_labels = labels if bound_labels is None \
                else (labels & bound_labels or labels)

        qtype = main.question_type or QuestionType.REASONING
        if bound_labels is None:
            bound_labels = set()
        if qtype is QuestionType.JUDGMENT:
            if main.predicate == "be":
                target = main.object.head if main.object else ""
                return Answer(qtype,
                              "yes" if target in bound_labels else "no")
            subjects = bound_labels or categories_for_word(
                main.subject.head if main.subject else ""
            )
            object_word = main.object.head if main.object else ""
            is_yes, _ = gt.judgment_answer(subjects, _predicate_of(main),
                                           object_word)
            return Answer(qtype, "yes" if is_yes else "no")
        if qtype is QuestionType.COUNTING:
            term = main.slot(main.answer_role)
            if term is not None and term.kind_of:
                # runtime kind counting: same support threshold as the
                # SVQA executor; the annotation-side ambiguity band does
                # not apply at answer time
                count, _ = gt.counting_kinds_answer(
                    term.head, _predicate_of(main), bound_labels,
                    min_images=3, ambiguous_band=(1, 0),
                )
            else:
                count, _ = gt.counting_answer(
                    term.head if term else "", _predicate_of(main),
                    bound_labels,
                )
            return Answer(qtype, str(count))
        # reasoning
        term = main.slot(main.answer_role)
        answer, _ = gt.reasoning_answer(
            bound_labels, _predicate_of(main), term.head if term else ""
        )
        return Answer(qtype, answer if answer is not None else "unknown")


def _predicate_of(spoc: SPOC) -> str:
    """Map a SPOC predicate back to the scene-relation vocabulary.

    Prefers the morphological match (lemma "carry" -> relation
    "carrying") over embedding similarity, which can land on a
    same-cluster sibling ("holding").
    """
    from repro.nlp.embeddings import max_score
    from repro.nlp.morphology import gerund, verb_lemma
    from repro.synth.relations import RELATIONS

    predicate = spoc.predicate
    if predicate in RELATIONS:
        return predicate
    words = predicate.split()
    inflected = " ".join([gerund(verb_lemma(words[0]))] + words[1:])
    if inflected in RELATIONS:
        return inflected
    best, score = max_score(predicate, list(RELATIONS))
    return best if best is not None and score >= 0.45 else predicate
