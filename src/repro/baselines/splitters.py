"""Sentence-splitter baselines: ABCD-MLP, ABCD-bilinear, DisSim (Exp-4).

These systems split a complex sentence into simple clauses — step one
of SVQA's query-graph generation.  The paper compares *latency* only
(Fig. 9a), since the outputs aren't directly comparable: the
deep-learning splitters pay a large one-time model-load cost plus a
per-question forward pass, while SVQA's linguistic method starts cold
but costs more per token.

The simulated splitters really do produce clause splits (delegating to
the rule pipeline), so examples can show their output; their *cost*
follows the published behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError
from repro.simtime import SimClock
from repro.core.query_graph import generate_query_graph


@dataclass(frozen=True)
class SplitterSpec:
    """A splitter's cost profile (simulated seconds)."""

    name: str
    load_seconds: float
    per_question_seconds: float


ABCD_MLP = SplitterSpec("ABCD-MLP", load_seconds=7.5,
                        per_question_seconds=0.085)
ABCD_BILINEAR = SplitterSpec("ABCD-bilinear", load_seconds=8.6,
                             per_question_seconds=0.105)
DISSIM = SplitterSpec("DisSim", load_seconds=5.8,
                      per_question_seconds=0.140)

SPLITTERS: dict[str, SplitterSpec] = {
    spec.name: spec for spec in (ABCD_MLP, ABCD_BILINEAR, DISSIM)
}


class BaselineSplitter:
    """A DL sentence splitter: load once, forward per question."""

    def __init__(self, spec: SplitterSpec,
                 clock: SimClock | None = None) -> None:
        self.spec = spec
        self.clock = clock if clock is not None else SimClock()
        self._loaded = False

    def split(self, question: str) -> list[str]:
        """Split a question into simple clause strings."""
        if not self._loaded:
            self.clock.charge_amount("model_load_splitter",
                                     self.spec.load_seconds)
            self._loaded = True
        self.clock.charge_amount("splitter_forward",
                                 self.spec.per_question_seconds)
        try:
            graph = generate_query_graph(question)
        except QueryError:
            return [question]
        return [spoc.source_text for spoc in graph.vertices]

    def split_many(self, questions: list[str]) -> list[list[str]]:
        return [self.split(question) for question in questions]


class LinguisticSplitter:
    """SVQA's own method, wrapped in the same interface (no load cost;
    §IV costs charged per question)."""

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()

    def split(self, question: str) -> list[str]:
        try:
            graph = generate_query_graph(question, clock=self.clock)
        except QueryError:
            return [question]
        return [spoc.source_text for spoc in graph.vertices]

    def split_many(self, questions: list[str]) -> list[list[str]]:
        return [self.split(question) for question in questions]
