"""Baseline systems the paper compares against: per-image VQA models
(VisualBert / ViLT / OFA) and sentence splitters (ABCD / DisSim).
"""

from repro.baselines.splitters import (
    ABCD_BILINEAR,
    ABCD_MLP,
    DISSIM,
    SPLITTERS,
    BaselineSplitter,
    LinguisticSplitter,
    SplitterSpec,
)
from repro.baselines.vqa import (
    BASELINES,
    OFA,
    VILT,
    VISUALBERT,
    BaselineSpec,
    BaselineVQA,
)

__all__ = [
    "ABCD_BILINEAR",
    "ABCD_MLP",
    "BASELINES",
    "BaselineSpec",
    "BaselineSplitter",
    "BaselineVQA",
    "DISSIM",
    "LinguisticSplitter",
    "OFA",
    "SPLITTERS",
    "SplitterSpec",
    "VILT",
    "VISUALBERT",
]
