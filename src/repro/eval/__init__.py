"""Evaluation: answer scoring and the experiment harness."""

from repro.eval.accuracy import AccuracyReport, SEMANTIC_THRESHOLD, answers_match
from repro.eval.harness import (
    EvaluationResult,
    breakdown_by_type,
    evaluate,
    format_table,
    percentage,
)

__all__ = [
    "AccuracyReport",
    "EvaluationResult",
    "SEMANTIC_THRESHOLD",
    "answers_match",
    "breakdown_by_type",
    "evaluate",
    "format_table",
    "percentage",
]
