"""Experiment harness: run a QA system over a dataset and report
accuracy + latency, plus simple fixed-width table rendering for the
benchmark output (the rows the paper's tables print).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.core.answer import Answer
from repro.core.spoc import QuestionType
from repro.dataset.questions import MVQAQuestion
from repro.eval.accuracy import AccuracyReport, answers_match


@dataclass
class EvaluationResult:
    """Accuracy + latency of one system over one question set."""

    name: str
    report: AccuracyReport
    latency: float  # simulated seconds for the whole batch
    answers: list[Answer]
    failures: list[tuple[MVQAQuestion, str]]

    def summary(self) -> dict[str, float]:
        row = self.report.as_row()
        row["latency"] = self.latency
        return row


def evaluate(
    name: str,
    questions: Sequence[MVQAQuestion],
    answer_batch: Callable[[list[str]], list[Answer]],
    elapsed: Callable[[], float],
) -> EvaluationResult:
    """Run ``answer_batch`` over the questions and score the output.

    ``elapsed`` reads the system's simulated clock; latency is the
    clock delta across the batch call.
    """
    before = elapsed()
    answers = answer_batch([q.text for q in questions])
    latency = elapsed() - before
    if len(answers) != len(questions):
        raise ValueError(
            f"{name} returned {len(answers)} answers for "
            f"{len(questions)} questions"
        )
    report = AccuracyReport()
    failures: list[tuple[MVQAQuestion, str]] = []
    for question, answer in zip(questions, answers, strict=True):
        ok = answers_match(answer.value, question.answer,
                           question.question_type)
        report.record(question.question_type, ok)
        if not ok:
            failures.append((question, answer.value))
    return EvaluationResult(name, report, latency, answers, failures)


def format_table(
    headers: list[str], rows: list[list[str]], title: str = ""
) -> str:
    """Fixed-width table rendering for benchmark output."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths, strict=True))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths, strict=True)))
    return "\n".join(lines)


def percentage(value: float) -> str:
    return f"{100 * value:.1f}%"


def breakdown_by_type(
    questions: Sequence[MVQAQuestion],
) -> dict[QuestionType, list[MVQAQuestion]]:
    result: dict[QuestionType, list[MVQAQuestion]] = {}
    for question in questions:
        result.setdefault(question.question_type, []).append(question)
    return result
