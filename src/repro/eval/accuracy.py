"""Answer scoring (§VII, Experimental Setting).

Judgment answers need an exact yes/no; counting answers need the exact
number; reasoning answers are scored by *semantic consistency* —
cosine similarity between the produced and reference labels, so "dog"
vs "puppy" counts as correct, exactly as the paper evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nlp.embeddings import cosine
from repro.nlp.morphology import noun_singular
from repro.nlp.semlex import are_synonyms
from repro.core.spoc import QuestionType

#: cosine threshold above which two reasoning answers are "consistent"
SEMANTIC_THRESHOLD = 0.6


def answers_match(
    produced: str, reference: str, question_type: QuestionType
) -> bool:
    """Whether a produced answer counts as correct."""
    produced_norm = produced.strip().lower()
    reference_norm = reference.strip().lower()
    if question_type in (QuestionType.JUDGMENT, QuestionType.COUNTING):
        return produced_norm == reference_norm
    # reasoning: exact, number-normalized, synonym, or embedding match
    if produced_norm == reference_norm:
        return True
    if noun_singular(produced_norm) == noun_singular(reference_norm):
        return True
    if are_synonyms(produced_norm, reference_norm):
        return True
    if produced_norm in {"", "unknown"}:
        return False
    return cosine(produced_norm, reference_norm) >= SEMANTIC_THRESHOLD


@dataclass
class AccuracyReport:
    """Per-type and overall accuracy over a question set."""

    correct: dict[QuestionType, int] = field(default_factory=dict)
    total: dict[QuestionType, int] = field(default_factory=dict)

    def record(self, question_type: QuestionType, is_correct: bool) -> None:
        self.total[question_type] = self.total.get(question_type, 0) + 1
        if is_correct:
            self.correct[question_type] = \
                self.correct.get(question_type, 0) + 1

    def accuracy(self, question_type: QuestionType) -> float:
        total = self.total.get(question_type, 0)
        if total == 0:
            return 0.0
        return self.correct.get(question_type, 0) / total

    @property
    def overall(self) -> float:
        total = sum(self.total.values())
        if total == 0:
            return 0.0
        return sum(self.correct.values()) / total

    def as_row(self) -> dict[str, float]:
        """The Table III row shape."""
        return {
            "judgment": self.accuracy(QuestionType.JUDGMENT),
            "counting": self.accuracy(QuestionType.COUNTING),
            "reasoning": self.accuracy(QuestionType.REASONING),
            "overall": self.overall,
        }
