"""Concurrency lint rules RP008–RP011 over the lock-order model.

Unlike the per-file ``RP001``–``RP007`` rules, these are **project
rules**: lock-order inversions and dispatch-under-lock findings only
exist across module boundaries, so each rule consumes one shared
:class:`~repro.analysis.concurrency.lockgraph.LockOrderAnalysis`
built from *every* linted file (the engine in
:mod:`repro.analysis.code_linter` builds it once per run).  Bindings
still scope where findings may *land* — the analysis always sees the
whole tree, so an allowlisted module keeps contributing call-graph
edges even when its own findings are suppressed.

========  =========  ====================================================
rule id   severity   invariant
========  =========  ====================================================
RP008     ERROR      the global lock acquisition graph is acyclic —
                     a cycle means two threads can acquire the same
                     locks in opposite orders and deadlock
RP009     ERROR      no blocking call (``Future.result``,
                     ``Queue.get/put``, ``Event.wait``,
                     ``Condition.wait`` on a *different* lock, thread
                     ``join``) while holding a lock
RP010     ERROR      no callback / cross-module dispatch under a held
                     lock: calling a stored callback, a callable
                     parameter, or a resolved method whose transitive
                     footprint acquires another module's lock invites
                     inversions the owner cannot see
RP011     ERROR      a lock attribute never escapes its owner class:
                     not returned, not passed as an argument (except
                     to ``threading.Condition`` / ``wrap_lock``), not
                     accessed on a foreign receiver
========  =========  ====================================================
"""

from __future__ import annotations

import ast

from repro.analysis.concurrency.lockgraph import (
    CallEvent,
    ClassInfo,
    FunctionInfo,
    LockOrderAnalysis,
    ModuleInfo,
)
from repro.analysis.diagnostics import Diagnostic, Location, Severity


class ProjectRule:
    """One whole-tree invariant check over the lock-order analysis."""

    rule_id: str = ""
    description: str = ""

    def check_project(
        self, analysis: LockOrderAnalysis
    ) -> list[Diagnostic]:
        raise NotImplementedError

    def diagnostic(
        self, path: str, line: int | None, message: str, hint: str = "",
        severity: Severity = Severity.ERROR,
    ) -> Diagnostic:
        return Diagnostic(
            self.rule_id, severity,
            Location(file=path, line=line),
            message, hint=hint,
        )


def _functions(analysis: LockOrderAnalysis) -> list[
        tuple[ModuleInfo, FunctionInfo]]:
    """Every analyzed function, in deterministic module/def order."""
    result: list[tuple[ModuleInfo, FunctionInfo]] = []
    for path in sorted(analysis.modules):
        minfo = analysis.modules[path]
        result.extend((minfo, fn) for fn in minfo.all_functions)
    return result


class LockOrderInversionRule(ProjectRule):
    """RP008: no cycle in the global lock acquisition graph."""

    rule_id = "RP008"
    description = ("the cross-module lock acquisition graph must be "
                   "acyclic (a cycle is a deadlock candidate)")

    def check_project(
        self, analysis: LockOrderAnalysis
    ) -> list[Diagnostic]:
        found: list[Diagnostic] = []
        for component in analysis.cycles():
            edges = analysis.cycle_edges(component)
            if not edges:  # pragma: no cover - SCC > 1 implies edges
                continue
            locks = ", ".join(str(lock) for lock in component)
            detail = "; ".join(
                f"{edge.src} -> {edge.dst} at {site.path}:{site.line} "
                f"({site.via})"
                for edge, site in edges
            )
            anchor = edges[0][1]
            found.append(self.diagnostic(
                anchor.path, anchor.line,
                f"lock-order inversion between {locks}: {detail}",
                hint="impose one global acquisition order (acquire "
                     "the smaller-scoped lock second), or narrow one "
                     "critical section so the locks never nest",
            ))
        return found


class BlockingUnderLockRule(ProjectRule):
    """RP009: no blocking primitive while holding a lock."""

    rule_id = "RP009"
    description = ("no Future.result/Queue.get/put/Event.wait/"
                   "thread join inside a lock-held region")

    def check_project(
        self, analysis: LockOrderAnalysis
    ) -> list[Diagnostic]:
        found: list[Diagnostic] = []
        for _minfo, fn in _functions(analysis):
            for blocked in fn.blocking:
                innermost = blocked.held[-1]
                found.append(self.diagnostic(
                    blocked.path, blocked.line,
                    f"blocking call {blocked.call}() while holding "
                    f"{innermost} — the lock is pinned for the full "
                    "wait and every contender stalls behind it",
                    hint="hoist the blocking call out of the "
                         "critical section (collect under the lock, "
                         "wait outside), or wait on the lock's own "
                         "Condition",
                ))
        return found


class DispatchUnderLockRule(ProjectRule):
    """RP010: no callback / cross-module dispatch under a held lock."""

    rule_id = "RP010"
    description = ("no stored-callback, callable-parameter, or "
                   "lock-acquiring cross-module call inside a "
                   "lock-held region")

    def check_project(
        self, analysis: LockOrderAnalysis
    ) -> list[Diagnostic]:
        found: list[Diagnostic] = []
        for minfo, fn in _functions(analysis):
            own_class = (
                minfo.classes.get(fn.class_name)
                if fn.class_name is not None else None
            )
            for event in fn.calls:
                if not event.held:
                    continue
                innermost = event.held[-1]
                callback = self._callback_description(
                    event, fn, analysis, minfo, own_class)
                if callback is not None:
                    found.append(self.diagnostic(
                        fn.module, event.line,
                        f"{callback} called while holding "
                        f"{innermost} — arbitrary code runs inside "
                        "the critical section",
                        hint="collect what the callback needs under "
                             "the lock, invoke it after release",
                    ))
                    continue
                target = analysis.resolve_call(event, fn, minfo)
                if target is None:
                    continue
                foreign = sorted(
                    {str(lock) for lock in analysis.footprint(target)
                     if lock.module != fn.module},
                )
                if foreign:
                    found.append(self.diagnostic(
                        fn.module, event.line,
                        f"call {event.render()}() under {innermost} "
                        f"dispatches into another lock-owning module "
                        f"(acquires {', '.join(foreign)})",
                        hint="move the cross-module call outside the "
                             "critical section, or document the "
                             "global order with an allowlist binding",
                    ))
        return found

    @staticmethod
    def _callback_description(
        event: CallEvent, fn: FunctionInfo, analysis: LockOrderAnalysis,
        minfo: ModuleInfo, own_class: ClassInfo | None,
    ) -> str | None:
        func = event.func
        if isinstance(func, ast.Name):
            name = func.id
            # a resolvable local/nested/module function is not a
            # callback — the resolved branch handles it
            if analysis.resolve_call(event, fn, minfo) is not None:
                return None
            if name in fn.params:
                return f"callable parameter {name}"
            return None
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id in ("self", "cls") \
                and own_class is not None \
                and func.attr in own_class.callback_attrs:
            return f"stored callback self.{func.attr}"
        return None


class LockPublicationRule(ProjectRule):
    """RP011: lock attributes never escape their owner class."""

    rule_id = "RP011"
    description = ("a lock attribute is private to its owner: never "
                   "returned, passed along, or read off a foreign "
                   "receiver")

    def check_project(
        self, analysis: LockOrderAnalysis
    ) -> list[Diagnostic]:
        found: list[Diagnostic] = []
        for _minfo, fn in _functions(analysis):
            for publication in fn.publications:
                found.append(self.diagnostic(
                    publication.path, publication.line,
                    f"{fn.qualname} {publication.detail} — a "
                    "published lock invites acquisition orders the "
                    "owner class cannot see",
                    hint="expose an operation, not the lock; lock "
                         "composition goes through "
                         "threading.Condition or repro.locks."
                         "wrap_lock at construction",
                ))
        return found


#: every concurrency project rule, in id order
ALL_PROJECT_RULES: tuple[type[ProjectRule], ...] = (
    LockOrderInversionRule,
    BlockingUnderLockRule,
    DispatchUnderLockRule,
    LockPublicationRule,
)


__all__ = [
    "ALL_PROJECT_RULES",
    "BlockingUnderLockRule",
    "DispatchUnderLockRule",
    "LockOrderInversionRule",
    "LockPublicationRule",
    "ProjectRule",
]
