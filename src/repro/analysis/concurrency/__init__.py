"""Concurrency correctness tooling: static lock-order analysis
(RP008–RP011 project rules over a whole-tree lock acquisition graph)
plus the deterministic runtime lock/race sanitizer installed through
the :mod:`repro.locks` hook seam."""

from repro.analysis.concurrency.lockgraph import (
    Acquisition,
    BlockingCall,
    LockId,
    LockOrderAnalysis,
    OrderEdge,
    Publication,
    extract_module,
)
from repro.analysis.concurrency.rules import (
    ALL_PROJECT_RULES,
    BlockingUnderLockRule,
    DispatchUnderLockRule,
    LockOrderInversionRule,
    LockPublicationRule,
    ProjectRule,
)
from repro.analysis.concurrency.sanitizer import (
    SanitizedLock,
    Sanitizer,
    SanitizerConfig,
    SanitizerFinding,
    SanitizerReport,
)

__all__ = [
    "ALL_PROJECT_RULES",
    "Acquisition",
    "BlockingCall",
    "BlockingUnderLockRule",
    "DispatchUnderLockRule",
    "LockId",
    "LockOrderAnalysis",
    "LockOrderInversionRule",
    "LockPublicationRule",
    "OrderEdge",
    "ProjectRule",
    "Publication",
    "SanitizedLock",
    "Sanitizer",
    "SanitizerConfig",
    "SanitizerFinding",
    "SanitizerReport",
    "extract_module",
]
