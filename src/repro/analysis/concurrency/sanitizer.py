"""The deterministic runtime lock/race sanitizer ("tsan-lite").

The runtime counterpart of the static RP008–RP011 rules: where the
static pass proves properties of the *code*, the sanitizer observes
one *execution* — through the :mod:`repro.locks` hook seam — and
flags what actually happened:

* **lock-order inversions** — every thread's lock-nesting sequence
  feeds a global set of observed order edges (``A`` held while ``B``
  acquired); the first time both ``A -> B`` and ``B -> A`` are seen,
  the pair is reported, whether or not the interleaving deadlocked
  this time;
* **unsynchronized access pairs** — annotated shared structures
  (:func:`repro.locks.note_read` / :func:`~repro.locks.note_write`)
  are checked with a vector-clock happens-before relation: locks
  carry release frontiers (acquire joins them), fork/join points
  (:func:`~repro.locks.note_fork` / :func:`~repro.locks.note_join`)
  order pool workers against their parent, and two accesses to one
  location are racy when neither happens-before the other *and* their
  held-lock sets are disjoint.

Determinism rules (DESIGN.md §5h): lock identity is the *role name*
given to :func:`repro.locks.wrap_lock` — never a thread id or object
address — findings are deduplicated by ``(kind, subject)`` and the
report renders every section sorted, so two same-seed runs produce
byte-identical reports even under real thread interleavings (role
sets and nesting edges are properties of the code paths executed, not
of the schedule).  With no sanitizer installed the hook seam returns
raw locks and the whole module never loads: answers are bit-identical
off, matching the resilience/observability zero-cost pattern.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Any

_VectorClock = dict[int, int]


def _join(into: _VectorClock, other: _VectorClock) -> None:
    """Pointwise maximum, in place."""
    for index, tick in other.items():
        if into.get(index, 0) < tick:
            into[index] = tick


def _ordered_before(vector: _VectorClock, index: int,
                    now: _VectorClock) -> bool:
    """Whether the access stamped ``vector`` (by thread ``index``)
    happens-before the current frontier ``now``."""
    return vector.get(index, 0) <= now.get(index, 0) \
        and vector.get(index, 0) > 0


@dataclass(frozen=True)
class SanitizerConfig:
    """Knobs of the runtime sanitizer (all deterministic).

    ``seed`` only labels the report (the workload's own seed); the
    sanitizer adds no randomness of its own.  ``track_order`` /
    ``track_races`` gate the two checkers independently.
    """

    seed: int = 0
    track_order: bool = True
    track_races: bool = True

    @classmethod
    def from_env(cls) -> SanitizerConfig:
        """Configuration for ``SVQA_SANITIZE=1`` activation."""
        try:
            seed = int(os.environ.get("SVQA_SANITIZE_SEED", "0"))
        except ValueError:
            seed = 0
        return cls(seed=seed)


@dataclass(frozen=True)
class SanitizerFinding:
    """One deduplicated runtime finding."""

    kind: str      # "lock-order-inversion" | "unsynchronized-*"
    subject: str   # lock pair or structure name (stable sort key)
    detail: str

    def render(self) -> str:
        return f"- [{self.kind}] {self.subject}: {self.detail}"


@dataclass(frozen=True)
class SanitizerReport:
    """A deterministic summary of one sanitized execution."""

    seed: int
    lock_roles: tuple[str, ...]
    structures: tuple[str, ...]
    order_edges: tuple[str, ...]
    findings: tuple[SanitizerFinding, ...]

    @property
    def clean(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines = [
            f"== concurrency sanitizer report (seed={self.seed}) ==",
            "lock roles: " + (", ".join(self.lock_roles) or "(none)"),
            "shared structures: "
            + (", ".join(self.structures) or "(none)"),
            "order edges: "
            + ("; ".join(self.order_edges) or "(none)"),
        ]
        if self.findings:
            lines.append(f"findings ({len(self.findings)}):")
            lines.extend(f.render() for f in self.findings)
        else:
            lines.append("findings: none")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dict with a stable key set."""
        return {
            "seed": self.seed,
            "lock_roles": list(self.lock_roles),
            "structures": list(self.structures),
            "order_edges": list(self.order_edges),
            "findings": [
                {"kind": f.kind, "subject": f.subject,
                 "detail": f.detail}
                for f in self.findings
            ],
        }


class SanitizedLock:
    """A lock wrapper reporting acquire/release to the sanitizer.

    Duck-types the ``threading.Lock`` surface (``acquire`` /
    ``release`` / context manager), so it composes with
    ``threading.Condition`` — whose release-and-reacquire inside
    ``wait()`` then feeds the sanitizer exactly the happens-before
    edges a condition handoff creates.
    """

    __slots__ = ("_inner", "name", "_sanitizer")

    def __init__(self, inner: Any, name: str,
                 sanitizer: Sanitizer) -> None:
        self._inner = inner
        self.name = name
        self._sanitizer = sanitizer

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool:
        acquired = bool(self._inner.acquire(blocking, timeout))
        if acquired:
            self._sanitizer.on_acquire(self)
        return acquired

    def release(self) -> None:
        self._sanitizer.on_release(self)
        self._inner.release()

    def locked(self) -> bool:
        probe = getattr(self._inner, "locked", None)
        return bool(probe()) if probe is not None else False

    def __enter__(self) -> SanitizedLock:
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.release()
        return False


class _ThreadState:
    """One thread's vector clock and held-lock stack."""

    __slots__ = ("index", "vector", "held")

    def __init__(self, index: int) -> None:
        self.index = index
        self.vector: _VectorClock = {index: 1}
        #: (role name, reentrancy count), innermost last
        self.held: list[list[Any]] = []


class _AccessRecord:
    """Last write and last-read-per-thread of one shared location."""

    __slots__ = ("write", "reads")

    def __init__(self) -> None:
        #: (thread index, vector copy, lockset) of the last write
        self.write: tuple[int, _VectorClock, frozenset[str]] | None = None
        #: thread index -> (vector copy, lockset) of its last read
        self.reads: dict[int, tuple[_VectorClock, frozenset[str]]] = {}


class Sanitizer:
    """The installable lock observer (see :mod:`repro.locks`).

    All state is guarded by one private leaf lock; sanitizer entry
    points never acquire an instrumented lock, so instrumenting
    cannot introduce the inversions it exists to detect.
    """

    def __init__(self, config: SanitizerConfig | None = None) -> None:
        self.config = config if config is not None else SanitizerConfig()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._states: list[_ThreadState] = []
        self._lock_roles: set[str] = set()
        self._acquire_edges: set[tuple[str, str]] = set()
        self._lock_vectors: dict[str, _VectorClock] = {}
        self._accesses: dict[tuple[str, object], _AccessRecord] = {}
        self._structures: set[str] = set()
        self._findings: dict[tuple[str, str], str] = {}
        self._fork_vector: _VectorClock | None = None

    # -- observer protocol (repro.locks) -------------------------------
    def wrap(self, lock: Any, name: str) -> SanitizedLock:
        """Instrument one lock under the given role name."""
        with self._lock:
            self._lock_roles.add(name)
        return SanitizedLock(lock, name, self)

    def on_acquire(self, lock: SanitizedLock) -> None:
        """Called by :class:`SanitizedLock` after the inner acquire."""
        with self._lock:
            state = self._state()
            for entry in reversed(state.held):
                if entry[0] == lock.name:
                    entry[1] += 1  # reentrant reacquisition
                    return
            if self.config.track_order:
                for held_name, _count in state.held:
                    self._observe_edge(held_name, lock.name)
            frontier = self._lock_vectors.get(lock.name)
            if frontier is not None:
                _join(state.vector, frontier)
            state.held.append([lock.name, 1])

    def on_release(self, lock: SanitizedLock) -> None:
        """Called by :class:`SanitizedLock` before the inner release."""
        with self._lock:
            state = self._state()
            for position in range(len(state.held) - 1, -1, -1):
                if state.held[position][0] == lock.name:
                    state.held[position][1] -= 1
                    if state.held[position][1] == 0:
                        del state.held[position]
                        self._tick(state)
                        frontier = self._lock_vectors.setdefault(
                            lock.name, {})
                        _join(frontier, state.vector)
                    return

    def note_access(self, structure: str, key: object,
                    write: bool) -> None:
        """One annotated read/write of a shared location."""
        if not self.config.track_races:
            return
        with self._lock:
            state = self._state()
            self._structures.add(structure)
            self._tick(state)
            lockset = frozenset(name for name, _ in state.held)
            record = self._accesses.setdefault(
                (structure, key), _AccessRecord())
            self._check_conflicts(structure, state, lockset, record,
                                  write)
            stamp = dict(state.vector)
            if write:
                record.write = (state.index, stamp, lockset)
                record.reads.pop(state.index, None)
            else:
                record.reads[state.index] = (stamp, lockset)

    def note_fork(self) -> None:
        """New worker threads will inherit the caller's frontier."""
        with self._lock:
            state = self._state()
            self._tick(state)
            if self._fork_vector is None:
                self._fork_vector = {}
            _join(self._fork_vector, state.vector)

    def note_join(self) -> None:
        """The caller synchronized with every thread seen so far."""
        with self._lock:
            state = self._state()
            for other in self._states:
                _join(state.vector, other.vector)
            self._tick(state)

    # -- internals ------------------------------------------------------
    def _state(self) -> _ThreadState:
        """The calling thread's state (``self._lock`` must be held)."""
        state: _ThreadState | None = getattr(self._local, "state", None)
        if state is None:
            state = _ThreadState(len(self._states))
            if self._fork_vector is not None:
                _join(state.vector, self._fork_vector)
            self._states.append(state)
            self._local.state = state
        return state

    @staticmethod
    def _tick(state: _ThreadState) -> None:
        state.vector[state.index] = state.vector.get(state.index, 0) + 1

    def _observe_edge(self, src: str, dst: str) -> None:
        if src == dst:
            return
        self._acquire_edges.add((src, dst))
        if (dst, src) in self._acquire_edges:
            first, second = sorted((src, dst))
            self._record_finding(
                "lock-order-inversion",
                f"{first} <-> {second}",
                f"both acquisition orders observed: {first} -> "
                f"{second} and {second} -> {first} — two threads "
                "taking them concurrently can deadlock",
            )

    def _check_conflicts(
        self,
        structure: str,
        state: _ThreadState,
        lockset: frozenset[str],
        record: _AccessRecord,
        write: bool,
    ) -> None:
        conflicts: list[tuple[int, _VectorClock, frozenset[str],
                              str]] = []
        if record.write is not None:
            w_index, w_vector, w_lockset = record.write
            kind = "unsynchronized-write-write" if write \
                else "unsynchronized-read-write"
            conflicts.append((w_index, w_vector, w_lockset, kind))
        if write:
            for r_index in sorted(record.reads):
                r_vector, r_lockset = record.reads[r_index]
                conflicts.append((r_index, r_vector, r_lockset,
                                  "unsynchronized-read-write"))
        for other_index, other_vector, other_lockset, kind in conflicts:
            if other_index == state.index:
                continue  # program order within one thread
            if _ordered_before(other_vector, other_index, state.vector):
                continue  # happens-before established
            if lockset & other_lockset:
                continue  # a common lock serializes the pair
            self._record_finding(
                kind, structure,
                "two threads touch this structure with no common "
                "lock and no happens-before edge between them",
            )

    def _record_finding(self, kind: str, subject: str,
                        detail: str) -> None:
        self._findings.setdefault((kind, subject), detail)

    # -- reporting ------------------------------------------------------
    def report(self) -> SanitizerReport:
        """Freeze observations into a deterministic report."""
        with self._lock:
            findings = tuple(
                SanitizerFinding(kind, subject, detail)
                for (kind, subject), detail in sorted(
                    self._findings.items())
            )
            return SanitizerReport(
                seed=self.config.seed,
                lock_roles=tuple(sorted(self._lock_roles)),
                structures=tuple(sorted(self._structures)),
                order_edges=tuple(
                    f"{src} -> {dst}"
                    for src, dst in sorted(self._acquire_edges)
                ),
                findings=findings,
            )


__all__ = [
    "SanitizedLock",
    "Sanitizer",
    "SanitizerConfig",
    "SanitizerFinding",
    "SanitizerReport",
]
