"""Static lock-order model: extraction, call graph, acquisition edges.

This is the analysis core behind lint rules RP008–RP011
(:mod:`repro.analysis.concurrency.rules`).  It runs in three passes
over every module handed to the linter:

1. **extraction** — each class's lock attributes (``self._lock = threading.Lock()``,
   dataclass lock fields, :func:`repro.locks.wrap_lock` wrappers,
   ``threading.Condition(self._lock)`` aliases), each function's
   lock-held regions (``with self._lock:`` scopes, including local
   locks closed over by nested functions), and — per statement walked
   with the held-set threaded through — every call, blocking
   primitive, and lock publication observed under (or outside) a held
   lock;
2. **call graph** — call sites are resolved to analyzed functions via
   ``self`` methods, constructor-recorded attribute types
   (``self.svqa = svqa`` with an annotated parameter), local variable
   types (``batch = BatchExecutor(...)``), import aliases, and nested
   function scopes; unresolved targets contribute nothing (the
   analysis under-approximates rather than guesses);
3. **lock-order graph** — a directed edge ``A -> B`` is recorded
   whenever ``B`` is acquired (directly, or anywhere in a resolved
   callee's transitive *footprint*) while ``A`` is held.  Cycles in
   this graph are RP008 deadlock candidates.

Lock identity is ``(module, owner, attr)`` where ``owner`` is the
defining class (``KeyCentricCache._inflight_lock``) or, for local
locks, the defining function (``BatchExecutor.run.shard_lock``) — two
instances of one role are deliberately conflated, which is the
standard conservative choice for order analysis.
"""

from __future__ import annotations

import ast
import builtins
import re
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import PurePath

from repro.analysis.code_rules import qualified_name, resolve_aliases

#: constructors whose result is a lock (or lock wrapper)
LOCK_FACTORY_SUFFIXES: tuple[str, ...] = (
    "threading.Lock",
    "threading.RLock",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
)

#: attribute names that read as a private lock (RP011's publication test)
_PRIVATE_LOCK_RE = re.compile(r"^_(?:\w+_)?r?locks?(?:_\w+)?$",
                              re.IGNORECASE)

#: ``lock``/``cond`` must appear as a word segment (``_lock``,
#: ``state_lock``, ``rlock``, ``io_cond``), not as an incidental
#: substring (``clock``, ``block``, ``second``)
_LOCK_SEGMENT_RE = re.compile(r"(?:^|_)r?lock", re.IGNORECASE)
_COND_SEGMENT_RE = re.compile(r"(?:^|_)r?cond", re.IGNORECASE)


def _lockish_name(name: str) -> bool:
    return _LOCK_SEGMENT_RE.search(name) is not None


def _condish_name(name: str) -> bool:
    return _COND_SEGMENT_RE.search(name) is not None

#: callees a lock may legitimately be handed to (lock composition)
PUBLICATION_EXEMPT_CALLEES: frozenset[str] = frozenset({
    "threading.Condition",
    "repro.locks.wrap_lock",
    "locks.wrap_lock",
    "wrap_lock",
})

#: modules whose locks are invisible to the order analysis: the
#: instrumentation seam's ``_install_lock`` is a private leaf taken
#: inside ``wrap_lock`` under arbitrary callers' locks by design
#: (it guards observer installation only and never nests outward)
SEAM_MODULE_SUFFIXES: tuple[str, ...] = ("repro/locks.py",)


def _is_seam_lock(lock: LockId) -> bool:
    normalized = lock.module.replace("\\", "/")
    return any(normalized.endswith(suffix)
               for suffix in SEAM_MODULE_SUFFIXES)

#: method names that block the calling thread (RP009)
BLOCKING_ATTRS: frozenset[str] = frozenset({
    "result", "join", "wait", "get", "put",
})

_BUILTIN_NAMES: frozenset[str] = frozenset(dir(builtins))


@dataclass(frozen=True)
class LockId:
    """One lock role: ``(module, owner, attr)``."""

    module: str
    owner: str
    attr: str

    def __str__(self) -> str:
        return f"{self.owner}.{self.attr}"

    @property
    def short_module(self) -> str:
        return PurePath(self.module).name


@dataclass(frozen=True)
class Acquisition:
    """One ``with <lock>:`` entry and the locks already held there."""

    lock: LockId
    held: tuple[LockId, ...]
    path: str
    line: int


@dataclass(frozen=True)
class BlockingCall:
    """A blocking primitive invoked while at least one lock is held."""

    call: str
    held: tuple[LockId, ...]
    path: str
    line: int


@dataclass(frozen=True)
class Publication:
    """A lock attribute escaping its owner class (RP011)."""

    kind: str       # "return" | "foreign-access" | "argument"
    detail: str
    path: str
    line: int


@dataclass
class CallEvent:
    """One call site, with the locks held when it executes."""

    func: ast.expr
    held: tuple[LockId, ...]
    line: int

    def render(self) -> str:
        try:
            return ast.unparse(self.func)
        except Exception:  # pragma: no cover - unparse is best-effort
            return "<call>"


@dataclass
class FunctionInfo:
    """One analyzed function (module-level, method, or nested)."""

    module: str
    qualname: str
    class_name: str | None
    params: frozenset[str] = frozenset()
    callable_params: frozenset[str] = frozenset()
    acquisitions: list[Acquisition] = field(default_factory=list)
    calls: list[CallEvent] = field(default_factory=list)
    blocking: list[BlockingCall] = field(default_factory=list)
    publications: list[Publication] = field(default_factory=list)
    local_types: dict[str, str] = field(default_factory=dict)
    nested: dict[str, FunctionInfo] = field(default_factory=dict)
    parent: FunctionInfo | None = None


@dataclass
class ClassInfo:
    """One class's lock/attribute metadata."""

    module: str
    name: str
    locks: set[str] = field(default_factory=set)
    aliases: dict[str, str] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)
    callback_attrs: set[str] = field(default_factory=set)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)

    def canonical(self, attr: str) -> str:
        """Follow ``Condition(self._lock)``-style aliases one step."""
        return self.aliases.get(attr, attr)

    def lock_id(self, attr: str) -> LockId:
        return LockId(self.module, self.name, self.canonical(attr))


@dataclass
class ModuleInfo:
    """One module's extracted classes, functions, and import aliases."""

    path: str
    aliases: dict[str, str] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    all_functions: list[FunctionInfo] = field(default_factory=list)


@dataclass(frozen=True)
class OrderEdge:
    """``src`` held while ``dst`` is acquired."""

    src: LockId
    dst: LockId


@dataclass(frozen=True)
class EdgeSite:
    """Where (and how) an order edge was first observed."""

    path: str
    line: int
    via: str


def _annotation_name(node: ast.expr | None) -> str | None:
    """The head type name of a parameter annotation, if recoverable."""
    if node is None:
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_name(node.left)
    if isinstance(node, ast.Subscript):
        return _annotation_name(node.value)
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split("[")[0].split(".")[-1].strip()
    return None


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` as a string when the expression is a plain chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_lock_factory(call: ast.Call, aliases: dict[str, str]) -> bool:
    name = qualified_name(call.func, aliases)
    if name is None:
        return False
    if name.endswith("wrap_lock"):
        return True
    return any(name == suffix or name.endswith("." + suffix)
               for suffix in LOCK_FACTORY_SUFFIXES)


def _condition_alias_target(call: ast.Call,
                            aliases: dict[str, str]) -> str | None:
    """``threading.Condition(self.X)`` -> ``X`` (the aliased lock)."""
    name = qualified_name(call.func, aliases)
    if name is None or not name.endswith("Condition"):
        return None
    if call.args and isinstance(call.args[0], ast.Attribute):
        target = call.args[0]
        if isinstance(target.value, ast.Name) and target.value.id == "self":
            return target.attr
    return None


def _is_condition_factory(call: ast.Call, aliases: dict[str, str]) -> bool:
    name = qualified_name(call.func, aliases)
    return name is not None and name.endswith("Condition")


class _FunctionWalker:
    """Walks one function body threading the held-lock set through."""

    def __init__(
        self,
        info: FunctionInfo,
        klass: ClassInfo | None,
        module: ModuleInfo,
        closure_locks: dict[str, LockId],
    ) -> None:
        self.info = info
        self.klass = klass
        self.module = module
        # local lock variables visible here (own + enclosing functions)
        self.local_locks: dict[str, LockId] = dict(closure_locks)

    # -- lock reference resolution ------------------------------------
    def _lock_from_expr(self, expr: ast.expr) -> LockId | None:
        """The lock a ``with`` item (or blocking receiver) refers to."""
        if isinstance(expr, ast.Attribute) \
                and isinstance(expr.value, ast.Name) \
                and expr.value.id in ("self", "cls"):
            attr = expr.attr
            if self.klass is not None:
                canonical = self.klass.canonical(attr)
                if canonical in self.klass.locks:
                    return self.klass.lock_id(attr)
            if _lockish_name(attr) or _condish_name(attr):
                owner = self.klass.name if self.klass is not None \
                    else self.info.qualname
                return LockId(self.info.module, owner, attr)
            return None
        if isinstance(expr, ast.Name):
            known = self.local_locks.get(expr.id)
            if known is not None:
                return known
            if _lockish_name(expr.id) or _condish_name(expr.id):
                return LockId(self.info.module, self.info.qualname,
                              expr.id)
        return None

    # -- the statement walk -------------------------------------------
    def walk(self, statements: list[ast.stmt],
             held: tuple[LockId, ...]) -> None:
        for stmt in statements:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._handle_with(stmt, held)
            elif isinstance(stmt, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                self._handle_nested(stmt)
            elif isinstance(stmt, ast.ClassDef):
                continue  # local classes own their locking story
            elif isinstance(stmt, ast.If):
                self._scan_expr(stmt.test, held)
                self.walk(stmt.body, held)
                self.walk(stmt.orelse, held)
            elif isinstance(stmt, ast.While):
                self._scan_expr(stmt.test, held)
                self.walk(stmt.body, held)
                self.walk(stmt.orelse, held)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_expr(stmt.iter, held)
                self.walk(stmt.body, held)
                self.walk(stmt.orelse, held)
            elif isinstance(stmt, ast.Try):
                self.walk(stmt.body, held)
                for handler in stmt.handlers:
                    self.walk(handler.body, held)
                self.walk(stmt.orelse, held)
                self.walk(stmt.finalbody, held)
            else:
                self._track_local_lock(stmt)
                self._track_local_type(stmt)
                if isinstance(stmt, ast.Return):
                    self._check_return(stmt)
                self._scan_stmt_exprs(stmt, held)

    def _handle_with(self, stmt: ast.With | ast.AsyncWith,
                     held: tuple[LockId, ...]) -> None:
        acquired: list[LockId] = []
        for item in stmt.items:
            self._scan_expr(item.context_expr, held)
            lock = self._lock_from_expr(item.context_expr)
            if lock is not None:
                self.info.acquisitions.append(Acquisition(
                    lock, held, self.info.module, stmt.lineno,
                ))
                if lock not in held and lock not in acquired:
                    acquired.append(lock)
        self.walk(stmt.body, held + tuple(acquired))

    def _handle_nested(
        self, stmt: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        nested = _analyze_function(
            stmt, self.klass, self.module,
            qualname=f"{self.info.qualname}.{stmt.name}",
            closure_locks=self.local_locks,
            parent=self.info,
        )
        self.info.nested[stmt.name] = nested

    # -- local variable tracking --------------------------------------
    def _track_local_lock(self, stmt: ast.stmt) -> None:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            return
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            return
        value = stmt.value
        if isinstance(value, ast.Call) and (
            _is_lock_factory(value, self.module.aliases)
            or _is_condition_factory(value, self.module.aliases)
        ):
            self.local_locks[target.id] = LockId(
                self.info.module, self.info.qualname, target.id,
            )

    def _track_local_type(self, stmt: ast.stmt) -> None:
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value = stmt.target, stmt.value
            if isinstance(target, ast.Name):
                name = _annotation_name(stmt.annotation)
                if name is not None:
                    self.info.local_types[target.id] = name
        if not isinstance(target, ast.Name) \
                or not isinstance(value, ast.Call):
            return
        callee = qualified_name(value.func, self.module.aliases)
        if callee is not None:
            head = callee.split(".")[-1]
            if head and head[0].isupper():
                self.info.local_types[target.id] = head

    # -- RP011 return publication -------------------------------------
    def _check_return(self, stmt: ast.Return) -> None:
        value = stmt.value
        if not isinstance(value, ast.Attribute) \
                or not isinstance(value.value, ast.Name) \
                or value.value.id not in ("self", "cls"):
            return
        attr = value.attr
        owns = self.klass is not None \
            and self.klass.canonical(attr) in self.klass.locks
        if owns or _PRIVATE_LOCK_RE.match(attr):
            self.info.publications.append(Publication(
                "return", f"returns lock attribute self.{attr}",
                self.info.module, stmt.lineno,
            ))

    # -- expression scanning ------------------------------------------
    def _scan_stmt_exprs(self, stmt: ast.stmt,
                         held: tuple[LockId, ...]) -> None:
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(child, held)

    def _scan_expr(self, expr: ast.expr,
                   held: tuple[LockId, ...]) -> None:
        for node in self._walk_expr(expr):
            if isinstance(node, ast.Call):
                self._process_call(node, held)
            elif isinstance(node, ast.Attribute):
                self._check_foreign_access(node)

    @staticmethod
    def _walk_expr(expr: ast.expr) -> list[ast.AST]:
        """Every node of ``expr`` except lambda bodies (not executed
        at this point in the control flow)."""
        found: list[ast.AST] = []
        stack: list[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            found.append(node)
            if isinstance(node, ast.Lambda):
                continue
            stack.extend(ast.iter_child_nodes(node))
        return found

    def _process_call(self, call: ast.Call,
                      held: tuple[LockId, ...]) -> None:
        self.info.calls.append(CallEvent(call.func, held, call.lineno))
        if held:
            self._check_blocking(call, held)
        self._check_argument_publication(call)

    def _check_blocking(self, call: ast.Call,
                        held: tuple[LockId, ...]) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute) \
                or func.attr not in BLOCKING_ATTRS:
            return
        receiver = func.value
        attr = func.attr
        if attr == "join":
            # exclude str.join / os.path.join lookalikes
            if isinstance(receiver, ast.Constant):
                return
            dotted = _dotted(receiver)
            if dotted is not None and (
                dotted in ("os", "os.path") or dotted.endswith("path")
            ):
                return
        if attr in ("get", "put"):
            dotted = _dotted(receiver)
            if dotted is None \
                    or "queue" not in dotted.split(".")[-1].lower():
                return
        if attr == "wait":
            lock = self._lock_from_expr(receiver)
            if lock is not None and lock in held:
                return  # Condition.wait on the held lock: the pattern
        rendered = _dotted(receiver) or "<expr>"
        self.info.blocking.append(BlockingCall(
            f"{rendered}.{attr}", held, self.info.module, call.lineno,
        ))

    def _check_argument_publication(self, call: ast.Call) -> None:
        lock_args = [
            arg for arg in list(call.args)
            + [kw.value for kw in call.keywords]
            if isinstance(arg, ast.Attribute)
            and isinstance(arg.value, ast.Name)
            and arg.value.id in ("self", "cls")
            and (
                (self.klass is not None
                 and self.klass.canonical(arg.attr) in self.klass.locks)
                or _PRIVATE_LOCK_RE.match(arg.attr)
            )
        ]
        if not lock_args:
            return
        callee = qualified_name(call.func, self.module.aliases)
        if callee is not None and (
            callee in PUBLICATION_EXEMPT_CALLEES
            or callee.endswith("Condition")
            or callee.endswith("wrap_lock")
        ):
            return
        for arg in lock_args:
            self.info.publications.append(Publication(
                "argument",
                f"passes lock attribute self.{arg.attr} to "
                f"{callee or 'a call'}",
                self.info.module, call.lineno,
            ))

    def _check_foreign_access(self, node: ast.Attribute) -> None:
        if not _PRIVATE_LOCK_RE.match(node.attr):
            return
        root = node.value
        while isinstance(root, ast.Attribute):
            root = root.value
        if not isinstance(root, ast.Name):
            return
        if root.id in ("self", "cls"):
            return
        # module receivers (threading, repro.locks, ...) are not
        # instances publishing their lock
        if root.id in self.module.aliases or root.id in (
            "threading", "locks",
        ):
            return
        rendered = _dotted(node) or node.attr
        self.info.publications.append(Publication(
            "foreign-access",
            f"accesses another object's lock attribute {rendered}",
            self.info.module, node.lineno,
        ))


def _analyze_function(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    klass: ClassInfo | None,
    module: ModuleInfo,
    qualname: str,
    closure_locks: dict[str, LockId] | None = None,
    parent: FunctionInfo | None = None,
) -> FunctionInfo:
    args = node.args
    all_args = (list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs))
    params = frozenset(
        a.arg for a in all_args if a.arg not in ("self", "cls")
    )
    callable_params = frozenset(
        a.arg for a in all_args
        if a.annotation is not None
        and "Callable" in ast.dump(a.annotation)
    )
    info = FunctionInfo(
        module=module.path,
        qualname=qualname,
        class_name=klass.name if klass is not None else None,
        params=params,
        callable_params=callable_params,
        parent=parent,
    )
    # annotated parameters seed the local type table
    for a in all_args:
        name = _annotation_name(a.annotation)
        if name is not None and name[0].isupper() \
                and "Callable" not in name:
            info.local_types[a.arg] = name
    walker = _FunctionWalker(info, klass, module,
                             dict(closure_locks or {}))
    walker.walk(node.body, held=())
    module.all_functions.append(info)
    return info


def _extract_class_metadata(node: ast.ClassDef,
                            module: ModuleInfo) -> ClassInfo:
    klass = ClassInfo(module=module.path, name=node.name)
    # dataclass-style lock fields at class level
    for item in node.body:
        if isinstance(item, ast.AnnAssign) \
                and isinstance(item.target, ast.Name):
            target = item.target.id
            if _lockish_name(target):
                klass.locks.add(target)
            else:
                name = _annotation_name(item.annotation)
                if name in ("Lock", "RLock"):
                    klass.locks.add(target)
    # instance attributes assigned in any method
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Assign) or len(sub.targets) != 1:
            continue
        target = sub.targets[0]
        if not isinstance(target, ast.Attribute) \
                or not isinstance(target.value, ast.Name) \
                or target.value.id != "self":
            continue
        attr = target.attr
        value = sub.value
        if isinstance(value, ast.Call):
            alias_target = _condition_alias_target(value, module.aliases)
            if alias_target is not None:
                klass.aliases[attr] = alias_target
                klass.locks.add(alias_target)
                continue
            if _is_lock_factory(value, module.aliases) \
                    or _is_condition_factory(value, module.aliases):
                klass.locks.add(attr)
                continue
            callee = qualified_name(value.func, module.aliases)
            if callee is not None:
                head = callee.split(".")[-1]
                if head and head[0].isupper():
                    klass.attr_types[attr] = head
                    continue
        if _lockish_name(attr):
            klass.locks.add(attr)
    # constructor parameters stored on self: types and callbacks
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        annotations: dict[str, ast.expr | None] = {}
        args = item.args
        for a in (list(args.posonlyargs) + list(args.args)
                  + list(args.kwonlyargs)):
            annotations[a.arg] = a.annotation
        for sub in ast.walk(item):
            if not isinstance(sub, ast.Assign) or len(sub.targets) != 1:
                continue
            target = sub.targets[0]
            if not isinstance(target, ast.Attribute) \
                    or not isinstance(target.value, ast.Name) \
                    or target.value.id != "self" \
                    or not isinstance(sub.value, ast.Name):
                continue
            param = sub.value.id
            if param not in annotations:
                continue
            annotation = annotations[param]
            if annotation is not None \
                    and "Callable" in ast.dump(annotation):
                klass.callback_attrs.add(target.attr)
                continue
            name = _annotation_name(annotation)
            if name is not None and name and name[0].isupper():
                klass.attr_types.setdefault(target.attr, name)
    return klass


def extract_module(path: str, tree: ast.Module) -> ModuleInfo:
    """Extract one module's lock/call metadata."""
    module = ModuleInfo(path=path, aliases=resolve_aliases(tree))
    # two passes: class metadata first, so method analysis sees every
    # lock attribute regardless of definition order
    class_nodes = [n for n in tree.body if isinstance(n, ast.ClassDef)]
    for node in class_nodes:
        module.classes[node.name] = _extract_class_metadata(node, module)
    for node in class_nodes:
        klass = module.classes[node.name]
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                klass.methods[item.name] = _analyze_function(
                    item, klass, module,
                    qualname=f"{node.name}.{item.name}",
                )
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module.functions[node.name] = _analyze_function(
                node, None, module, qualname=node.name,
            )
    return module


class LockOrderAnalysis:
    """The cross-module lock-order graph and its supporting indexes."""

    def __init__(self, trees: Mapping[str, ast.Module]) -> None:
        self.modules: dict[str, ModuleInfo] = {
            path: extract_module(path, trees[path])
            for path in sorted(trees)
        }
        # bare-name indexes; ambiguous names resolve to nothing
        self._classes_by_name: dict[str, ClassInfo | None] = {}
        self._functions_by_name: dict[str, FunctionInfo | None] = {}
        for minfo in self.modules.values():
            for cname, cinfo in minfo.classes.items():
                if cname in self._classes_by_name:
                    self._classes_by_name[cname] = None
                else:
                    self._classes_by_name[cname] = cinfo
            for fname, finfo in minfo.functions.items():
                if fname in self._functions_by_name:
                    self._functions_by_name[fname] = None
                else:
                    self._functions_by_name[fname] = finfo
        self._footprints: dict[int, frozenset[LockId]] = {}
        self.edges: dict[OrderEdge, EdgeSite] = {}
        self._build_edges()

    # -- call resolution ----------------------------------------------
    def _class_by_name(self, name: str | None) -> ClassInfo | None:
        if name is None:
            return None
        return self._classes_by_name.get(name)

    def _method_of(self, cinfo: ClassInfo | None,
                   method: str) -> FunctionInfo | None:
        if cinfo is None:
            return None
        return cinfo.methods.get(method)

    def resolve_call(self, event: CallEvent, fn: FunctionInfo,
                     minfo: ModuleInfo) -> FunctionInfo | None:
        """The analyzed function a call site dispatches to, if known."""
        func = event.func
        if isinstance(func, ast.Name):
            name = func.id
            scope: FunctionInfo | None = fn
            while scope is not None:
                if name in scope.nested:
                    return scope.nested[name]
                scope = scope.parent
            if name in fn.params:
                return None  # a callback parameter: not resolvable
            if name in minfo.functions:
                return minfo.functions[name]
            klass = self._class_by_name(
                name if name in minfo.classes
                else _last_segment(minfo.aliases.get(name)))
            if name in minfo.classes:
                klass = minfo.classes[name]
            if klass is not None:
                return self._method_of(klass, "__init__")
            if name in minfo.aliases:
                imported = _last_segment(minfo.aliases[name])
                if imported is not None:
                    target = self._functions_by_name.get(imported)
                    if target is not None:
                        return target
            return None
        if not isinstance(func, ast.Attribute):
            return None
        receiver = func.value
        method = func.attr
        if isinstance(receiver, ast.Name):
            rid = receiver.id
            if rid in ("self", "cls") and fn.class_name is not None:
                own = minfo.classes.get(fn.class_name)
                return self._method_of(own, method)
            type_name = fn.local_types.get(rid)
            if type_name is not None:
                return self._method_of(
                    self._class_by_name(type_name), method)
            if rid in minfo.aliases:
                target = self._functions_by_name.get(method)
                if target is not None \
                        and _module_of(minfo.aliases[rid], target):
                    return target
            return None
        if isinstance(receiver, ast.Attribute) \
                and isinstance(receiver.value, ast.Name) \
                and receiver.value.id in ("self", "cls") \
                and fn.class_name is not None:
            own = minfo.classes.get(fn.class_name)
            if own is not None:
                type_name = own.attr_types.get(receiver.attr)
                if type_name is not None:
                    return self._method_of(
                        self._class_by_name(type_name), method)
        return None

    # -- transitive lock footprints -----------------------------------
    def footprint(self, fn: FunctionInfo) -> frozenset[LockId]:
        """Every lock ``fn`` may acquire, directly or via resolved
        callees (memoized; cycles contribute what was found so far)."""
        return self._footprint_of(fn, set())

    def _footprint_of(self, fn: FunctionInfo,
                      visiting: set[int]) -> frozenset[LockId]:
        key = id(fn)
        cached = self._footprints.get(key)
        if cached is not None:
            return cached
        if key in visiting:
            return frozenset()
        visiting.add(key)
        locks: set[LockId] = {a.lock for a in fn.acquisitions
                              if not _is_seam_lock(a.lock)}
        minfo = self.modules[fn.module]
        for event in fn.calls:
            target = self.resolve_call(event, fn, minfo)
            if target is not None:
                locks.update(self._footprint_of(target, visiting))
        visiting.discard(key)
        result = frozenset(locks)
        self._footprints[key] = result
        return result

    # -- the lock-order graph -----------------------------------------
    def _add_edge(self, src: LockId, dst: LockId,
                  path: str, line: int, via: str) -> None:
        if src == dst:
            return  # reentrant reacquisition of the same role
        edge = OrderEdge(src, dst)
        if edge not in self.edges:
            self.edges[edge] = EdgeSite(path, line, via)

    def _build_edges(self) -> None:
        for path in sorted(self.modules):
            minfo = self.modules[path]
            for fn in minfo.all_functions:
                for acq in fn.acquisitions:
                    for held in acq.held:
                        self._add_edge(held, acq.lock, acq.path,
                                       acq.line, "direct acquisition")
                for event in fn.calls:
                    if not event.held:
                        continue
                    target = self.resolve_call(event, fn, minfo)
                    if target is None:
                        continue
                    for lock in sorted(self.footprint(target), key=str):
                        for held in event.held:
                            self._add_edge(
                                held, lock, fn.module, event.line,
                                f"via call {event.render()}",
                            )

    def cycles(self) -> list[list[LockId]]:
        """Strongly connected components with more than one lock,
        sorted deterministically (each cycle starts at its smallest
        lock, cycles ordered by that lock)."""
        adjacency: dict[LockId, list[LockId]] = {}
        for edge in self.edges:
            adjacency.setdefault(edge.src, []).append(edge.dst)
            adjacency.setdefault(edge.dst, [])
        for node in adjacency:
            adjacency[node].sort(key=str)

        index_of: dict[LockId, int] = {}
        lowlink: dict[LockId, int] = {}
        on_stack: set[LockId] = set()
        stack: list[LockId] = []
        sccs: list[list[LockId]] = []
        counter = [0]

        def strongconnect(root: LockId) -> None:
            work: list[tuple[LockId, int]] = [(root, 0)]
            while work:
                node, child_index = work.pop()
                if child_index == 0:
                    index_of[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                children = adjacency.get(node, [])
                while child_index < len(children):
                    child = children[child_index]
                    child_index += 1
                    if child not in index_of:
                        work.append((node, child_index))
                        work.append((child, 0))
                        recurse = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node],
                                            index_of[child])
                if recurse:
                    continue
                if lowlink[node] == index_of[node]:
                    component: list[LockId] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        sccs.append(sorted(component, key=str))
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent],
                                          lowlink[node])

        for node in sorted(adjacency, key=str):
            if node not in index_of:
                strongconnect(node)
        sccs.sort(key=lambda component: str(component[0]))
        return sccs

    def cycle_edges(self, component: list[LockId]) -> list[
            tuple[OrderEdge, EdgeSite]]:
        """The edges internal to one cycle, deterministically ordered."""
        members = set(component)
        internal = [
            (edge, site) for edge, site in self.edges.items()
            if edge.src in members and edge.dst in members
        ]
        internal.sort(key=lambda pair: (str(pair[0].src),
                                        str(pair[0].dst)))
        return internal


def _last_segment(qualified: str | None) -> str | None:
    if qualified is None:
        return None
    return qualified.split(".")[-1]


def _module_of(qualified: str, fn: FunctionInfo) -> bool:
    """Whether an imported module name plausibly matches ``fn``'s
    defining module (suffix match on the file path)."""
    tail = qualified.split(".")[-1]
    return PurePath(fn.module).stem == tail


__all__ = [
    "Acquisition",
    "BlockingCall",
    "CallEvent",
    "ClassInfo",
    "EdgeSite",
    "FunctionInfo",
    "LockId",
    "LockOrderAnalysis",
    "ModuleInfo",
    "OrderEdge",
    "Publication",
    "extract_module",
]
