"""AST rules encoding this repo's invariants (the ``RP###`` set).

PR 1's concurrent batch engine introduced repo-wide invariants that
nothing enforced mechanically; each rule here is one of them:

========  =========  ====================================================
rule id   severity   invariant
========  =========  ====================================================
RP001     ERROR      no wall-clock reads (``time.time``,
                     ``perf_counter``, ``datetime.now``, ...) — all
                     timing goes through :mod:`repro.simtime`
                     (allowlisted: ``simtime.py`` itself and
                     ``core/batch.py``, whose measured wall-clock of a
                     batch run is the point of the metric)
RP002     ERROR      no unseeded RNGs: ``np.random.default_rng()``
                     without a seed, the legacy ``np.random.*`` global
                     functions, and the ``random`` module's global
                     state all break run-to-run determinism
RP003     ERROR      in lock-disciplined modules (``cache.py``,
                     ``stats.py``), public methods of a class that owns
                     a ``*lock*`` attribute may mutate shared ``self``
                     state only under ``with self._lock`` (private
                     ``_helpers`` are documented as lock-held)
RP004     ERROR      scheduler/executor hot paths must not iterate a
                     bare ``set`` expression (wrap in ``sorted()``) —
                     set order feeds ordered output and must be
                     deterministic
RP005     ERROR      no mutable default arguments
RP006     ERROR      failure handling goes through the resilience
                     registry: no silently-swallowed exceptions
                     (``except Exception:``/bare ``except`` whose body
                     only ``pass``/``continue``-es), and fault-site
                     string literals handed to the resilience guard
                     (``*.call(...)`` / ``*.check(...)`` on a
                     manager/injector) must be registered in
                     :data:`repro.resilience.faults.FAULT_SITES`
RP007     ERROR      candidate-index discipline: the
                     ``VertexCandidateIndex`` is mutated
                     (``add_label``/``remove_label``) only through the
                     ``Graph`` mutation API (allowlisted:
                     ``graph/model.py`` and ``graph/candidates.py``),
                     and executor cache-key tuples tagged ``"scope"``,
                     ``"scope-poss"`` or ``"path"`` must carry the
                     graph epoch as their second element
========  =========  ====================================================

Every rule is an :class:`ast.NodeVisitor`-based :class:`CodeRule`
producing :class:`~repro.analysis.diagnostics.Diagnostic` values; the
engine in :mod:`repro.analysis.code_linter` binds rules to path
scopes and allowlists.
"""

from __future__ import annotations

import ast

from repro.analysis.diagnostics import Diagnostic, Location, Severity

#: wall-clock entry points RP001 forbids outside the allowlist
WALL_CLOCK_CALLS: frozenset[str] = frozenset({
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: legacy global-state RNG entry points RP002 forbids
GLOBAL_RNG_CALLS: frozenset[str] = frozenset({
    "numpy.random.rand",
    "numpy.random.randn",
    "numpy.random.randint",
    "numpy.random.random",
    "numpy.random.choice",
    "numpy.random.shuffle",
    "numpy.random.permutation",
    "numpy.random.normal",
    "numpy.random.uniform",
    "numpy.random.seed",
    "random.random",
    "random.randint",
    "random.randrange",
    "random.choice",
    "random.choices",
    "random.shuffle",
    "random.sample",
    "random.uniform",
    "random.seed",
})

#: method names that mutate their receiver (RP003's mutation test)
MUTATOR_METHODS: frozenset[str] = frozenset({
    "append", "appendleft", "extend", "insert", "add", "discard",
    "remove", "pop", "popleft", "popitem", "clear", "update",
    "setdefault", "move_to_end",
})

#: constructors whose zero-arg call produces a mutable default (RP005)
MUTABLE_FACTORIES: frozenset[str] = frozenset({
    "list", "dict", "set", "bytearray",
    "collections.OrderedDict", "collections.defaultdict",
    "collections.deque", "collections.Counter",
})


def resolve_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the qualified names they import.

    ``import numpy as np`` maps ``np -> numpy``;
    ``from time import perf_counter as pc`` maps
    ``pc -> time.perf_counter``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = \
                    alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module \
                and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
    return aliases


def qualified_name(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """The dotted name a call target resolves to, or ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


class CodeRule:
    """One invariant check over a parsed module."""

    rule_id: str = ""
    description: str = ""

    def check(self, tree: ast.Module, path: str) -> list[Diagnostic]:
        raise NotImplementedError

    def diagnostic(
        self, path: str, node: ast.AST, message: str, hint: str = "",
        severity: Severity = Severity.ERROR,
    ) -> Diagnostic:
        return Diagnostic(
            self.rule_id, severity,
            Location(file=path, line=getattr(node, "lineno", None),
                     column=getattr(node, "col_offset", None)),
            message, hint=hint,
        )


class WallClockRule(CodeRule):
    """RP001: wall-clock reads only in allowlisted modules."""

    rule_id = "RP001"
    description = ("no time.time/perf_counter/datetime.now outside "
                   "simtime.py — latency is simulated")

    def check(self, tree: ast.Module, path: str) -> list[Diagnostic]:
        aliases = resolve_aliases(tree)
        found: list[Diagnostic] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = qualified_name(node.func, aliases)
            if name in WALL_CLOCK_CALLS:
                found.append(self.diagnostic(
                    path, node,
                    f"wall-clock read {name}() — all timing must go "
                    "through SimClock (repro.simtime)",
                    hint="charge a SimClock operation instead; "
                         "measured wall-clock belongs only in "
                         "BatchExecutor.run",
                ))
        return found


class SeededRngRule(CodeRule):
    """RP002: every RNG is explicitly seeded, none is global."""

    rule_id = "RP002"
    description = ("np.random.default_rng() must receive a seed; "
                   "global-state RNG functions are forbidden")

    def check(self, tree: ast.Module, path: str) -> list[Diagnostic]:
        aliases = resolve_aliases(tree)
        found: list[Diagnostic] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = qualified_name(node.func, aliases)
            if name is None:
                continue
            if name in ("numpy.random.default_rng", "random.Random") \
                    and not node.args and not node.keywords:
                found.append(self.diagnostic(
                    path, node,
                    f"{name}() without a seed — results will differ "
                    "between runs",
                    hint="pass an explicit seed derived from the "
                         "experiment configuration",
                ))
            elif name in GLOBAL_RNG_CALLS:
                found.append(self.diagnostic(
                    path, node,
                    f"global-state RNG call {name}() — shared mutable "
                    "RNG state breaks determinism under concurrency",
                    hint="create a seeded np.random.default_rng(seed) "
                         "and pass it explicitly",
                ))
        return found


class LockDisciplineRule(CodeRule):
    """RP003: shared-state mutation only under ``with self._lock``.

    Applies to classes that own a lock (an attribute whose name
    contains ``lock``).  Public methods of such a class must wrap any
    mutation of ``self`` state in a ``with self.<lock>`` block;
    private ``_helper`` methods and ``__init__``/``__post_init__`` are
    exempt (helpers are documented as called with the lock held,
    construction happens before sharing).
    """

    rule_id = "RP003"
    description = ("in lock-disciplined classes, public methods mutate "
                   "shared state only under `with self._lock`")

    def check(self, tree: ast.Module, path: str) -> list[Diagnostic]:
        found: list[Diagnostic] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                found.extend(self._check_class(node, path))
        return found

    def _check_class(
        self, klass: ast.ClassDef, path: str
    ) -> list[Diagnostic]:
        if not self._lock_attrs(klass):
            return []
        found: list[Diagnostic] = []
        for item in klass.body:
            if not isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if item.name.startswith("_"):
                continue  # dunders, private lock-held helpers
            found.extend(self._check_method(item, klass.name, path))
        return found

    @staticmethod
    def _lock_attrs(klass: ast.ClassDef) -> set[str]:
        """Attribute names of locks this class owns."""
        locks: set[str] = set()
        for node in ast.walk(klass):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == "self" \
                            and "lock" in target.attr.lower():
                        locks.add(target.attr)
            elif isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name) \
                    and "lock" in node.target.id.lower():
                locks.add(node.target.id)  # dataclass field
        return locks

    def _check_method(
        self, method: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str, path: str,
    ) -> list[Diagnostic]:
        found: list[Diagnostic] = []

        def is_lock_guard(stmt: ast.With | ast.AsyncWith) -> bool:
            for with_item in stmt.items:
                expr = with_item.context_expr
                if isinstance(expr, ast.Attribute) \
                        and isinstance(expr.value, ast.Name) \
                        and expr.value.id == "self" \
                        and "lock" in expr.attr.lower():
                    return True
                if isinstance(expr, ast.Name) \
                        and "lock" in expr.id.lower():
                    return True
            return False

        def walk(statements: list[ast.stmt], guarded: bool) -> None:
            for stmt in statements:
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    walk(stmt.body, guarded or is_lock_guard(stmt))
                    continue
                if isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    continue  # nested defs own their locking story
                if not guarded:
                    for mutation in self._mutations(stmt):
                        found.append(self.diagnostic(
                            path, mutation,
                            f"{class_name}.{method.name} mutates "
                            f"shared state "
                            f"({self._describe(mutation)}) outside "
                            "`with self._lock`",
                            hint="wrap the mutation in the class's "
                                 "lock, or make the method a private "
                                 "lock-held helper",
                        ))
                for child_body in self._nested_bodies(stmt):
                    walk(child_body, guarded)

        walk(method.body, guarded=False)
        return found

    @staticmethod
    def _nested_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
        bodies: list[list[ast.stmt]] = []
        for attr in ("body", "orelse", "finalbody"):
            body = getattr(stmt, attr, None)
            if body and isinstance(body, list) \
                    and all(isinstance(s, ast.stmt) for s in body):
                bodies.append(body)
        handlers = getattr(stmt, "handlers", None)
        if handlers:
            bodies.extend(h.body for h in handlers)
        return bodies

    @staticmethod
    def _self_attr(node: ast.expr) -> str | None:
        """The attribute name when ``node`` is ``self.<attr>`` or a
        subscript of it."""
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            return node.attr
        return None

    def _mutations(self, stmt: ast.stmt) -> list[ast.AST]:
        """Direct (non-nested) mutations of ``self`` state in ``stmt``."""
        mutations: list[ast.AST] = []
        if isinstance(stmt, (ast.Assign, ast.AugAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) \
                else [stmt.target]
            for target in targets:
                elements = target.elts \
                    if isinstance(target, ast.Tuple) else [target]
                for element in elements:
                    attr = self._self_attr(element)
                    if attr is not None and "lock" not in attr.lower():
                        mutations.append(element)
        elif isinstance(stmt, ast.Expr) \
                and isinstance(stmt.value, ast.Call) \
                and isinstance(stmt.value.func, ast.Attribute) \
                and stmt.value.func.attr in MUTATOR_METHODS:
            attr = self._self_attr(stmt.value.func.value)
            if attr is not None and "lock" not in attr.lower():
                mutations.append(stmt.value)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                attr = self._self_attr(target)
                if attr is not None and "lock" not in attr.lower():
                    mutations.append(target)
        return mutations

    @staticmethod
    def _describe(node: ast.AST) -> str:
        try:
            return ast.unparse(node)  # type: ignore[arg-type]
        except Exception:  # pragma: no cover - unparse is best-effort
            return "<expression>"


class OrderedIterationRule(CodeRule):
    """RP004: no bare ``set`` iteration feeding ordered output."""

    rule_id = "RP004"
    description = ("hot paths must not iterate a bare set expression; "
                   "wrap it in sorted() for deterministic order")

    def check(self, tree: ast.Module, path: str) -> list[Diagnostic]:
        aliases = resolve_aliases(tree)
        found: list[Diagnostic] = []
        for node in ast.walk(tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for candidate in iters:
                if self._is_set_expr(candidate, aliases):
                    found.append(self.diagnostic(
                        path, candidate,
                        "iteration over a bare set expression — "
                        "iteration order is undefined and leaks into "
                        "ordered output",
                        hint="wrap the set in sorted(...) (scheduler "
                             "determinism doubles as the batch "
                             "submission order)",
                    ))
        return found

    @staticmethod
    def _is_set_expr(node: ast.expr, aliases: dict[str, str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = qualified_name(node.func, aliases)
            return name in ("set", "frozenset")
        return False


class MutableDefaultRule(CodeRule):
    """RP005: no mutable default arguments."""

    rule_id = "RP005"
    description = "function defaults must not be mutable objects"

    def check(self, tree: ast.Module, path: str) -> list[Diagnostic]:
        aliases = resolve_aliases(tree)
        found: list[Diagnostic] = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default, aliases):
                    name = getattr(node, "name", "<lambda>")
                    found.append(self.diagnostic(
                        path, default,
                        f"mutable default argument in {name}() — the "
                        "default is shared across calls",
                        hint="default to None and create the value "
                             "inside the function",
                    ))
        return found

    @staticmethod
    def _is_mutable(node: ast.expr, aliases: dict[str, str]) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = qualified_name(node.func, aliases)
            return name in MUTABLE_FACTORIES
        return False


class FaultSiteDisciplineRule(CodeRule):
    """RP006: failures are handled through the resilience registry.

    Two checks:

    * a handler for ``Exception`` (or a bare ``except``) whose body
      does nothing but ``pass``/``continue``/``...`` swallows failures
      without attribution — the resilience guard exists precisely so
      every absorbed failure leaves a :class:`FaultEvent` trail;
    * a string literal passed as the site argument of a resilience
      guard call (``<manager>.call(...)``, ``<injector>.check(...)``,
      ``<injector>.would_fault(...)``) must name a registered
      :data:`~repro.resilience.faults.FAULT_SITES` entry, so typos
      cannot silently disable injection at a site.
    """

    rule_id = "RP006"
    description = ("no silent `except Exception: pass`; fault-site "
                   "literals must be registered in FAULT_SITES")

    #: guard method names whose first argument is a fault-site name
    GUARD_METHODS: frozenset[str] = frozenset({
        "call", "check", "would_fault",
    })
    #: receiver-name fragments that identify the resilience guard
    GUARD_RECEIVERS: tuple[str, ...] = ("resilience", "injector", "manager")

    def check(self, tree: ast.Module, path: str) -> list[Diagnostic]:
        found: list[Diagnostic] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler):
                found.extend(self._check_handler(node, path))
            elif isinstance(node, ast.Call):
                found.extend(self._check_guard_call(node, path))
        return found

    def _check_handler(
        self, handler: ast.ExceptHandler, path: str
    ) -> list[Diagnostic]:
        if not self._catches_everything(handler.type):
            return []
        if not all(isinstance(stmt, (ast.Pass, ast.Continue))
                   or (isinstance(stmt, ast.Expr)
                       and isinstance(stmt.value, ast.Constant)
                       and stmt.value.value is Ellipsis)
                   for stmt in handler.body):
            return []
        caught = "bare except" if handler.type is None             else "except Exception"
        return [self.diagnostic(
            path, handler,
            f"{caught} with a pass-only body silently swallows "
            "failures",
            hint="absorb failures through the resilience guard "
                 "(ResilienceManager.call with a fallback) so the "
                 "incident is attributed, or catch the specific "
                 "ReproError subclass and handle it",
        )]

    @staticmethod
    def _catches_everything(exc_type: ast.expr | None) -> bool:
        if exc_type is None:
            return True
        names = exc_type.elts if isinstance(exc_type, ast.Tuple)             else [exc_type]
        return any(isinstance(name, ast.Name)
                   and name.id in ("Exception", "BaseException")
                   for name in names)

    def _check_guard_call(
        self, node: ast.Call, path: str
    ) -> list[Diagnostic]:
        func = node.func
        if not isinstance(func, ast.Attribute)                 or func.attr not in self.GUARD_METHODS:
            return []
        receiver = self._dotted(func.value)
        if receiver is None or not any(
            fragment in receiver.lower()
            for fragment in self.GUARD_RECEIVERS
        ):
            return []
        if not node.args:
            return []
        site = node.args[0]
        if not isinstance(site, ast.Constant)                 or not isinstance(site.value, str):
            return []
        from repro.resilience.faults import FAULT_SITES

        if site.value in FAULT_SITES:
            return []
        return [self.diagnostic(
            path, site,
            f"unregistered fault site {site.value!r} passed to the "
            f"resilience guard {receiver}.{func.attr}()",
            hint="register the site in repro.resilience.faults."
                 "FAULT_SITES (the closed registry chaos sweeps "
                 "iterate) or fix the typo",
        )]

    @staticmethod
    def _dotted(node: ast.expr) -> str | None:
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None


class CandidateIndexDisciplineRule(CodeRule):
    """RP007: candidate-index mutation and epoch-tagged cache keys.

    Two checks guarding the sublinear vertex-matching layer:

    * :class:`~repro.graph.candidates.VertexCandidateIndex` may be
      mutated (``add_label``/``remove_label``) only through the
      ``Graph`` mutation API — any other call site desynchronizes the
      index from vertex storage and the matcher silently diverges
      from the linear-scan reference (the binding allowlists
      ``repro/graph/model.py`` and ``repro/graph/candidates.py``);
    * executor cache-key tuples — literals whose first element is one
      of the kind tags ``"scope"``, ``"scope-poss"``, ``"path"`` —
      must carry the graph epoch as their second element, so a merged
      graph mutated between queries can never replay a stale cached
      scope or relation-pair set (PR 5's headline staleness bug).
    """

    rule_id = "RP007"
    description = ("VertexCandidateIndex mutated only via the Graph "
                   "mutation API; scope/path cache keys must embed "
                   "the graph epoch as their second element")

    #: methods that mutate a VertexCandidateIndex
    INDEX_MUTATORS: frozenset[str] = frozenset({
        "add_label", "remove_label",
    })
    #: first-element tags identifying executor cache-key tuples
    KEY_KINDS: frozenset[str] = frozenset({"scope", "scope-poss", "path"})

    def check(self, tree: ast.Module, path: str) -> list[Diagnostic]:
        found: list[Diagnostic] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                found.extend(self._check_index_mutation(node, path))
            elif isinstance(node, ast.Tuple):
                found.extend(self._check_cache_key(node, path))
        return found

    def _check_index_mutation(
        self, node: ast.Call, path: str
    ) -> list[Diagnostic]:
        func = node.func
        if not isinstance(func, ast.Attribute) \
                or func.attr not in self.INDEX_MUTATORS:
            return []
        receiver = qualified_name(func.value, {})
        if receiver is None or "candidate_index" not in receiver:
            return []
        return [self.diagnostic(
            path, node,
            f"direct candidate-index mutation "
            f"{receiver}.{func.attr}() outside the Graph mutation "
            "API",
            hint="mutate the graph through add_vertex/remove_vertex/"
                 "relabel_vertex — Graph keeps the candidate index "
                 "and the epoch counter in lockstep",
        )]

    def _check_cache_key(
        self, node: ast.Tuple, path: str
    ) -> list[Diagnostic]:
        if not node.elts:
            return []
        head = node.elts[0]
        if not isinstance(head, ast.Constant) \
                or head.value not in self.KEY_KINDS:
            return []
        if len(node.elts) < 2:
            return [self.diagnostic(
                path, node,
                f"cache key tagged {head.value!r} has no epoch "
                "element",
                hint="make the graph epoch the key's second element: "
                     f"({head.value!r}, epoch, ...)",
            )]
        second = node.elts[1]
        if not isinstance(second, ast.Constant) \
                and "epoch" in ast.unparse(second).lower():
            return []
        return [self.diagnostic(
            path, node,
            f"cache key tagged {head.value!r} does not carry the "
            "graph epoch as its second element — a mutated merged "
            "graph would replay stale cached results",
            hint="key on the observed epoch, e.g. "
                 f"({head.value!r}, self._observe_epoch(), ...)",
        )]


#: every invariant rule, in id order
ALL_CODE_RULES: tuple[type[CodeRule], ...] = (
    WallClockRule,
    SeededRngRule,
    LockDisciplineRule,
    OrderedIterationRule,
    MutableDefaultRule,
    FaultSiteDisciplineRule,
    CandidateIndexDisciplineRule,
)


__all__ = [
    "ALL_CODE_RULES",
    "CandidateIndexDisciplineRule",
    "CodeRule",
    "FaultSiteDisciplineRule",
    "LockDisciplineRule",
    "MutableDefaultRule",
    "OrderedIterationRule",
    "SeededRngRule",
    "WallClockRule",
    "qualified_name",
    "resolve_aliases",
]
