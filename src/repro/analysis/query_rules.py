"""Semantic rules over generated query graphs (the ``QG###`` set).

Algorithm 2 can emit structurally broken graphs — the Fig. 8(a)
failure mode — and Algorithm 3 only discovers the breakage deep inside
execution (a disconnected main clause surfaces as an
:class:`~repro.errors.ExecutionError`, a contradictory slot binding as
a silently empty answer).  Each rule here checks one structural or
semantic property *before* execution:

========  =========  ====================================================
rule id   severity   property
========  =========  ====================================================
QG001     ERROR      edge endpoints exist and are not self-loops
QG002     ERROR      dependency wiring is acyclic (an execution order
                     exists)
QG003     ERROR      exactly one main clause, carrying a question type
QG004     WARNING    every condition vertex reaches the main clause
                     (no dead computation)
QG005     ERROR      answer type matches the WH structure (counting /
                     reasoning mains have a WH answer slot, judgment
                     mains have none)
QG006     WARNING    providers feeding one consumer slot are mutually
                     satisfiable (their label sets can intersect)
QG007     ERROR /    constraints are satisfiable: a recognised
          WARNING    constraint word (else WARNING) on a clause whose
                     grouping slot exists (else ERROR)
QG008     WARNING    subject/object terms are inside the
                     lexicon/taxonomy vocabulary
QG009     ERROR      SPOCs are non-degenerate (a predicate plus at
                     least one of subject/object)
========  =========  ====================================================

Rules are pure functions ``(graph, context) -> list[Diagnostic]``
registered in :data:`QUERY_RULES`; the validator in
:mod:`repro.analysis.query_validator` runs them all.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.analysis.diagnostics import Diagnostic, Location, Severity
from repro.core.spoc import QueryGraph, QuestionType, SPOC, Term
from repro.core.spoc_extract import CONSTRAINT_WORDS


@dataclass(frozen=True)
class QueryLintContext:
    """Vocabulary and similarity hooks shared by the query rules.

    ``known_terms`` is the static vocabulary (lexicon + taxonomy,
    lowercase); ``extra_terms`` lets a caller add merged-graph labels.
    ``are_synonyms`` and ``constraint_score`` default to the same
    semlex/embedding machinery the executor uses, so the validator
    predicts what execution will accept.
    """

    known_terms: frozenset[str]
    extra_terms: frozenset[str] = frozenset()
    are_synonyms: Callable[[str, str], bool] = lambda a, b: a == b
    constraint_score: Callable[[str], float] = lambda text: 1.0
    singular: Callable[[str], str] = lambda word: word

    def knows(self, head: str) -> bool:
        word = head.lower()
        if word in self.known_terms or word in self.extra_terms:
            return True
        return self.singular(word) in self.known_terms


RuleFn = Callable[[QueryGraph, QueryLintContext], list[Diagnostic]]

#: rule id -> rule function; populated by :func:`query_rule`.
QUERY_RULES: dict[str, RuleFn] = {}


def query_rule(rule_id: str) -> Callable[[RuleFn], RuleFn]:
    """Register a query-graph rule under ``rule_id``."""

    def register(fn: RuleFn) -> RuleFn:
        if rule_id in QUERY_RULES:
            raise ValueError(f"duplicate query rule id: {rule_id}")
        QUERY_RULES[rule_id] = fn
        return fn

    return register


def _valid_edges(graph: QueryGraph) -> list[tuple[int, int]]:
    """Edges with in-range, non-self endpoints (what QG001 accepts)."""
    count = len(graph.vertices)
    return [
        (src, dst) for src, dst, _ in graph.edges
        if 0 <= src < count and 0 <= dst < count and src != dst
    ]


# ---------------------------------------------------------------------------
# structural rules
# ---------------------------------------------------------------------------

@query_rule("QG001")
def dangling_edges(
    graph: QueryGraph, context: QueryLintContext
) -> list[Diagnostic]:
    """Every edge endpoint names an existing, distinct vertex."""
    count = len(graph.vertices)
    found: list[Diagnostic] = []
    for src, dst, kind in graph.edges:
        if not (0 <= src < count and 0 <= dst < count):
            found.append(Diagnostic(
                "QG001", Severity.ERROR, Location(edge=(src, dst)),
                f"dangling {kind.value} edge: vertex index out of range "
                f"(graph has {count} vertices)",
                hint="the Connect stage emitted an edge for a clause "
                     "that was never extracted",
            ))
        elif src == dst:
            found.append(Diagnostic(
                "QG001", Severity.ERROR, Location(edge=(src, dst)),
                f"self-loop {kind.value} edge on vertex v{src}",
                hint="a clause cannot provide its own slot binding",
            ))
    return found


@query_rule("QG002")
def cyclic_wiring(
    graph: QueryGraph, context: QueryLintContext
) -> list[Diagnostic]:
    """The provider->consumer wiring admits an execution order."""
    adjacency: dict[int, list[int]] = {}
    for src, dst in _valid_edges(graph):
        adjacency.setdefault(src, []).append(dst)

    WHITE, GRAY, BLACK = 0, 1, 2
    color = dict.fromkeys(range(len(graph.vertices)), WHITE)
    cycle_vertices: list[int] = []

    def visit(vertex: int, stack: list[int]) -> bool:
        color[vertex] = GRAY
        stack.append(vertex)
        for successor in adjacency.get(vertex, []):
            if color[successor] == GRAY:
                start = stack.index(successor)
                cycle_vertices.extend(stack[start:])
                return True
            if color[successor] == WHITE and visit(successor, stack):
                return True
        stack.pop()
        color[vertex] = BLACK
        return False

    for vertex in range(len(graph.vertices)):
        if color[vertex] == WHITE and visit(vertex, []):
            cycle = " -> ".join(f"v{v}" for v in cycle_vertices)
            return [Diagnostic(
                "QG002", Severity.ERROR,
                Location(vertex=cycle_vertices[0]),
                f"cyclic dependency wiring: {cycle} -> "
                f"v{cycle_vertices[0]}; no execution order exists",
                hint="provider edges must run from deeper clauses to "
                     "shallower ones",
            )]
    return []


@query_rule("QG003")
def main_clause(
    graph: QueryGraph, context: QueryLintContext
) -> list[Diagnostic]:
    """Exactly one main clause, and it carries a question type."""
    mains = [i for i, s in enumerate(graph.vertices) if s.is_main]
    if not mains:
        return [Diagnostic(
            "QG003", Severity.ERROR, Location(),
            "query graph has no main clause — nothing produces the "
            "final answer",
            hint="clause segmentation must mark the root clause is_main",
        )]
    found: list[Diagnostic] = []
    if len(mains) > 1:
        listed = ", ".join(f"v{i}" for i in mains)
        found.append(Diagnostic(
            "QG003", Severity.ERROR, Location(vertex=mains[1]),
            f"query graph has {len(mains)} main clauses ({listed}); "
            "the final answer is ambiguous",
            hint="only the root clause may be is_main",
        ))
    for index in mains:
        if graph.vertices[index].question_type is None:
            found.append(Diagnostic(
                "QG003", Severity.ERROR, Location(vertex=index),
                f"main clause v{index} has no question type",
                hint="the answer builder needs judgment/counting/"
                     "reasoning to shape the final answer",
            ))
    return found


@query_rule("QG004")
def unreachable_vertices(
    graph: QueryGraph, context: QueryLintContext
) -> list[Diagnostic]:
    """Every condition clause should feed (transitively) the main one."""
    mains = {i for i, s in enumerate(graph.vertices) if s.is_main}
    if len(mains) != 1:
        return []  # QG003's problem
    reverse: dict[int, list[int]] = {}
    for src, dst in _valid_edges(graph):
        reverse.setdefault(dst, []).append(src)
    reaches_main = set(mains)
    frontier = list(mains)
    while frontier:
        vertex = frontier.pop()
        for predecessor in reverse.get(vertex, []):
            if predecessor not in reaches_main:
                reaches_main.add(predecessor)
                frontier.append(predecessor)
    found: list[Diagnostic] = []
    for index, spoc in enumerate(graph.vertices):
        if index not in reaches_main:
            found.append(Diagnostic(
                "QG004", Severity.WARNING, Location(vertex=index),
                f"vertex v{index} ({spoc!r}) never reaches the main "
                "clause; its result is dead computation",
                hint="the Connect stage found no SO-overlap for this "
                     "clause — check the condition's wording",
            ))
    return found


# ---------------------------------------------------------------------------
# semantic rules
# ---------------------------------------------------------------------------

@query_rule("QG005")
def answer_type_mismatch(
    graph: QueryGraph, context: QueryLintContext
) -> list[Diagnostic]:
    """The question type must match the main clause's WH structure."""
    found: list[Diagnostic] = []
    for index, spoc in enumerate(graph.vertices):
        if not spoc.is_main or spoc.question_type is None:
            continue
        answer_term = _safe_slot(spoc, spoc.answer_role)
        wh_slots = [
            role for role in ("subject", "object")
            if (term := _safe_slot(spoc, role)) is not None and term.is_wh
        ]
        if spoc.question_type is QuestionType.JUDGMENT:
            if wh_slots:
                found.append(Diagnostic(
                    "QG005", Severity.ERROR, Location(vertex=index),
                    f"judgment main clause v{index} has a WH term in "
                    f"its {wh_slots[0]} slot; yes/no questions cannot "
                    "have an answer variable",
                    hint="re-classify as counting/reasoning or drop "
                         "the WH phrase",
                ))
        else:
            if answer_term is None or not answer_term.is_wh:
                found.append(Diagnostic(
                    "QG005", Severity.ERROR, Location(vertex=index),
                    f"{spoc.question_type.value} main clause v{index} "
                    f"has no WH term in its answer slot "
                    f"({spoc.answer_role!r}); the answer variable is "
                    "unbound",
                    hint="the WH phrase must sit in the slot named by "
                         "answer_role",
                ))
    return found


@query_rule("QG006")
def contradictory_bindings(
    graph: QueryGraph, context: QueryLintContext
) -> list[Diagnostic]:
    """Two providers feeding one consumer slot must be satisfiable.

    The executor intersects the providers' label sets; when the two
    providers' terms are provably unrelated (different heads, not
    synonyms, no WH/ownership indirection) the intersection is almost
    certainly empty and the consumer clause can never match.
    """
    valid = set(_valid_edges(graph))
    providers: dict[tuple[int, str], list[int]] = {}
    for src, dst, kind in graph.edges:
        if (src, dst) not in valid:
            continue
        providers.setdefault(
            (dst, kind.consumer_slot), []
        ).append(src)
    found: list[Diagnostic] = []
    for (consumer, slot), sources in sorted(providers.items()):
        if len(sources) < 2:
            continue
        terms = [_provider_term(graph, src, consumer, slot)
                 for src in sources]
        concrete = [t for t in terms if t is not None and not t.is_wh
                    and t.owner is None and not t.kind_of]
        for i in range(len(concrete)):
            for j in range(i + 1, len(concrete)):
                a, b = concrete[i], concrete[j]
                if a.head.lower() == b.head.lower():
                    continue
                if context.are_synonyms(a.head, b.head):
                    continue
                found.append(Diagnostic(
                    "QG006", Severity.WARNING,
                    Location(vertex=consumer),
                    f"consumer v{consumer} slot {slot!r} is bound by "
                    f"unrelated providers ({a.head!r} vs {b.head!r}); "
                    "the intersected label set is likely empty",
                    hint="check the Connect stage's SO-overlap for "
                         "these clauses",
                ))
    return found


@query_rule("QG007")
def unsatisfiable_constraints(
    graph: QueryGraph, context: QueryLintContext
) -> list[Diagnostic]:
    """Constraints must be resolvable and have a slot to group by."""
    found: list[Diagnostic] = []
    for index, spoc in enumerate(graph.vertices):
        if spoc.constraint is None:
            continue
        if _safe_slot(spoc, spoc.answer_role) is None:
            found.append(Diagnostic(
                "QG007", Severity.ERROR, Location(vertex=index),
                f"constraint {spoc.constraint!r} on v{index} groups by "
                f"the {spoc.answer_role!r} slot, which is empty; the "
                "constraint can never be satisfied",
                hint="a constrained clause needs a term in its "
                     "answer-role slot",
            ))
        elif context.constraint_score(spoc.constraint) < 0.5:
            known = ", ".join(repr(w) for w in CONSTRAINT_WORDS)
            found.append(Diagnostic(
                "QG007", Severity.WARNING, Location(vertex=index),
                f"constraint {spoc.constraint!r} on v{index} matches "
                "no predefined constraint word; execution will "
                "silently ignore it",
                hint=f"known constraint words: {known}",
            ))
    return found


@query_rule("QG008")
def unknown_terms(
    graph: QueryGraph, context: QueryLintContext
) -> list[Diagnostic]:
    """Subject/object heads should come from the lexicon/taxonomy."""
    found: list[Diagnostic] = []
    for index, spoc in enumerate(graph.vertices):
        for role in ("subject", "object"):
            term = _safe_slot(spoc, role)
            if term is None or term.is_wh:
                continue
            for word in _term_words(term):
                if not context.knows(word):
                    found.append(Diagnostic(
                        "QG008", Severity.WARNING,
                        Location(vertex=index),
                        f"term {word!r} ({role} of v{index}) is outside "
                        "the lexicon/taxonomy vocabulary; matchVertex "
                        "will rely on fuzzy matching alone",
                        hint="unknown foreign words are the Fig. 8(a) "
                             "failure mode",
                    ))
    return found


@query_rule("QG009")
def degenerate_spocs(
    graph: QueryGraph, context: QueryLintContext
) -> list[Diagnostic]:
    """Hand-built graphs may skip ``validate_spoc``; re-check here."""
    found: list[Diagnostic] = []
    for index, spoc in enumerate(graph.vertices):
        if spoc.subject is None and spoc.object is None:
            found.append(Diagnostic(
                "QG009", Severity.ERROR, Location(vertex=index),
                f"clause {index} has neither subject nor object: "
                f"{spoc.source_text!r}",
                hint="SPOC extraction produced an empty quadruple",
            ))
        if not spoc.predicate:
            found.append(Diagnostic(
                "QG009", Severity.ERROR, Location(vertex=index),
                f"clause {index} has no predicate: "
                f"{spoc.source_text!r}",
                hint="the clause head's verb group is missing",
            ))
    return found


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _safe_slot(spoc: SPOC, role: str) -> Term | None:
    if role not in ("subject", "object"):
        return None
    return spoc.slot(role)


def _provider_term(
    graph: QueryGraph, src: int, dst: int, consumer_slot: str
) -> Term | None:
    """The provider-side term that will flow into the consumer slot."""
    for edge_src, edge_dst, kind in graph.edges:
        if edge_src == src and edge_dst == dst \
                and kind.consumer_slot == consumer_slot:
            return _safe_slot(graph.vertices[src], kind.provider_slot)
    return None


def _term_words(term: Term) -> Iterable[str]:
    """The words of a term that must resolve against the vocabulary.

    Proper names (the ``owner`` of a possessive, capitalised heads)
    are exempt — they match annotation labels, not the lexicon.
    """
    head = term.head
    if head and not head[:1].isupper():
        yield head


__all__ = [
    "QUERY_RULES",
    "QueryLintContext",
    "query_rule",
]
