"""The shared diagnostic model of the static-analysis subsystem.

Both analysis layers — the query-graph semantic validator
(:mod:`repro.analysis.query_validator`) and the codebase invariant
linter (:mod:`repro.analysis.code_linter`) — report findings as
:class:`Diagnostic` values collected into a :class:`DiagnosticReport`.
A diagnostic names the rule that produced it, a severity, a location
(source file line for code, vertex/edge for query graphs), the finding
itself, and a fix hint, so one renderer and one CI gate serve both
layers.
"""

from __future__ import annotations

import json
from collections.abc import Iterator
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any


class Severity(IntEnum):
    """Diagnostic severities, ordered so ``max()`` picks the worst."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Location:
    """Where a diagnostic points.

    Code diagnostics carry ``file``/``line``/``column``; query-graph
    diagnostics carry ``vertex`` (a clause index) and/or ``edge``
    (a provider/consumer index pair).  All fields are optional so one
    type serves both layers.
    """

    file: str | None = None
    line: int | None = None
    column: int | None = None
    vertex: int | None = None
    edge: tuple[int, int] | None = None

    def __str__(self) -> str:
        if self.file is not None:
            text = self.file
            if self.line is not None:
                text += f":{self.line}"
                if self.column is not None:
                    text += f":{self.column}"
            return text
        parts = []
        if self.vertex is not None:
            parts.append(f"v{self.vertex}")
        if self.edge is not None:
            parts.append(f"edge v{self.edge[0]}->v{self.edge[1]}")
        return " ".join(parts) if parts else "<graph>"

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dict; key order is part of the contract."""
        return {
            "file": self.file,
            "line": self.line,
            "column": self.column,
            "vertex": self.vertex,
            "edge": list(self.edge) if self.edge is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> Location:
        edge = data.get("edge")
        return cls(
            file=data.get("file"),
            line=data.get("line"),
            column=data.get("column"),
            vertex=data.get("vertex"),
            edge=(edge[0], edge[1]) if edge is not None else None,
        )


@dataclass(frozen=True)
class Diagnostic:
    """One finding of either analysis layer.

    Attributes
    ----------
    rule_id:
        Stable identifier of the producing rule (``QG###`` for
        query-graph rules, ``RP###`` for repo-invariant rules).
    severity:
        :class:`Severity` — only ERROR diagnostics gate CI.
    location:
        Where the finding points (code line or graph vertex/edge).
    message:
        The finding itself, self-contained.
    hint:
        How to fix it (may be empty).
    """

    rule_id: str
    severity: Severity
    location: Location
    message: str
    hint: str = ""

    def render(self) -> str:
        text = f"{self.location}: {self.severity}: [{self.rule_id}] {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dict; key order is part of the contract."""
        return {
            "rule_id": self.rule_id,
            "severity": str(self.severity),
            "location": self.location.to_dict(),
            "message": self.message,
            "hint": self.hint,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> Diagnostic:
        return cls(
            rule_id=data["rule_id"],
            severity=Severity[data["severity"]],
            location=Location.from_dict(data["location"]),
            message=data["message"],
            hint=data.get("hint", ""),
        )


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics with gate helpers."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: DiagnosticReport | list[Diagnostic]) -> None:
        if isinstance(diagnostics, DiagnosticReport):
            diagnostics = diagnostics.diagnostics
        self.diagnostics.extend(diagnostics)

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity is severity)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def by_rule(self, rule_id: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule_id == rule_id]

    def rule_ids(self) -> list[str]:
        """Distinct rule ids present, in first-appearance order."""
        seen: dict[str, None] = {}
        for diagnostic in self.diagnostics:
            seen.setdefault(diagnostic.rule_id, None)
        return list(seen)

    def sorted(self) -> DiagnosticReport:
        """Worst findings first; location order within a severity."""
        return DiagnosticReport(sorted(
            self.diagnostics,
            key=lambda d: (-d.severity, str(d.location), d.rule_id),
        ))

    def render(self) -> str:
        """Multi-line rendering, one diagnostic per line plus a tally."""
        lines = [d.render() for d in self.diagnostics]
        lines.append(self.summary())
        return "\n".join(lines)

    def summary(self) -> str:
        return (
            f"{self.count(Severity.ERROR)} error(s), "
            f"{self.count(Severity.WARNING)} warning(s), "
            f"{self.count(Severity.INFO)} note(s)"
        )

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable form for CI annotation.

        Key order is fixed (counts first, then the diagnostics in
        report order) so serialized reports diff cleanly.
        """
        return {
            "errors": self.count(Severity.ERROR),
            "warnings": self.count(Severity.WARNING),
            "notes": self.count(Severity.INFO),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Deterministic JSON rendering of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> DiagnosticReport:
        return cls([
            Diagnostic.from_dict(entry)
            for entry in data.get("diagnostics", [])
        ])

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)
