"""Query-graph semantic validation (static-analysis layer 1).

:class:`QueryGraphValidator` runs every registered ``QG###`` rule over
a generated :class:`~repro.core.spoc.QueryGraph` *after* Algorithm 2
and *before* Algorithm 3, so structurally broken graphs — the
Fig. 8(a) failure mode — are attributed to a clause or edge instead of
surfacing as an opaque execution failure.  Scene-graph QA systems
(GraphVQA, Graphhopper) validate the reasoning program before
traversal for the same reason: it is what makes multi-hop execution
debuggable.

The default :class:`~repro.analysis.query_rules.QueryLintContext`
shares the executor's vocabulary and similarity machinery (lexicon,
taxonomy, semlex synonym clusters, the constraint-word embedding
match), so the validator predicts what execution will accept.
"""

from __future__ import annotations

from functools import lru_cache

from repro.analysis.diagnostics import DiagnosticReport
from repro.analysis.query_rules import QUERY_RULES, QueryLintContext
from repro.core.spoc import QueryGraph


@lru_cache(maxsize=1)
def _static_vocabulary() -> frozenset[str]:
    """Lexicon + taxonomy vocabulary, lowercased (built once)."""
    from repro.nlp.lexicon import NOUN_TABLE, build_lexicon
    from repro.synth.taxonomy import category_names

    words: set[str] = set()
    for word, (_tag, lemma) in build_lexicon().items():
        words.add(word.lower())
        words.add(lemma.lower())
    for singular, plural in NOUN_TABLE.items():
        words.add(singular.lower())
        words.add(plural.lower())
    words.update(name.lower() for name in category_names())
    return frozenset(words)


@lru_cache(maxsize=1)
def default_context() -> QueryLintContext:
    """The context wired to the repo's own NLP machinery."""
    from repro.nlp.embeddings import max_score
    from repro.nlp.morphology import noun_singular
    from repro.nlp.semlex import are_synonyms
    from repro.core.spoc_extract import CONSTRAINT_WORDS

    def constraint_score(text: str) -> float:
        _word, score = max_score(text, list(CONSTRAINT_WORDS))
        return score

    return QueryLintContext(
        known_terms=_static_vocabulary(),
        are_synonyms=are_synonyms,
        constraint_score=constraint_score,
        singular=noun_singular,
    )


class QueryGraphValidator:
    """Runs the ``QG###`` rule set over query graphs.

    Parameters
    ----------
    context:
        Vocabulary/similarity hooks; defaults to the repo's own.
    rules:
        Subset of rule ids to run; defaults to all registered rules.
    """

    def __init__(
        self,
        context: QueryLintContext | None = None,
        rules: tuple[str, ...] | None = None,
    ) -> None:
        self.context = context if context is not None else default_context()
        if rules is None:
            self.rule_ids = tuple(sorted(QUERY_RULES))
        else:
            unknown = [r for r in rules if r not in QUERY_RULES]
            if unknown:
                raise ValueError(f"unknown query rule ids: {unknown}")
            self.rule_ids = tuple(rules)

    def validate(self, graph: QueryGraph) -> DiagnosticReport:
        """All diagnostics for one graph, worst first."""
        report = DiagnosticReport()
        for rule_id in self.rule_ids:
            report.extend(QUERY_RULES[rule_id](graph, self.context))
        return report.sorted()


def validate_query_graph(
    graph: QueryGraph, context: QueryLintContext | None = None
) -> DiagnosticReport:
    """Convenience wrapper: validate one graph with the default rules."""
    return QueryGraphValidator(context=context).validate(graph)


__all__ = [
    "QueryGraphValidator",
    "default_context",
    "validate_query_graph",
]
