"""Static analysis: query-graph semantic validation + repo invariants.

Two analysis layers share one :class:`Diagnostic` model:

* **layer 1 — query-graph semantic validator**
  (:mod:`repro.analysis.query_validator`): checks a generated
  :class:`~repro.core.spoc.QueryGraph` before execution — dangling or
  cyclic dependency wiring, unreachable vertices, contradictory slot
  bindings, unsatisfiable constraints, out-of-vocabulary terms,
  answer-type mismatches (rules ``QG001``-``QG009``);
* **layer 2 — codebase invariant linter**
  (:mod:`repro.analysis.code_linter`): AST rules enforcing the repo's
  concurrency/determinism invariants — SimClock-only timing, seeded
  RNGs, lock discipline, deterministic iteration, no mutable defaults
  (rules ``RP001``-``RP006``).

Entry points: ``repro lint-queries`` and ``repro lint-code``.
"""

from repro.analysis.code_linter import (
    RuleBinding,
    collect_python_files,
    default_bindings,
    default_source_root,
    lint_paths,
    lint_source,
)
from repro.analysis.code_rules import (
    ALL_CODE_RULES,
    CodeRule,
    FaultSiteDisciplineRule,
    LockDisciplineRule,
    MutableDefaultRule,
    OrderedIterationRule,
    SeededRngRule,
    WallClockRule,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Location,
    Severity,
)
from repro.analysis.query_rules import QUERY_RULES, QueryLintContext
from repro.analysis.query_validator import (
    QueryGraphValidator,
    default_context,
    validate_query_graph,
)

__all__ = [
    "ALL_CODE_RULES",
    "CodeRule",
    "Diagnostic",
    "DiagnosticReport",
    "FaultSiteDisciplineRule",
    "Location",
    "LockDisciplineRule",
    "MutableDefaultRule",
    "OrderedIterationRule",
    "QUERY_RULES",
    "QueryGraphValidator",
    "QueryLintContext",
    "RuleBinding",
    "SeededRngRule",
    "Severity",
    "WallClockRule",
    "collect_python_files",
    "default_bindings",
    "default_context",
    "default_source_root",
    "lint_paths",
    "lint_source",
    "validate_query_graph",
]
