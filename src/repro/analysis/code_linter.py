"""The codebase invariant linter (static-analysis layer 2).

Binds the ``RP###`` AST rules of :mod:`repro.analysis.code_rules` to
the paths they govern, with per-rule allowlists for the deliberate
exceptions, and runs them over the package source.  ``repro
lint-code`` and ``make lint-analysis`` are thin wrappers around
:func:`lint_paths`; CI gates on the ERROR count.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path
import ast

from repro.analysis.code_rules import (
    CandidateIndexDisciplineRule,
    CodeRule,
    FaultSiteDisciplineRule,
    LockDisciplineRule,
    MutableDefaultRule,
    OrderedIterationRule,
    SeededRngRule,
    WallClockRule,
)
from repro.analysis.concurrency.lockgraph import LockOrderAnalysis
from repro.analysis.concurrency.rules import (
    BlockingUnderLockRule,
    DispatchUnderLockRule,
    LockOrderInversionRule,
    LockPublicationRule,
    ProjectRule,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Location,
    Severity,
)


@dataclass(frozen=True)
class RuleBinding:
    """One rule bound to a path scope.

    ``paths`` restricts the rule to files whose normalized path ends
    with one of the given suffixes (``None`` = every file); ``allow``
    exempts matching files — the mechanism for deliberate, documented
    exceptions to an invariant.

    For a :class:`~repro.analysis.concurrency.rules.ProjectRule` the
    scope applies to where findings *land* (the diagnostic's file),
    not to what the underlying whole-tree analysis may inspect.
    """

    rule: CodeRule | ProjectRule
    paths: tuple[str, ...] | None = None
    allow: tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        normalized = path.replace("\\", "/")
        if any(normalized.endswith(suffix) for suffix in self.allow):
            return False
        if self.paths is None:
            return True
        return any(normalized.endswith(suffix) for suffix in self.paths)


def default_bindings() -> tuple[RuleBinding, ...]:
    """The repo's invariant configuration.

    * RP001 everywhere, except :mod:`repro.simtime` (the cost model
      itself) and ``core/batch.py`` (the measured wall-clock of a
      batch run is the metric being reported);
    * RP002 and RP005 everywhere;
    * RP003 in the lock-disciplined shared-state modules;
    * RP004 in the hot paths whose iteration order feeds ordered
      output (the scheduler order doubles as batch submission order);
    * RP006 everywhere: failures are absorbed only through the
      resilience guard, and guard call sites may only name registered
      fault sites;
    * RP007 everywhere, except the two modules that legitimately
      touch the candidate index (``graph/model.py``, whose mutation
      API is the one sanctioned writer, and ``graph/candidates.py``,
      the index itself): no out-of-band index mutation, and
      scope/path cache keys must embed the graph epoch.
    """
    return (
        RuleBinding(
            WallClockRule(),
            allow=("repro/simtime.py", "repro/core/batch.py"),
        ),
        RuleBinding(SeededRngRule()),
        RuleBinding(
            LockDisciplineRule(),
            paths=("repro/core/cache.py", "repro/core/stats.py",
                   "repro/core/batch.py",
                   "repro/nlp/embeddings.py",
                   "repro/nlp/ann.py",
                   "repro/observability/metrics.py",
                   "repro/observability/spans.py",
                   "repro/resilience/breaker.py",
                   "repro/resilience/manager.py"),
        ),
        RuleBinding(
            OrderedIterationRule(),
            paths=("repro/core/scheduler.py", "repro/core/executor.py",
                   "repro/core/batch.py", "repro/core/query_graph.py"),
        ),
        RuleBinding(MutableDefaultRule()),
        RuleBinding(FaultSiteDisciplineRule()),
        RuleBinding(
            CandidateIndexDisciplineRule(),
            allow=("repro/graph/model.py", "repro/graph/candidates.py"),
        ),
    )


#: the lock-owning modules governed by the RP008–RP011 project rules
LOCK_MODULES: tuple[str, ...] = (
    "repro/core/batch.py",
    "repro/core/cache.py",
    "repro/core/stats.py",
    "repro/serve/app.py",
    "repro/serve/admission.py",
    "repro/serve/batching.py",
    "repro/resilience/manager.py",
    "repro/resilience/breaker.py",
    "repro/graph/durable.py",
    "repro/nlp/embeddings.py",
    "repro/nlp/ann.py",
    "repro/observability/spans.py",
    "repro/observability/metrics.py",
    "repro/analysis/code_rules.py",
)


def default_project_bindings() -> tuple[RuleBinding, ...]:
    """The repo's whole-tree concurrency invariant configuration.

    RP008–RP011 findings may land only in the lock-owning modules
    (:data:`LOCK_MODULES`), though the underlying lock-order analysis
    always sees every linted file.  Triage record for the allowlists
    (every suppression here is an intentional, reviewed ordering):

    * ``core/cache.py`` (RP010) — ``drop_where`` runs its predicate
      under the store lock by documented contract: predicates are
      pure key tests (epoch retirement), and evaluating them outside
      the lock would race concurrent inserts into the same scan.
    * ``serve/batching.py`` (RP010) — ``BatchingBridge.submit``'s
      inline fallback calls ``answer_many`` while holding the bridge
      lock *by design*: the bridge lock is the serialization point
      for the non-reentrant pipeline, and the collector loop takes
      the same lock before dispatching, so the order is global and
      acyclic (bridge -> core locks, never the reverse).
    """
    return (
        RuleBinding(LockOrderInversionRule(), paths=LOCK_MODULES),
        RuleBinding(BlockingUnderLockRule(), paths=LOCK_MODULES),
        RuleBinding(
            DispatchUnderLockRule(),
            paths=LOCK_MODULES,
            allow=("repro/core/cache.py", "repro/serve/batching.py"),
        ),
        RuleBinding(LockPublicationRule(), paths=LOCK_MODULES),
    )


def collect_python_files(roots: Iterable[Path]) -> list[Path]:
    """Every ``*.py`` under the roots, sorted, skipping caches."""
    files: set[Path] = set()
    for root in roots:
        if root.is_file() and root.suffix == ".py":
            files.add(root)
        elif root.is_dir():
            files.update(
                path for path in root.rglob("*.py")
                if "__pycache__" not in path.parts
            )
    return sorted(files)


def lint_source(
    source: str,
    path: str,
    bindings: Sequence[RuleBinding] | None = None,
) -> DiagnosticReport:
    """Lint one module's source text under the given bindings."""
    if bindings is None:
        bindings = default_bindings()
    report = DiagnosticReport()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.add(Diagnostic(
            "RP000", Severity.ERROR,
            Location(file=path, line=exc.lineno, column=exc.offset),
            f"file does not parse: {exc.msg}",
        ))
        return report
    for binding in bindings:
        if isinstance(binding.rule, CodeRule) and binding.applies_to(path):
            report.extend(binding.rule.check(tree, path))
    return report


def lint_paths(
    roots: Iterable[Path],
    bindings: Sequence[RuleBinding] | None = None,
    project_bindings: Sequence[RuleBinding] | None = None,
) -> DiagnosticReport:
    """Lint every Python file under the roots.

    Per-file rules run module by module; the RP008–RP011 project
    rules then run once over a :class:`LockOrderAnalysis` built from
    every file that parsed, so cross-module lock orders are visible
    even when only a few modules may receive findings.
    """
    if bindings is None:
        bindings = default_bindings()
    if project_bindings is None:
        project_bindings = default_project_bindings()
    report = DiagnosticReport()
    trees: dict[str, ast.Module] = {}
    for path in collect_python_files(roots):
        name = str(path)
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            report.add(Diagnostic(
                "RP000", Severity.ERROR, Location(file=name),
                f"file is unreadable: {exc}",
            ))
            continue
        try:
            tree = ast.parse(source, filename=name)
        except SyntaxError as exc:
            report.add(Diagnostic(
                "RP000", Severity.ERROR,
                Location(file=name, line=exc.lineno, column=exc.offset),
                f"file does not parse: {exc.msg}",
            ))
            continue
        trees[name] = tree
        for binding in bindings:
            if isinstance(binding.rule, CodeRule) \
                    and binding.applies_to(name):
                report.extend(binding.rule.check(tree, name))
    if trees and project_bindings:
        analysis = LockOrderAnalysis(trees)
        for binding in project_bindings:
            if not isinstance(binding.rule, ProjectRule):
                continue
            report.extend([
                diagnostic
                for diagnostic in binding.rule.check_project(analysis)
                if diagnostic.location.file is not None
                and binding.applies_to(diagnostic.location.file)
            ])
    return report.sorted()


def default_source_root() -> Path:
    """The installed ``repro`` package directory (the default target)."""
    import repro

    return Path(repro.__file__).resolve().parent


__all__ = [
    "LOCK_MODULES",
    "RuleBinding",
    "collect_python_files",
    "default_bindings",
    "default_project_bindings",
    "default_source_root",
    "lint_paths",
    "lint_source",
]
