"""The codebase invariant linter (static-analysis layer 2).

Binds the ``RP###`` AST rules of :mod:`repro.analysis.code_rules` to
the paths they govern, with per-rule allowlists for the deliberate
exceptions, and runs them over the package source.  ``repro
lint-code`` and ``make lint-analysis`` are thin wrappers around
:func:`lint_paths`; CI gates on the ERROR count.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path
import ast

from repro.analysis.code_rules import (
    CandidateIndexDisciplineRule,
    CodeRule,
    FaultSiteDisciplineRule,
    LockDisciplineRule,
    MutableDefaultRule,
    OrderedIterationRule,
    SeededRngRule,
    WallClockRule,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Location,
    Severity,
)


@dataclass(frozen=True)
class RuleBinding:
    """One rule bound to a path scope.

    ``paths`` restricts the rule to files whose normalized path ends
    with one of the given suffixes (``None`` = every file); ``allow``
    exempts matching files — the mechanism for deliberate, documented
    exceptions to an invariant.
    """

    rule: CodeRule
    paths: tuple[str, ...] | None = None
    allow: tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        normalized = path.replace("\\", "/")
        if any(normalized.endswith(suffix) for suffix in self.allow):
            return False
        if self.paths is None:
            return True
        return any(normalized.endswith(suffix) for suffix in self.paths)


def default_bindings() -> tuple[RuleBinding, ...]:
    """The repo's invariant configuration.

    * RP001 everywhere, except :mod:`repro.simtime` (the cost model
      itself) and ``core/batch.py`` (the measured wall-clock of a
      batch run is the metric being reported);
    * RP002 and RP005 everywhere;
    * RP003 in the lock-disciplined shared-state modules;
    * RP004 in the hot paths whose iteration order feeds ordered
      output (the scheduler order doubles as batch submission order);
    * RP006 everywhere: failures are absorbed only through the
      resilience guard, and guard call sites may only name registered
      fault sites;
    * RP007 everywhere, except the two modules that legitimately
      touch the candidate index (``graph/model.py``, whose mutation
      API is the one sanctioned writer, and ``graph/candidates.py``,
      the index itself): no out-of-band index mutation, and
      scope/path cache keys must embed the graph epoch.
    """
    return (
        RuleBinding(
            WallClockRule(),
            allow=("repro/simtime.py", "repro/core/batch.py"),
        ),
        RuleBinding(SeededRngRule()),
        RuleBinding(
            LockDisciplineRule(),
            paths=("repro/core/cache.py", "repro/core/stats.py",
                   "repro/core/batch.py",
                   "repro/observability/metrics.py",
                   "repro/observability/spans.py",
                   "repro/resilience/breaker.py",
                   "repro/resilience/manager.py"),
        ),
        RuleBinding(
            OrderedIterationRule(),
            paths=("repro/core/scheduler.py", "repro/core/executor.py",
                   "repro/core/batch.py", "repro/core/query_graph.py"),
        ),
        RuleBinding(MutableDefaultRule()),
        RuleBinding(FaultSiteDisciplineRule()),
        RuleBinding(
            CandidateIndexDisciplineRule(),
            allow=("repro/graph/model.py", "repro/graph/candidates.py"),
        ),
    )


def collect_python_files(roots: Iterable[Path]) -> list[Path]:
    """Every ``*.py`` under the roots, sorted, skipping caches."""
    files: set[Path] = set()
    for root in roots:
        if root.is_file() and root.suffix == ".py":
            files.add(root)
        elif root.is_dir():
            files.update(
                path for path in root.rglob("*.py")
                if "__pycache__" not in path.parts
            )
    return sorted(files)


def lint_source(
    source: str,
    path: str,
    bindings: Sequence[RuleBinding] | None = None,
) -> DiagnosticReport:
    """Lint one module's source text under the given bindings."""
    if bindings is None:
        bindings = default_bindings()
    report = DiagnosticReport()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.add(Diagnostic(
            "RP000", Severity.ERROR,
            Location(file=path, line=exc.lineno, column=exc.offset),
            f"file does not parse: {exc.msg}",
        ))
        return report
    for binding in bindings:
        if binding.applies_to(path):
            report.extend(binding.rule.check(tree, path))
    return report


def lint_paths(
    roots: Iterable[Path],
    bindings: Sequence[RuleBinding] | None = None,
) -> DiagnosticReport:
    """Lint every Python file under the roots."""
    if bindings is None:
        bindings = default_bindings()
    report = DiagnosticReport()
    for path in collect_python_files(roots):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            report.add(Diagnostic(
                "RP000", Severity.ERROR, Location(file=str(path)),
                f"file is unreadable: {exc}",
            ))
            continue
        report.extend(lint_source(source, str(path), bindings))
    return report.sorted()


def default_source_root() -> Path:
    """The installed ``repro`` package directory (the default target)."""
    import repro

    return Path(repro.__file__).resolve().parent


__all__ = [
    "RuleBinding",
    "collect_python_files",
    "default_bindings",
    "default_source_root",
    "lint_paths",
    "lint_source",
]
