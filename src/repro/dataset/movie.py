"""The movie scenario of Example 1 / Figure 1: named-character scenes.

Generates a small image set whose people are identified characters of
the movie knowledge graph (identity comes from image metadata — the
``annotations`` input of the Data Aggregator).  The set is constructed
so the paper's flagship question

    "What kind of clothes are worn by the wizard who is most
     frequently hanging out with Harry Potter's girlfriend?"

has a well-defined answer: one wizard appears with Harry Potter's
girlfriends more often than any other, and his clothes are shown in a
*different* image — forcing exactly the cross-image + KG reasoning the
paper motivates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.synth.scene import (
    Box,
    SceneObject,
    SceneRelation,
    SyntheticScene,
    complete_spatial_relations,
)


@dataclass
class MovieImageSet:
    """Named-character scenes + the identity annotations."""

    scenes: list[SyntheticScene]
    annotations: dict[tuple[int, str], str]
    flagship_question: str
    flagship_answer: str


#: (wizard, girlfriend-of-Harry, number of hangout images)
_HANGOUTS: tuple[tuple[str, str, int], ...] = (
    ("Neville Longbottom", "Ginny Weasley", 2),
    ("Neville Longbottom", "Cho Chang", 1),
    ("Draco Malfoy", "Cho Chang", 1),
    ("Ron Weasley", "Ginny Weasley", 1),
)

#: (wizard, worn item) shown in separate wardrobe images
_WARDROBE: tuple[tuple[str, str], ...] = (
    ("Neville Longbottom", "robe"),
    ("Draco Malfoy", "coat"),
    ("Ron Weasley", "scarf"),
)

FLAGSHIP_QUESTION = (
    "What kind of clothes are worn by the wizard who is most frequently "
    "hanging out with Harry Potter's girlfriend?"
)
FLAGSHIP_ANSWER = "robe"


def build_movie_scenes(seed: int = 5) -> MovieImageSet:
    """Build the Figure-1 image set deterministically."""
    rng = np.random.default_rng(seed)
    scenes: list[SyntheticScene] = []
    annotations: dict[tuple[int, str], str] = {}

    def jitter(base: int, spread: int = 6) -> int:
        return int(base + rng.integers(-spread, spread + 1))

    image_id = 0
    for wizard, girlfriend, count in _HANGOUTS:
        for _ in range(count):
            man = SceneObject(0, "man",
                              Box(jitter(24), jitter(48), 22, 40), 0.4)
            woman = SceneObject(1, "woman",
                                Box(jitter(64), jitter(48), 20, 38), 0.4)
            grass = SceneObject(2, "grass", Box(0, 80, 128, 48), 0.95)
            relations = [
                SceneRelation(0, 1, "hanging out with"),
                SceneRelation(0, 2, "standing on"),
                SceneRelation(1, 2, "standing on"),
            ]
            relations = complete_spatial_relations(
                [man, woman, grass], relations
            )
            scenes.append(SyntheticScene(
                image_id, [man, woman, grass], relations,
                caption=f"{wizard} is hanging out with {girlfriend}.",
            ))
            annotations[(image_id, "man")] = wizard
            annotations[(image_id, "woman")] = girlfriend
            image_id += 1

    for wizard, garment in _WARDROBE:
        man = SceneObject(0, "man", Box(jitter(50), jitter(40), 24, 48),
                          0.4)
        clothes = SceneObject(
            1, garment,
            Box(man.box.x + 4, man.box.y + man.box.h // 4, 16, 18), 0.3,
        )
        relations = complete_spatial_relations(
            [man, clothes], [SceneRelation(0, 1, "wearing")]
        )
        scenes.append(SyntheticScene(
            image_id, [man, clothes], relations,
            caption=f"{wizard} is wearing a {garment}.",
        ))
        annotations[(image_id, "man")] = wizard
        image_id += 1

    return MovieImageSet(
        scenes=scenes,
        annotations=annotations,
        flagship_question=FLAGSHIP_QUESTION,
        flagship_answer=FLAGSHIP_ANSWER,
    )
