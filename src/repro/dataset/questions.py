"""Complex-question templates and their oracle answers (§VI-B).

Questions are generated against the ground-truth index (the annotator
stand-in), so every question ships with a verified answer and its
supporting evidence.  The generator enforces the paper's dataset
properties:

* **multi-clause** — every question has 2 or 3 clauses;
* **cross-image** — questions answerable from a single image are
  filtered out (the condition and main evidence never share an image);
* **external knowledge** — many questions use hypernym words ("pets",
  "animals", "clothes") that only resolve through the knowledge graph;
* **three types** — judgment / counting / reasoning, with the
  clause-count mix chosen to land on Table II's composition
  (94 / 35 / 90 clauses for 40 / 16 / 44 questions).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

from repro.core.spoc import QuestionType
from repro.nlp.morphology import noun_plural, past_participle, verb_lemma
from repro.dataset.groundtruth import (
    GroundTruthIndex,
    GTTriple,
    categories_for_word,
)

#: hypernym words usable as answer types ("what kind of X")
SUPER_WORDS = ("animal", "pet", "clothes", "food", "toy", "vehicle")

#: semantic predicates usable in a passive main clause
PASSIVE_PREDICATES = ("carrying", "holding", "catching", "eating",
                      "watching", "feeding", "chasing", "pulling",
                      "wearing")

#: predicates usable in relative condition clauses
CONDITION_PREDICATES = ("standing on", "sitting on", "lying on",
                        "walking on", "riding", "carrying", "holding",
                        "eating", "watching", "feeding", "chasing",
                        "playing with", "looking out of", "parked on",
                        "wearing", "pulling", "catching")

#: spatial predicates usable with "appear" main clauses
APPEAR_PREPOSITIONS = ("near", "in front of", "behind", "next to")


@dataclass
class MVQAQuestion:
    """One question–answer pair of the dataset."""

    text: str
    question_type: QuestionType
    answer: str
    clause_count: int
    has_constraint: bool
    spo_triples: tuple[tuple[str, str, str], ...]
    support_images: tuple[int, ...]
    inspect_images: int  # images an annotator must consider (Table II)
    exotic: bool = False  # uses a rare word ("canis") — the Fig. 8a case


@dataclass
class QuestionGenerator:
    """Template-driven generator over a ground-truth index."""

    gt: GroundTruthIndex
    rng: np.random.Generator
    seen_texts: set[str] = field(default_factory=set)
    #: answer-robustness filters (MVQA annotators prefer clear-cut
    #: questions; the modified-VQAv2 builder relaxes these)
    reasoning_margin: float = 1.3
    reasoning_support: int = 3
    judgment_min_yes_images: int = 2
    judgment_max_cooccur: int = 15
    _combo_cache: dict[tuple[str, ...] | None, list] = \
        field(default_factory=dict)
    _counted_used: set[tuple[str, str | None]] = field(default_factory=set)

    # ------------------------------------------------------------------
    # surface realization
    # ------------------------------------------------------------------
    @staticmethod
    def _plural(word: str) -> str:
        return noun_plural(word)

    @staticmethod
    def _passive(predicate: str) -> str:
        """"carrying" -> "carried by"; "wearing" -> "worn by"."""
        words = predicate.split()
        participle = past_participle(verb_lemma(words[0]))
        tail = " ".join(words[1:])
        return f"{participle} {tail} by".replace("  ", " ").strip()

    @staticmethod
    def _relative(predicate: str, obj: str, plural_head: bool,
                  constraint: str | None = None) -> str:
        be = "are" if plural_head else "is"
        adverb = f" {constraint}" if constraint else ""
        return f"that {be}{adverb} {predicate} the {obj}"

    # ------------------------------------------------------------------
    # reasoning questions
    # ------------------------------------------------------------------
    def reasoning(self, clauses: int = 2,
                  constraint: bool = False) -> MVQAQuestion | None:
        """"What kind of SUPER are P1-passive by the B that are P2 the C?"
        """
        combos = self._condition_combos()
        self.rng.shuffle(combos)
        con = "most frequently" if constraint else None
        for b_word, p2, c_word in combos:
            condition = self.gt.find(
                categories_for_word(b_word), p2, categories_for_word(c_word)
            )
            labels = self.gt.condition_labels(b_word, p2, c_word,
                                              constraint=con)
            if not labels:
                continue
            extra_text = ""
            extra_spo: list[tuple[str, str, str]] = []
            if clauses == 3:
                nested = self._nested_condition(c_word)
                if nested is None:
                    continue
                p3, d_word, nested_triples = nested
                extra_text = " " + self._relative(p3, d_word, False)
                extra_spo = [(c_word, p3, d_word)]
                condition = condition + nested_triples
            for super_word in _shuffled(self.rng, SUPER_WORDS):
                if super_word == b_word:
                    continue  # "what kind of pets ... by the pets" reads badly
                for p1 in _shuffled(self.rng, PASSIVE_PREDICATES):
                    answer, main = self.gt.reasoning_answer(
                        labels, p1, super_word,
                        min_margin=self.reasoning_margin,
                        min_support=self.reasoning_support,
                    )
                    if answer is None:
                        continue
                    if not self.gt.requires_multiple_images(condition, main):
                        continue
                    b_plural = self._plural(b_word)
                    text = (
                        f"What kind of {self._plural(super_word)} are "
                        f"{self._passive(p1)} the {b_plural} "
                        f"{self._relative(p2, c_word, True, con)}"
                        f"{extra_text}?"
                    )
                    question = self._finish(
                        text, QuestionType.REASONING, answer,
                        clauses, constraint,
                        [(b_word, p1, super_word), (b_word, p2, c_word)]
                        + extra_spo,
                        condition + main,
                        {super_word, b_word, c_word},
                    )
                    if question is not None:
                        return question
        return None

    # ------------------------------------------------------------------
    # counting questions
    # ------------------------------------------------------------------
    def counting(self, clauses: int = 2,
                 constraint: bool = False,
                 max_count: int = 12,
                 relaxed: bool = False) -> MVQAQuestion | None:
        """Counting questions, two sub-forms.

        The majority form counts *kinds* ("How many kinds of animals
        are eating the grass that ...?"); the minority form counts
        instances and is only emitted when the ground-truth count is
        small enough to survive detector noise.  ``relaxed`` drops the
        support-ambiguity rejection — the last resort when a small
        image pool cannot fill the counting quota otherwise.
        """
        question = self._counting_with_mode(clauses, constraint, True,
                                            max_count, relaxed)
        if question is None:
            # instance counting only exists at small pool scales, where
            # ground-truth counts stay small (see DESIGN.md)
            question = self._counting_with_mode(clauses, constraint,
                                                False, max_count, relaxed)
        return question

    def _counting_with_mode(
        self, clauses: int, constraint: bool, kinds_mode: bool,
        max_count: int, relaxed: bool = False,
    ) -> MVQAQuestion | None:
        combos = self._condition_combos()
        self.rng.shuffle(combos)
        con = "most frequently" if constraint else None
        counted_words = list(SUPER_WORDS) + ["person"] if kinds_mode \
            else sorted(self.gt.category_images)
        self.rng.shuffle(counted_words)
        # spatial predicates are excluded here: "near"-style edges are
        # the most hallucination-prone, which makes kind counts flappy
        predicates = list(CONDITION_PREDICATES)
        for b_word, p2, c_word in combos:
            labels = self.gt.condition_labels(b_word, p2, c_word,
                                              constraint=con)
            if not labels:
                continue
            condition = self.gt.find(
                categories_for_word(b_word), p2, categories_for_word(c_word)
            )
            extra_text = ""
            extra_spo: list[tuple[str, str, str]] = []
            if clauses == 3:
                nested = self._nested_condition(c_word)
                if nested is None:
                    continue
                p3, d_word, nested_triples = nested
                extra_text = " " + self._relative(p3, d_word, False)
                extra_spo = [(c_word, p3, d_word)]
                condition = condition + nested_triples
            for a_word in counted_words:
                if not kinds_mode and (a_word, None) in self._counted_used:
                    continue
                for p1 in _shuffled(self.rng, predicates):
                    if not kinds_mode and (a_word, p1) in self._counted_used:
                        continue
                    if kinds_mode:
                        if relaxed:
                            count, main = self.gt.counting_kinds_answer(
                                a_word, p1, labels,
                                min_images=3, ambiguous_band=(1, 0),
                            )
                        else:
                            count, main = self.gt.counting_kinds_answer(
                                a_word, p1, labels
                            )
                        if not 2 <= count <= max_count:
                            continue
                    else:
                        count, main = self.gt.counting_answer(a_word, p1,
                                                              labels)
                        if not 1 <= count <= 6:
                            continue
                    if not self.gt.requires_multiple_images(condition, main):
                        continue
                    counted = (f"kinds of {self._plural(a_word)}"
                               if kinds_mode else self._plural(a_word))
                    text = (
                        f"How many {counted} are {p1} the "
                        f"{b_word} {self._relative(p2, c_word, False, con)}"
                        f"{extra_text}?"
                    )
                    question = self._finish(
                        text, QuestionType.COUNTING, str(count),
                        clauses, constraint,
                        [(a_word, p1, b_word), (b_word, p2, c_word)]
                        + extra_spo,
                        condition + main,
                        {a_word, b_word, c_word},
                    )
                    if question is not None:
                        if not kinds_mode:
                            self._counted_used.add((a_word, p1))
                            self._counted_used.add((a_word, None))
                        return question
        return None

    # ------------------------------------------------------------------
    # judgment questions
    # ------------------------------------------------------------------
    def judgment(self, clauses: int = 2, constraint: bool = False,
                 want_yes: bool = True) -> MVQAQuestion | None:
        """"Does the A that is P1 the B appear PREP the C?"."""
        combos = self._condition_combos()
        self.rng.shuffle(combos)
        con = "most frequently" if constraint else None
        for a_word, p1, b_word in combos:
            labels = self.gt.condition_labels(a_word, p1, b_word,
                                              constraint=con)
            if not labels:
                continue
            condition = self.gt.find(
                categories_for_word(a_word), p1, categories_for_word(b_word)
            )
            for prep in _shuffled(self.rng, APPEAR_PREPOSITIONS):
                for c_word in self._object_words():
                    is_yes, main = self.gt.judgment_answer(labels, prep,
                                                           c_word)
                    if is_yes != want_yes:
                        continue
                    if is_yes:
                        if len({t.image_id for t in main}) < \
                                self.judgment_min_yes_images:
                            continue  # flimsy yes — one missed edge flips it
                        if not self.gt.requires_multiple_images(condition,
                                                                main):
                            continue
                    else:
                        # a usable no: the subjects and the object rarely
                        # co-occur, so hallucinated edges are unlikely
                        # (but, as in the paper, not impossible)
                        cooccur = self.gt.cooccurrence_images(labels, c_word)
                        if len(cooccur) > self.judgment_max_cooccur:
                            continue
                    extra_text = ""
                    extra_spo: list[tuple[str, str, str]] = []
                    if clauses == 3:
                        nested = self._nested_condition(c_word)
                        if nested is None:
                            continue
                        p3, d_word, _ = nested
                        extra_text = " " + self._relative(p3, d_word, False)
                        extra_spo = [(c_word, p3, d_word)]
                    text = (
                        f"Does the {a_word} "
                        f"{self._relative(p1, b_word, False, con)} "
                        f"appear {prep} the {c_word}{extra_text}?"
                    )
                    question = self._finish(
                        text, QuestionType.JUDGMENT,
                        "yes" if is_yes else "no",
                        clauses, constraint,
                        [(a_word, prep, c_word), (a_word, p1, b_word)]
                        + extra_spo,
                        condition + main,
                        {a_word, b_word, c_word},
                    )
                    if question is not None:
                        return question
        return None

    def judgment_identity(self, constraint: bool = False,
                          want_yes: bool = True) -> MVQAQuestion | None:
        """"Is the SUPER that is P1 the B a C?" (2 clauses)."""
        combos = self._condition_combos(subjects=SUPER_WORDS)
        self.rng.shuffle(combos)
        con = "most frequently" if constraint else None
        for super_word, p1, b_word in combos:
            labels = self.gt.condition_labels(super_word, p1, b_word,
                                              constraint=con)
            if not labels:
                continue
            condition = self.gt.find(
                categories_for_word(super_word), p1,
                categories_for_word(b_word)
            )
            categories = sorted(categories_for_word(super_word))
            self.rng.shuffle(categories)
            for c_word in categories:
                is_yes = c_word in labels
                if is_yes != want_yes:
                    continue
                text = (
                    f"Is the {super_word} "
                    f"{self._relative(p1, b_word, False, con)} "
                    f"a {c_word}?"
                )
                question = self._finish(
                    text, QuestionType.JUDGMENT,
                    "yes" if is_yes else "no",
                    2, constraint,
                    [(super_word, "be", c_word), (super_word, p1, b_word)],
                    condition,
                    {super_word, b_word, c_word},
                )
                if question is not None:
                    return question
        return None

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _condition_combos(
        self, subjects: tuple[str, ...] | None = None
    ) -> list[tuple[str, str, str]]:
        """Candidate (subject-word, predicate, object-word) conditions
        with ground-truth support."""
        cache_key = subjects
        if cache_key in self._combo_cache:
            return list(self._combo_cache[cache_key])
        combos: set[tuple[str, str, str]] = set()
        for predicate in CONDITION_PREDICATES:
            for triple in self.gt.by_predicate.get(predicate, ()):
                combos.add((triple.src_category, predicate,
                            triple.dst_category))
                for super_word in SUPER_WORDS + ("person",):
                    if triple.src_category in categories_for_word(super_word):
                        combos.add((super_word, predicate,
                                    triple.dst_category))
        result = sorted(combos)
        if subjects is not None:
            result = [c for c in result if c[0] in subjects]
        self._combo_cache[cache_key] = result
        return list(result)

    def _nested_condition(
        self, c_word: str
    ) -> tuple[str, str, list[GTTriple]] | None:
        """A further condition on ``c_word`` for 3-clause questions."""
        c_categories = categories_for_word(c_word)
        candidates = []
        for predicate in APPEAR_PREPOSITIONS + ("on",):
            for triple in self.gt.by_predicate.get(predicate, ()):
                if triple.src_category in c_categories:
                    candidates.append((predicate, triple.dst_category))
        if not candidates:
            return None
        self.rng.shuffle(candidates)
        predicate, d_word = candidates[0]
        triples = self.gt.find(c_categories, predicate,
                               categories_for_word(d_word))
        return predicate, d_word, triples

    def _object_words(self) -> list[str]:
        words = [c for c, images in self.gt.category_images.items()
                 if len(images) >= 3]
        self.rng.shuffle(words)
        return words

    def _finish(
        self,
        text: str,
        question_type: QuestionType,
        answer: str,
        clauses: int,
        has_constraint: bool,
        spo: list[tuple[str, str, str]],
        support: list[GTTriple],
        words: set[str],
    ) -> MVQAQuestion | None:
        if text in self.seen_texts:
            return None
        if not self._parses(text):
            return None
        self.seen_texts.add(text)
        return MVQAQuestion(
            text=text,
            question_type=question_type,
            answer=answer,
            clause_count=clauses,
            has_constraint=has_constraint,
            spo_triples=tuple(spo),
            support_images=tuple(sorted({t.image_id for t in support})),
            inspect_images=len(self.gt.images_mentioning(words)),
        )

    @staticmethod
    def _parses(text: str) -> bool:
        """Questions must be inside the parser's grammar."""
        from repro.core.query_graph import generate_query_graph
        from repro.errors import QueryError

        try:
            generate_query_graph(text)
        except QueryError:
            return False
        return True


def _shuffled(rng: np.random.Generator,
              items: Iterable[str]) -> list[str]:
    result = list(items)
    rng.shuffle(result)
    return result
