"""Datasets: the MVQA builder (§VI), the modified-VQAv2 analogue
(§VII), ground-truth indexing, knowledge graphs, and statistics.
"""

from repro.dataset.groundtruth import (
    GroundTruthIndex,
    GTTriple,
    categories_for_word,
)
from repro.dataset.kg import (
    INSTANCE_OF,
    IS_A,
    build_commonsense_kg,
    build_movie_kg,
    character_names,
    characters_with_occupation,
)
from repro.dataset.mvqa import (
    COMPOSITION,
    IMAGE_COUNT,
    MVQADataset,
    POOL_SIZE,
    build_mvqa,
    mvqa_image_filter,
)
from repro.dataset.questions import MVQAQuestion, QuestionGenerator
from repro.dataset.stats import (
    DatasetRow,
    LITERATURE_ROWS,
    TypeBreakdown,
    average_clause_count,
    mvqa_row,
    table2_breakdown,
    total_unique_spos,
)
from repro.dataset.vqa2 import build_modified_vqa2

__all__ = [
    "COMPOSITION",
    "DatasetRow",
    "GTTriple",
    "GroundTruthIndex",
    "IMAGE_COUNT",
    "INSTANCE_OF",
    "IS_A",
    "LITERATURE_ROWS",
    "MVQADataset",
    "MVQAQuestion",
    "POOL_SIZE",
    "QuestionGenerator",
    "TypeBreakdown",
    "average_clause_count",
    "build_commonsense_kg",
    "build_modified_vqa2",
    "build_movie_kg",
    "build_mvqa",
    "categories_for_word",
    "character_names",
    "characters_with_occupation",
    "mvqa_image_filter",
    "mvqa_row",
    "table2_breakdown",
    "total_unique_spos",
]
