"""The MVQA dataset builder (§VI).

Reproduces the paper's construction pipeline:

1. generate the candidate image pool (13,808 scenes — the COCO pool);
2. filter to scenes containing at least one object from the four MVQA
   groups (humans / animals / vehicles / buildings) and more than one
   object overall (single-object scenes cannot carry relations);
3. keep the first 4,233 surviving scenes as the MVQA image base;
4. generate 100 complex question–answer pairs — 40 judgment /
   16 counting / 44 reasoning — with the clause-count mix that yields
   Table II's 94/35/90 clauses, each answer verified against the
   ground-truth index and each question checked to require multiple
   images.

The whole build is deterministic in the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.graph import Graph
from repro.core.spoc import QuestionType
from repro.dataset.groundtruth import GroundTruthIndex
from repro.dataset.kg import build_commonsense_kg
from repro.dataset.questions import MVQAQuestion, QuestionGenerator
from repro.synth.generator import SceneGenerator
from repro.synth.scene import SyntheticScene
from repro.synth.taxonomy import MVQA_GROUPS, category_by_name

POOL_SIZE = 13_808
IMAGE_COUNT = 4_233

#: (question count, 2-clause count, 3-clause count) per type — chosen so
#: clause totals land on Table II: 94 judgment, 35 counting, 90 reasoning
COMPOSITION: dict[QuestionType, tuple[int, int, int]] = {
    QuestionType.JUDGMENT: (40, 26, 14),    # 26*2 + 14*3 = 94
    QuestionType.COUNTING: (16, 13, 3),     # 13*2 + 3*3 = 35
    QuestionType.REASONING: (44, 42, 2),    # 42*2 + 2*3 = 90
}

#: how many of the 100 questions carry a constraint (§VI-C: 40)
CONSTRAINT_TARGET = 40


@dataclass
class MVQADataset:
    """The built dataset: images + questions + the external KG."""

    scenes: list[SyntheticScene]
    questions: list[MVQAQuestion]
    kg: Graph
    pool_size: int = POOL_SIZE

    @property
    def image_count(self) -> int:
        return len(self.scenes)

    def questions_of_type(self, qtype: QuestionType) -> list[MVQAQuestion]:
        return [q for q in self.questions if q.question_type is qtype]


def mvqa_image_filter(scene: SyntheticScene) -> bool:
    """§VI-B image selection: an MVQA-group object + multiple objects."""
    if len(scene.objects) < 2:
        return False
    return any(
        category_by_name(obj.category).group in MVQA_GROUPS
        for obj in scene.objects
    )


def build_mvqa(
    seed: int = 2024,
    pool_size: int = POOL_SIZE,
    image_count: int = IMAGE_COUNT,
    composition: dict[QuestionType, tuple[int, int, int]] | None = None,
) -> MVQADataset:
    """Build MVQA deterministically from a seed.

    ``pool_size`` / ``image_count`` can be lowered for fast tests; the
    defaults reproduce the paper's 13,808 -> 4,233 pipeline.
    """
    composition = composition or COMPOSITION
    scenes = SceneGenerator(seed=seed).generate_pool(pool_size)
    selected = [scene for scene in scenes if mvqa_image_filter(scene)]
    if len(selected) < image_count:
        raise DatasetError(
            f"only {len(selected)} of {pool_size} pool scenes pass the "
            f"MVQA filter; need {image_count}"
        )
    images = selected[:image_count]
    # re-number image ids densely so downstream indexes are compact
    images = [
        SyntheticScene(new_id, scene.objects, scene.relations,
                       scene.caption)
        for new_id, scene in enumerate(images)
    ]

    gt = GroundTruthIndex(images)
    rng = np.random.default_rng(seed + 1)
    generator = QuestionGenerator(gt, rng)
    questions = _generate_questions(generator, composition)
    _inject_exotic_words(questions, rng)
    return MVQADataset(scenes=images, questions=questions,
                       kg=build_commonsense_kg(), pool_size=pool_size)


def _generate_questions(
    generator: QuestionGenerator,
    composition: dict[QuestionType, tuple[int, int, int]],
) -> list[MVQAQuestion]:
    questions: list[MVQAQuestion] = []
    constraints_left = CONSTRAINT_TARGET

    def want_constraint(remaining_questions: int) -> bool:
        nonlocal constraints_left
        if constraints_left <= 0:
            return False
        if constraints_left >= remaining_questions:
            use = True
        else:
            use = bool(generator.rng.random() <
                       constraints_left / remaining_questions)
        if use:
            constraints_left -= 1
        return use

    total_target = sum(count for count, _, _ in composition.values())

    plan: list[tuple[QuestionType, int]] = []
    for qtype, (_, two_clause, three_clause) in composition.items():
        plan.extend([(qtype, 2)] * two_clause)
        plan.extend([(qtype, 3)] * three_clause)

    yes_toggle = True
    for position, (qtype, clauses) in enumerate(plan):
        remaining = total_target - position
        constraint = want_constraint(remaining)
        question = _generate_one(generator, qtype, clauses, constraint,
                                 yes_toggle)
        if question is None and constraint:
            constraints_left += 1
            question = _generate_one(generator, qtype, clauses, False,
                                     yes_toggle)
        if question is None and clauses == 3:
            question = _generate_one(generator, qtype, 2, False, yes_toggle)
        if question is None:
            raise DatasetError(
                f"could not generate a {qtype.value} question with "
                f"{clauses} clauses — pool too small?"
            )
        if qtype is QuestionType.JUDGMENT:
            yes_toggle = not yes_toggle
        questions.append(question)
    return questions


#: rare-word substitutions MVQA annotators used for semantic complexity
#: ("canis" for dog is the paper's Fig. 8(a) example)
_EXOTIC_WORDS = (("dog", "canis"), ("dogs", "canis"))
_EXOTIC_COUNT = 3


def _inject_exotic_words(
    questions: list[MVQAQuestion], rng: np.random.Generator
) -> None:
    """Rewrite a few questions with rare synonyms (§VI-B's "semantic
    complexity"); these exercise the statement-parsing error path of
    Fig. 8(a)."""
    injected = 0
    order = list(range(len(questions)))
    rng.shuffle(order)
    for index in order:
        if injected >= _EXOTIC_COUNT:
            break
        question = questions[index]
        for plain, exotic in _EXOTIC_WORDS:
            target = f" {plain} "
            if target in question.text:
                question.text = question.text.replace(
                    target, f" {exotic} ", 1
                )
                question.exotic = True
                injected += 1
                break


def _generate_one(
    generator: QuestionGenerator,
    qtype: QuestionType,
    clauses: int,
    constraint: bool,
    want_yes: bool,
) -> MVQAQuestion | None:
    if qtype is QuestionType.REASONING:
        return generator.reasoning(clauses=clauses, constraint=constraint)
    if qtype is QuestionType.COUNTING:
        question = generator.counting(clauses=clauses,
                                      constraint=constraint)
        if question is None:
            question = generator.counting(clauses=clauses,
                                          constraint=constraint,
                                          relaxed=True)
        return question
    # judgment: alternate between "appear" and identity forms
    if clauses == 2 and generator.rng.random() < 0.35:
        question = generator.judgment_identity(constraint=constraint,
                                               want_yes=want_yes)
        if question is not None:
            return question
    return generator.judgment(clauses=clauses, constraint=constraint,
                              want_yes=want_yes)
