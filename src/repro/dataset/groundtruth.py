"""Ground-truth index over a scene set: the annotation oracle.

MVQA's question–answer pairs were produced by human annotators reading
image captions (§VI-B).  Our annotator stand-in is this index: it sees
the *ground-truth* scene specifications (never the noisy SGG output)
and answers questions with the label-propagation semantics the SVQA
task defines — a condition clause yields the category labels that
satisfy it, and the next clause re-matches those labels across the
whole image base (Example 7's cross-image reasoning).

SVQA itself answers from detector + relation-model output, so its
accuracy against this oracle measures exactly the paper's three error
sources: statement parsing, object detection, and relationship
generation (Fig. 8).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.nlp.semlex import hypernym_chain
from repro.synth.scene import SyntheticScene
from repro.synth.taxonomy import category_names


@dataclass(frozen=True)
class GTTriple:
    """One ground-truth relation occurrence."""

    image_id: int
    src_index: int
    src_category: str
    predicate: str
    dst_index: int
    dst_category: str


def categories_for_word(word: str) -> set[str]:
    """Scene categories a question word denotes.

    A category word denotes itself; a hypernym word ("pet", "animal",
    "clothes") denotes every category whose hypernym chain contains it.
    """
    lowered = word.lower()
    result: set[str] = set()
    known = set(category_names())
    if lowered in known:
        result.add(lowered)
    for category in known:
        if lowered in hypernym_chain(category):
            result.add(category)
    return result


class GroundTruthIndex:
    """Queryable index of ground-truth triples across a scene set."""

    def __init__(self, scenes: list[SyntheticScene]) -> None:
        self.scenes = scenes
        self.triples: list[GTTriple] = []
        self.by_predicate: dict[str, list[GTTriple]] = {}
        self.category_images: dict[str, set[int]] = {}
        for scene in scenes:
            for obj in scene.objects:
                self.category_images.setdefault(
                    obj.category, set()
                ).add(scene.image_id)
            for relation in scene.relations:
                triple = GTTriple(
                    image_id=scene.image_id,
                    src_index=relation.src,
                    src_category=scene.objects[relation.src].category,
                    predicate=relation.predicate,
                    dst_index=relation.dst,
                    dst_category=scene.objects[relation.dst].category,
                )
                self.triples.append(triple)
                self.by_predicate.setdefault(relation.predicate,
                                             []).append(triple)

    # ------------------------------------------------------------------
    # primitive queries
    # ------------------------------------------------------------------
    def find(
        self,
        src_categories: set[str] | None,
        predicate: str,
        dst_categories: set[str] | None,
    ) -> list[GTTriple]:
        """Triples matching the (category-set, predicate, category-set)
        pattern; None means "any"."""
        result = []
        for triple in self.by_predicate.get(predicate, ()):
            if src_categories is not None and \
                    triple.src_category not in src_categories:
                continue
            if dst_categories is not None and \
                    triple.dst_category not in dst_categories:
                continue
            result.append(triple)
        return result

    def subject_labels(self, triples: list[GTTriple]) -> set[str]:
        """Distinct subject categories (a clause's label output)."""
        return {t.src_category for t in triples}

    def object_labels(self, triples: list[GTTriple]) -> set[str]:
        return {t.dst_category for t in triples}

    # ------------------------------------------------------------------
    # clause-chain semantics (what a question's answer means)
    # ------------------------------------------------------------------
    def condition_labels(
        self,
        subject_word: str,
        predicate: str,
        object_word: str,
        constraint: str | None = None,
    ) -> set[str]:
        """Labels satisfying a condition clause, with optional
        "most/least frequently" constraint over supporting images."""
        triples = self.find(
            categories_for_word(subject_word) or None,
            predicate,
            categories_for_word(object_word) or None,
        )
        if not triples:
            return set()
        if constraint is None:
            return self.subject_labels(triples)
        images_per_label: dict[str, set[int]] = {}
        for triple in triples:
            images_per_label.setdefault(triple.src_category,
                                        set()).add(triple.image_id)
        counts = Counter({lab: len(im) for lab, im in
                          images_per_label.items()})
        ranked = counts.most_common()
        target = ranked[0][1] if constraint.startswith("most") \
            else ranked[-1][1]
        return {lab for lab, count in ranked if count == target}

    def reasoning_answer(
        self,
        subject_labels: set[str],
        predicate: str,
        answer_word: str,
        min_margin: float = 1.0,
        min_support: int = 1,
    ) -> tuple[str | None, list[GTTriple]]:
        """Mode object category among (bound subjects, predicate, kind
        of ``answer_word``) triples.

        ``min_margin`` / ``min_support`` let the question generator
        demand a clear-cut winner (the annotator's instinct): the mode
        must beat the runner-up by the margin factor and have at least
        the given support, or no answer is produced.
        """
        answer_categories = categories_for_word(answer_word)
        triples = [
            t for t in self.find(subject_labels, predicate, None)
            if t.dst_category in answer_categories
            and t.dst_category != answer_word.lower()
        ]
        if not triples:
            return None, []
        ranked = Counter(t.dst_category for t in triples).most_common()
        winner, count = ranked[0]
        if count < min_support:
            return None, []
        if len(ranked) > 1 and count < min_margin * ranked[1][1]:
            return None, []
        return winner, [t for t in triples if t.dst_category == winner]

    def cooccurrence_images(
        self, subject_labels: set[str], object_word: str
    ) -> set[int]:
        """Images containing both some bound subject and the object —
        an upper bound on where *any* relation edge could connect them."""
        subject_images: set[int] = set()
        for label in subject_labels:
            subject_images |= self.category_images.get(label, set())
        object_images: set[int] = set()
        for category in categories_for_word(object_word):
            object_images |= self.category_images.get(category, set())
        return subject_images & object_images

    def counting_answer(
        self,
        counted_word: str,
        predicate: str,
        object_labels: set[str],
    ) -> tuple[int, list[GTTriple]]:
        """Distinct counted-subject instances related to bound objects."""
        triples = self.find(
            categories_for_word(counted_word) or None,
            predicate,
            object_labels,
        )
        instances = {(t.image_id, t.src_index) for t in triples}
        return len(instances), triples

    def counting_kinds_answer(
        self,
        counted_word: str,
        predicate: str,
        object_labels: set[str],
        min_images: int = 4,
        ambiguous_band: tuple[int, int] = (2, 3),
    ) -> tuple[int, list[GTTriple]]:
        """Distinct counted-subject *categories* ("how many kinds of X").

        Only categories supported by at least ``min_images`` distinct
        images count — the annotator ignores one-off appearances, which
        also makes the count stable under detector noise.  When any
        category's support falls inside ``ambiguous_band`` the count is
        reported as -1: such borderline kinds could flip either way
        under noise, so the question generator rejects the combination.
        """
        triples = self.find(
            categories_for_word(counted_word) or None,
            predicate,
            object_labels,
        )
        images_per_category: dict[str, set[int]] = {}
        for triple in triples:
            images_per_category.setdefault(triple.src_category,
                                           set()).add(triple.image_id)
        low, high = ambiguous_band
        if any(low <= len(images) <= high
               for images in images_per_category.values()):
            return -1, []
        kinds = {category for category, images in
                 images_per_category.items() if len(images) >= min_images}
        return len(kinds), [t for t in triples if t.src_category in kinds]

    def judgment_answer(
        self,
        subject_labels: set[str],
        predicate: str,
        object_word: str,
    ) -> tuple[bool, list[GTTriple]]:
        """Whether any bound subject relates to the object anywhere."""
        triples = self.find(
            subject_labels,
            predicate,
            categories_for_word(object_word) or None,
        )
        return bool(triples), triples

    # ------------------------------------------------------------------
    # dataset-construction helpers
    # ------------------------------------------------------------------
    def images_mentioning(self, words: set[str]) -> set[int]:
        """Images containing any instance of any denoted category —
        the image set an annotator must inspect (Table II's
        "Average Images" column)."""
        images: set[int] = set()
        for word in words:
            for category in categories_for_word(word):
                images |= self.category_images.get(category, set())
        return images

    def requires_multiple_images(
        self, condition: list[GTTriple], main: list[GTTriple]
    ) -> bool:
        """§VI-B filter: a question is cross-image when no single image
        contains evidence for both the condition and the main clause."""
        condition_images = {t.image_id for t in condition}
        main_images = {t.image_id for t in main}
        if not condition_images or not main_images:
            return True
        return not (condition_images & main_images)
