"""Dataset statistics: the numbers behind Tables I and II.

Table I compares MVQA against the published VQA datasets — those rows
are literature constants reproduced verbatim; the MVQA row is computed
from the built dataset.  Table II breaks MVQA down by question type.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.spoc import QuestionType
from repro.dataset.mvqa import MVQADataset


@dataclass(frozen=True)
class DatasetRow:
    """One row of Table I."""

    name: str
    images: int
    knowledge_based: bool
    cross_image: bool
    source: str
    goal: str
    avg_query_length: float


#: literature rows of Table I (constants from the paper)
LITERATURE_ROWS: tuple[DatasetRow, ...] = (
    DatasetRow("DAQUAR", 1_449, False, False, "NYU-V2",
               "visual: counts, colors, objects", 11.5),
    DatasetRow("Visual7W", 47_300, False, False, "COCO",
               "visual: object-grounded queries", 6.9),
    DatasetRow("VQA(2.0)", 200_000, False, False, "COCO",
               "visual understanding with commonsense", 6.1),
    DatasetRow("KB-VQA", 700, True, False, "COCO",
               "visual reasoning with given knowledge", 6.8),
    DatasetRow("FVQA", 2_190, True, False, "COCO/ImageNet",
               "visual reasoning with given knowledge", 9.5),
    DatasetRow("OK-VQA", 14_031, True, False, "COCO",
               "visual reasoning with open knowledge", 8.1),
)


def mvqa_row(dataset: MVQADataset) -> DatasetRow:
    """The computed MVQA row of Table I."""
    lengths = [len(q.text.replace("?", " ?").split())
               for q in dataset.questions]
    return DatasetRow(
        name="MVQA (ours)",
        images=dataset.image_count,
        knowledge_based=True,
        cross_image=True,
        source="synthetic COCO-style pool",
        goal="visual reasoning across images",
        avg_query_length=float(np.mean(lengths)) if lengths else 0.0,
    )


@dataclass(frozen=True)
class TypeBreakdown:
    """One row of Table II."""

    question_type: QuestionType
    questions: int
    clauses: int
    unique_spos: int
    avg_images: int


def table2_breakdown(dataset: MVQADataset) -> list[TypeBreakdown]:
    """Per-type question/clause/SPO/image statistics (Table II)."""
    rows = []
    for qtype in (QuestionType.JUDGMENT, QuestionType.COUNTING,
                  QuestionType.REASONING):
        questions = dataset.questions_of_type(qtype)
        spos: set[tuple[str, str, str]] = set()
        for question in questions:
            spos.update(question.spo_triples)
        avg_images = int(np.mean([q.inspect_images for q in questions])) \
            if questions else 0
        rows.append(TypeBreakdown(
            question_type=qtype,
            questions=len(questions),
            clauses=sum(q.clause_count for q in questions),
            unique_spos=len(spos),
            avg_images=avg_images,
        ))
    return rows


def total_unique_spos(dataset: MVQADataset) -> int:
    """Whole-dataset unique SPO count (§VI-C reports 136)."""
    spos: set[tuple[str, str, str]] = set()
    for question in dataset.questions:
        spos.update(question.spo_triples)
    return len(spos)


def average_clause_count(dataset: MVQADataset) -> float:
    """§VI-C reports an average of 2.2 clauses per question."""
    if not dataset.questions:
        return 0.0
    return float(np.mean([q.clause_count for q in dataset.questions]))
