"""Modified VQAv2 (§VII, Experimental Setting).

The paper adapts VQAv2 so baselines can be compared on cross-image
queries: (1) count questions are applied over multiple images and ask
for the accumulated result; (2) two related simple questions are
combined into one complex question.  The result is "much simpler than
MVQA but still requires reasoning over multiple images".

This builder reproduces that modification over a synthetic pool:
smaller scenes, two-clause questions only, and — unlike MVQA — no
strict multi-image filter (combined questions may share an evidence
image), which is what keeps the dataset easier.
"""

from __future__ import annotations

import numpy as np

from repro.core.spoc import QuestionType
from repro.dataset.groundtruth import GroundTruthIndex
from repro.dataset.kg import build_commonsense_kg
from repro.dataset.mvqa import MVQADataset
from repro.dataset.questions import MVQAQuestion, QuestionGenerator
from repro.errors import DatasetError
from repro.synth.generator import SceneGenerator

DEFAULT_IMAGES = 800
DEFAULT_COMPOSITION = {
    QuestionType.JUDGMENT: 40,
    QuestionType.COUNTING: 30,
    QuestionType.REASONING: 40,
}


def build_modified_vqa2(
    seed: int = 77,
    image_count: int = DEFAULT_IMAGES,
    composition: dict[QuestionType, int] | None = None,
) -> MVQADataset:
    """Build the modified-VQAv2 analogue.

    Unlike MVQA's hand-picked clear-cut questions, the mechanically
    combined VQAv2 questions carry no answer-robustness filtering —
    borderline modes and flimsy yes/no evidence are allowed, which is
    why every system (including SVQA) leaves accuracy on the table
    here (Table IV).
    """
    composition = composition or dict(DEFAULT_COMPOSITION)
    scenes = SceneGenerator(seed=seed).generate_pool(image_count)
    gt = _LenientIndex(scenes)
    rng = np.random.default_rng(seed + 1)
    generator = QuestionGenerator(
        gt, rng,
        reasoning_margin=1.0,
        reasoning_support=1,
        judgment_min_yes_images=2,
        judgment_max_cooccur=60,
    )

    questions: list[MVQAQuestion] = []
    yes_toggle = True
    for qtype, count in composition.items():
        for _ in range(count):
            question = _generate(generator, qtype, yes_toggle)
            if qtype is QuestionType.JUDGMENT:
                yes_toggle = not yes_toggle
            if question is None:
                raise DatasetError(
                    f"could not generate a {qtype.value} question for "
                    "modified VQAv2"
                )
            questions.append(question)
    return MVQADataset(scenes=scenes, questions=questions,
                       kg=build_commonsense_kg(), pool_size=image_count)


def _generate(generator: QuestionGenerator, qtype: QuestionType,
              want_yes: bool) -> MVQAQuestion | None:
    if qtype is QuestionType.REASONING:
        return generator.reasoning(clauses=2)
    if qtype is QuestionType.COUNTING:
        return generator.counting(clauses=2)
    if generator.rng.random() < 0.3:
        question = generator.judgment_identity(want_yes=want_yes)
        if question is not None:
            return question
    return generator.judgment(clauses=2, want_yes=want_yes)


class _LenientIndex(GroundTruthIndex):
    """Ground truth without MVQA's multi-image and ambiguity filters."""

    def requires_multiple_images(self, condition, main) -> bool:
        return True

    def counting_kinds_answer(self, counted_word, predicate, object_labels,
                              min_images=3, ambiguous_band=(2, 2)):
        # runtime threshold; only the sharpest boundary cases rejected
        return super().counting_kinds_answer(
            counted_word, predicate, object_labels,
            min_images=min_images, ambiguous_band=ambiguous_band,
        )
