"""Knowledge-graph builders: the external graph ``G`` of the paper.

Two flavors are provided:

* :func:`build_commonsense_kg` — concept vertices for every scene
  category plus their hypernyms, connected by ``is a`` edges.  This is
  the *external knowledge* MVQA questions need ("pets" resolves to
  dog/cat/bird instances only through the graph, as in Example 7).
* :func:`build_movie_kg` — the Figure-1-style movie graph: named
  characters, their relationships (girlfriend of / friend of), their
  occupations, and the movies they appear in.  This drives the paper's
  flagship example question about Harry Potter's girlfriend.

Vertex props carry ``kind``: ``concept`` for category/hypernym nodes,
``entity`` for named individuals.
"""

from __future__ import annotations

from repro.graph import Graph
from repro.nlp.semlex import HYPERNYMS
from repro.synth.taxonomy import CATEGORIES

#: edge label linking a scene-graph instance vertex to its KG concept
INSTANCE_OF = "instance of"
#: edge label of the hypernym hierarchy
IS_A = "is a"


def build_commonsense_kg() -> Graph:
    """Concepts for all scene categories + hypernym hierarchy."""
    kg = Graph(name="commonsense-kg")
    concepts: dict[str, int] = {}

    def concept(name: str) -> int:
        if name not in concepts:
            vertex = kg.add_vertex(name, {"kind": "concept"})
            concepts[name] = vertex.id
        return concepts[name]

    for category in CATEGORIES:
        concept(category.name)
    for child, parent in HYPERNYMS.items():
        kg.add_edge(concept(child), concept(parent), IS_A)
    return kg


#: (character, occupation) — occupation links via "is a" to a concept
_CHARACTERS: tuple[tuple[str, str], ...] = (
    ("Harry Potter", "wizard"),
    ("Ginny Weasley", "witch"),
    ("Cho Chang", "witch"),
    ("Ron Weasley", "wizard"),
    ("Hermione Granger", "witch"),
    ("Neville Longbottom", "wizard"),
    ("Luna Lovegood", "witch"),
    ("Draco Malfoy", "wizard"),
    ("Dudley Dursley", "muggle"),
)

_RELATIONSHIPS: tuple[tuple[str, str, str], ...] = (
    ("Harry Potter", "girlfriend of", "Ginny Weasley"),
    ("Harry Potter", "girlfriend of", "Cho Chang"),
    ("Ron Weasley", "girlfriend of", "Hermione Granger"),
    ("Harry Potter", "friend of", "Ron Weasley"),
    ("Harry Potter", "friend of", "Hermione Granger"),
    ("Ron Weasley", "friend of", "Harry Potter"),
    ("Hermione Granger", "friend of", "Harry Potter"),
    ("Ginny Weasley", "friend of", "Luna Lovegood"),
    ("Neville Longbottom", "friend of", "Harry Potter"),
    ("Draco Malfoy", "rival of", "Harry Potter"),
)

_MOVIES: tuple[str, ...] = (
    "The Philosopher's Stone",
    "The Chamber of Secrets",
    "The Goblet of Fire",
)


def build_movie_kg(include_commonsense: bool = True) -> Graph:
    """The movie-domain knowledge graph of Example 1 / Figure 1.

    With ``include_commonsense`` the category/hypernym concepts are
    embedded too, so one merged graph serves both named-entity and
    commonsense reasoning.
    """
    kg = build_commonsense_kg() if include_commonsense \
        else Graph(name="movie-kg")
    kg.name = "movie-kg"

    by_label = {v.label: v.id for v in kg.vertices()}

    def vertex(label: str, kind: str) -> int:
        if label not in by_label:
            by_label[label] = kg.add_vertex(label, {"kind": kind}).id
        return by_label[label]

    for occupation in ("wizard", "witch", "muggle"):
        vertex(occupation, "concept")
    for name, occupation in _CHARACTERS:
        character = vertex(name, "entity")
        kg.add_edge(character, vertex(occupation, "concept"), IS_A)
    for src, relation, dst in _RELATIONSHIPS:
        kg.add_edge(vertex(src, "entity"), vertex(dst, "entity"), relation)
    for movie in _MOVIES:
        movie_vertex = vertex(movie, "entity")
        for name, _ in _CHARACTERS[:6]:
            kg.add_edge(vertex(name, "entity"), movie_vertex, "appears in")
    return kg


def character_names() -> list[str]:
    """Names of all movie-KG characters (for scene generation)."""
    return [name for name, _ in _CHARACTERS]


def characters_with_occupation(occupation: str) -> list[str]:
    """Characters whose occupation concept matches."""
    return [name for name, occ in _CHARACTERS if occ == occupation]
