"""Synthetic-scene substrate: the COCO replacement.

Procedurally generated scene specifications (objects, boxes, depth,
ground-truth relations) rendered to coarse rasters that the simulated
vision pipeline consumes.
"""

from repro.synth.generator import TEMPLATES, SceneGenerator, SceneTemplate, SlotSpec
from repro.synth.relations import (
    PRIOR,
    RELATIONS,
    SEMANTIC_RELATIONS,
    SPATIAL_RELATIONS,
    UBIQUITOUS_RELATIONS,
    prior_vector,
    relation_index,
)
from repro.synth.scene import (
    Box,
    CANVAS,
    Raster,
    SceneObject,
    SceneRelation,
    SyntheticScene,
    center_distance,
    complete_spatial_relations,
    iou,
    overlap_fraction,
    spatial_relation,
)
from repro.synth.taxonomy import (
    CATEGORIES,
    MVQA_GROUPS,
    Category,
    Group,
    categories_in_group,
    category_by_name,
    category_index,
    category_names,
)

__all__ = [
    "Box",
    "CANVAS",
    "CATEGORIES",
    "Category",
    "Group",
    "MVQA_GROUPS",
    "PRIOR",
    "RELATIONS",
    "Raster",
    "SEMANTIC_RELATIONS",
    "SPATIAL_RELATIONS",
    "SceneGenerator",
    "SceneObject",
    "SceneRelation",
    "SceneTemplate",
    "SlotSpec",
    "SyntheticScene",
    "TEMPLATES",
    "UBIQUITOUS_RELATIONS",
    "categories_in_group",
    "category_by_name",
    "category_index",
    "category_names",
    "center_distance",
    "complete_spatial_relations",
    "iou",
    "overlap_fraction",
    "prior_vector",
    "relation_index",
    "spatial_relation",
]
