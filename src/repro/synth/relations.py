"""Relation (predicate) vocabulary shared by scenes and SGG models.

The vocabulary plays the role of Visual Genome's 50 predicate classes.
``PRIOR`` encodes the long-tailed label-pair-independent frequency bias
that plagues trained SGG models: head predicates like "on" and "near"
dominate, so a biased model predicts them everywhere (the Fig. 3(a)
phenomenon TDE corrects).
"""

from __future__ import annotations

import numpy as np

#: predicate -> training-frequency prior.  Head classes first; the tail
#: carries the explicit/semantic predicates TDE is supposed to recover.
PRIOR: dict[str, float] = {
    "on": 0.24,
    "near": 0.20,
    "has": 0.11,
    "in": 0.08,
    "next to": 0.06,
    "behind": 0.035,
    "in front of": 0.030,
    "above": 0.025,
    "under": 0.025,
    "sitting on": 0.020,
    "standing on": 0.020,
    "holding": 0.018,
    "wearing": 0.016,
    "watching": 0.014,
    "riding": 0.012,
    "carrying": 0.012,
    "walking on": 0.010,
    "lying on": 0.010,
    "eating": 0.009,
    "playing with": 0.008,
    "catching": 0.008,
    "jumping over": 0.007,
    "pulling": 0.006,
    "parked on": 0.006,
    "looking out of": 0.005,
    "hanging out with": 0.005,
    "chasing": 0.004,
    "feeding": 0.004,
}

RELATIONS: tuple[str, ...] = tuple(PRIOR)

#: spatial predicates derivable from box geometry alone
SPATIAL_RELATIONS = frozenset({
    "on", "near", "in", "next to", "behind", "in front of", "above",
    "under",
})

#: ubiquitous head predicates with no distinctive visual appearance —
#: a relation head learns them from frequency, not from pixels, so the
#: renderer emits no appearance signal for them (they are exactly the
#: bias TDE subtracts)
UBIQUITOUS_RELATIONS = frozenset({"on", "near", "has", "in", "next to"})

#: semantic predicates that require appearance evidence
SEMANTIC_RELATIONS = frozenset(RELATIONS) - SPATIAL_RELATIONS


def relation_index(predicate: str) -> int:
    """Stable class id of a predicate."""
    try:
        return _INDEX[predicate]
    except KeyError:
        raise KeyError(f"unknown relation: {predicate!r}") from None


def prior_vector() -> np.ndarray:
    """The frequency prior as a normalized vector over RELATIONS."""
    vec = np.array([PRIOR[r] for r in RELATIONS], dtype=float)
    return vec / vec.sum()


_INDEX = {r: i for i, r in enumerate(RELATIONS)}


def _validate() -> None:
    total = sum(PRIOR.values())
    if not 0.99 < total < 1.01:
        raise ValueError(f"relation priors sum to {total}, expected ~1.0")


_validate()
