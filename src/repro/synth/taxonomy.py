"""Category taxonomy for synthetic scenes.

MVQA selects COCO images whose types are "humans, animals, vehicles,
and buildings, which have the highest proportion and crossover rate in
COCO" (§VI-B).  The taxonomy here mirrors that: every category belongs
to a group, and the group drives both scene generation (which objects
co-occur) and the MVQA image filter.

Category names are drawn from the shared noun table in
:mod:`repro.nlp.lexicon`, so the vision vocabulary, the question
vocabulary, and the knowledge-graph vocabulary can never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.nlp.lexicon import NOUN_TABLE


class Group(str, Enum):
    """Top-level category groups (the MVQA image-type filter)."""

    HUMAN = "human"
    ANIMAL = "animal"
    VEHICLE = "vehicle"
    BUILDING = "building"
    OBJECT = "object"
    SCENE = "scene"


@dataclass(frozen=True)
class Category:
    """One object category.

    Attributes
    ----------
    name:
        Singular noun, present in the NLP lexicon.
    group:
        The category's :class:`Group`.
    size:
        Typical (min, max) box side length, in pixels of the 128-canvas.
    depth_bias:
        0.0 = tends to be in front, 1.0 = tends to be background.
    """

    name: str
    group: Group
    size: tuple[int, int]
    depth_bias: float


CATEGORIES: tuple[Category, ...] = (
    # humans
    Category("man", Group.HUMAN, (18, 40), 0.4),
    Category("woman", Group.HUMAN, (18, 40), 0.4),
    Category("boy", Group.HUMAN, (12, 28), 0.35),
    Category("girl", Group.HUMAN, (12, 28), 0.35),
    # animals
    Category("dog", Group.ANIMAL, (10, 26), 0.3),
    Category("cat", Group.ANIMAL, (8, 20), 0.3),
    Category("horse", Group.ANIMAL, (20, 44), 0.4),
    Category("bird", Group.ANIMAL, (4, 12), 0.25),
    Category("cow", Group.ANIMAL, (20, 44), 0.45),
    Category("sheep", Group.ANIMAL, (14, 30), 0.45),
    Category("bear", Group.ANIMAL, (18, 40), 0.4),
    Category("elephant", Group.ANIMAL, (30, 60), 0.5),
    Category("zebra", Group.ANIMAL, (20, 44), 0.45),
    Category("giraffe", Group.ANIMAL, (24, 56), 0.5),
    # vehicles
    Category("car", Group.VEHICLE, (24, 50), 0.5),
    Category("bus", Group.VEHICLE, (40, 70), 0.55),
    Category("truck", Group.VEHICLE, (36, 64), 0.55),
    Category("bicycle", Group.VEHICLE, (14, 30), 0.4),
    Category("motorcycle", Group.VEHICLE, (16, 34), 0.4),
    Category("train", Group.VEHICLE, (60, 100), 0.65),
    Category("boat", Group.VEHICLE, (24, 56), 0.55),
    Category("airplane", Group.VEHICLE, (40, 80), 0.6),
    # buildings / structures
    Category("house", Group.BUILDING, (40, 80), 0.8),
    Category("building", Group.BUILDING, (50, 100), 0.85),
    Category("tower", Group.BUILDING, (24, 60), 0.85),
    Category("bridge", Group.BUILDING, (50, 110), 0.8),
    Category("fence", Group.BUILDING, (40, 90), 0.7),
    Category("bench", Group.BUILDING, (16, 34), 0.5),
    Category("station", Group.BUILDING, (50, 100), 0.85),
    # objects
    Category("frisbee", Group.OBJECT, (4, 9), 0.2),
    Category("ball", Group.OBJECT, (4, 10), 0.2),
    Category("kite", Group.OBJECT, (8, 18), 0.3),
    Category("umbrella", Group.OBJECT, (10, 22), 0.3),
    Category("backpack", Group.OBJECT, (6, 14), 0.3),
    Category("hat", Group.OBJECT, (4, 9), 0.15),
    Category("helmet", Group.OBJECT, (4, 9), 0.15),
    Category("robe", Group.OBJECT, (10, 22), 0.25),
    Category("coat", Group.OBJECT, (10, 22), 0.25),
    Category("scarf", Group.OBJECT, (4, 10), 0.2),
    Category("leash", Group.OBJECT, (4, 12), 0.25),
    Category("sofa", Group.OBJECT, (24, 46), 0.55),
    Category("bed", Group.OBJECT, (28, 54), 0.6),
    Category("chair", Group.OBJECT, (12, 26), 0.5),
    Category("table", Group.OBJECT, (18, 38), 0.55),
    Category("tv", Group.OBJECT, (12, 26), 0.55),
    Category("laptop", Group.OBJECT, (8, 16), 0.35),
    Category("book", Group.OBJECT, (4, 10), 0.25),
    Category("bottle", Group.OBJECT, (3, 8), 0.25),
    Category("cup", Group.OBJECT, (3, 7), 0.2),
    Category("pizza", Group.OBJECT, (6, 14), 0.25),
    Category("sandwich", Group.OBJECT, (4, 10), 0.25),
    Category("apple", Group.OBJECT, (3, 7), 0.2),
    Category("banana", Group.OBJECT, (3, 8), 0.2),
    Category("skateboard", Group.OBJECT, (8, 16), 0.3),
    Category("surfboard", Group.OBJECT, (12, 26), 0.35),
    Category("toy", Group.OBJECT, (4, 10), 0.2),
    # scene elements
    Category("grass", Group.SCENE, (60, 120), 0.95),
    Category("tree", Group.SCENE, (24, 60), 0.85),
    Category("road", Group.SCENE, (70, 126), 0.95),
    Category("sidewalk", Group.SCENE, (50, 110), 0.9),
    Category("field", Group.SCENE, (70, 126), 0.97),
    Category("beach", Group.SCENE, (70, 126), 0.97),
    Category("window", Group.SCENE, (8, 20), 0.75),
    Category("door", Group.SCENE, (10, 24), 0.75),
    Category("wall", Group.SCENE, (50, 110), 0.9),
)

#: the four MVQA filter groups (§VI-B)
MVQA_GROUPS = (Group.HUMAN, Group.ANIMAL, Group.VEHICLE, Group.BUILDING)


def category_by_name(name: str) -> Category:
    """Look up a category by its (singular) name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown category: {name!r}") from None


def category_index(name: str) -> int:
    """Stable integer id of a category (used by the raster renderer)."""
    return _INDEX[name]


def category_names() -> list[str]:
    return [c.name for c in CATEGORIES]


def categories_in_group(group: Group) -> list[Category]:
    return [c for c in CATEGORIES if c.group == group]


def _validate() -> None:
    names = [c.name for c in CATEGORIES]
    if len(names) != len(set(names)):
        raise ValueError("duplicate category names in taxonomy")
    missing = [n for n in names if n not in NOUN_TABLE]
    if missing:
        raise ValueError(f"categories missing from the NLP lexicon: {missing}")


_BY_NAME = {c.name: c for c in CATEGORIES}
_INDEX = {c.name: i + 1 for i, c in enumerate(CATEGORIES)}  # 0 = background
_validate()
