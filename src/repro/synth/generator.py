"""Seeded scene-pool generator (the COCO-pool substitute).

MVQA starts from a 13,808-image COCO pool (§VI-B).  This generator
produces a pool of :class:`~repro.synth.scene.SyntheticScene` from a
library of *scene templates* — recurring compositions (a dog catching
a frisbee while a man watches; a pet looking out of a car; people
riding horses; street scenes...) with randomized categories, positions,
and backgrounds.  Generation is fully determined by the seed.

Every semantic relation a template asserts is realized geometrically by
the placement engine, so the rendered raster genuinely supports the
relation (a held frisbee overlaps the dog; a rider sits on the horse).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.synth.scene import (
    Box,
    CANVAS,
    SceneObject,
    SceneRelation,
    SyntheticScene,
    complete_spatial_relations,
)
from repro.synth.taxonomy import category_by_name
from repro.nlp.morphology import gerund, verb_lemma


@dataclass(frozen=True)
class SlotSpec:
    """One participant slot of a template: a name and category choices."""

    name: str
    categories: tuple[str, ...]


@dataclass(frozen=True)
class SceneTemplate:
    """A recurring scene composition.

    ``relations`` are (src_slot, predicate, dst_slot) triples; the
    placement engine realizes them in order, so a slot must appear as
    the *later* participant of its first relation with an
    already-placed slot.
    """

    name: str
    slots: tuple[SlotSpec, ...]
    relations: tuple[tuple[str, str, str], ...]
    background: tuple[str, ...] = ()
    optional_extras: tuple[str, ...] = ()


TEMPLATES: tuple[SceneTemplate, ...] = (
    SceneTemplate(
        "dog_frisbee",
        (SlotSpec("ground", ("grass", "field")),
         SlotSpec("dog", ("dog",)),
         SlotSpec("frisbee", ("frisbee", "ball")),
         SlotSpec("man", ("man", "woman", "boy"))),
        (("dog", "jumping over", "ground"),
         ("dog", "catching", "frisbee"),
         ("man", "watching", "dog")),
        background=("fence", "tree"),
    ),
    SceneTemplate(
        "pet_in_vehicle",
        (SlotSpec("vehicle", ("car", "truck", "bus")),
         SlotSpec("pet", ("dog", "cat"))),
        (("pet", "looking out of", "vehicle"),),
        background=("road", "building"),
    ),
    SceneTemplate(
        "pet_carrying",
        (SlotSpec("ground", ("grass", "beach", "field")),
         SlotSpec("pet", ("dog", "cat")),
         SlotSpec("prey", ("bird", "toy", "ball"))),
        (("pet", "standing on", "ground"),
         ("pet", "carrying", "prey")),
        background=("tree",),
    ),
    SceneTemplate(
        "riding",
        (SlotSpec("ground", ("field", "road", "beach")),
         SlotSpec("mount", ("horse", "bicycle", "motorcycle",
                            "skateboard")),
         SlotSpec("rider", ("man", "woman", "boy", "girl")),
         SlotSpec("headwear", ("hat", "helmet"))),
        (("mount", "on", "ground"),
         ("rider", "riding", "mount"),
         ("rider", "wearing", "headwear")),
        background=("tree", "fence"),
    ),
    SceneTemplate(
        "street",
        (SlotSpec("road", ("road",)),
         SlotSpec("vehicle", ("car", "bus", "truck", "motorcycle")),
         SlotSpec("walkway", ("sidewalk",)),
         SlotSpec("person", ("man", "woman"))),
        (("vehicle", "parked on", "road"),
         ("person", "walking on", "walkway")),
        background=("building", "tower"),
    ),
    SceneTemplate(
        "dressed_person",
        (SlotSpec("person", ("man", "woman")),
         SlotSpec("clothes", ("robe", "coat", "scarf")),
         SlotSpec("headwear", ("hat", "helmet"))),
        (("person", "wearing", "clothes"),
         ("person", "wearing", "headwear")),
        background=("building", "house", "grass"),
    ),
    SceneTemplate(
        "grazing",
        (SlotSpec("ground", ("field", "grass")),
         SlotSpec("animal", ("cow", "sheep", "horse", "zebra",
                             "giraffe", "elephant"))),
        (("animal", "standing on", "ground"),
         ("animal", "eating", "ground")),
        background=("tree", "fence"),
    ),
    SceneTemplate(
        "living_room",
        (SlotSpec("seat", ("sofa", "chair", "bed")),
         SlotSpec("pet", ("cat", "dog")),
         SlotSpec("screen", ("tv", "laptop")),
         SlotSpec("person", ("man", "woman", "girl", "boy"))),
        (("pet", "sitting on", "seat"),
         ("person", "watching", "screen")),
        background=("window", "wall", "table"),
    ),
    SceneTemplate(
        "nap",
        (SlotSpec("bed", ("bed", "sofa")),
         SlotSpec("pet", ("dog", "cat"))),
        (("pet", "lying on", "bed"),),
        background=("window", "wall"),
    ),
    SceneTemplate(
        "park_play",
        (SlotSpec("ground", ("grass", "field")),
         SlotSpec("child", ("boy", "girl")),
         SlotSpec("toy", ("ball", "frisbee", "kite", "toy"))),
        (("child", "standing on", "ground"),
         ("child", "playing with", "toy")),
        background=("bench", "tree"),
    ),
    SceneTemplate(
        "beach_kite",
        (SlotSpec("ground", ("beach",)),
         SlotSpec("person", ("man", "woman", "boy", "girl")),
         SlotSpec("item", ("kite", "surfboard", "umbrella"))),
        (("person", "standing on", "ground"),
         ("person", "holding", "item")),
    ),
    SceneTemplate(
        "bus_stop",
        (SlotSpec("structure", ("station", "building")),
         SlotSpec("vehicle", ("bus", "train")),
         SlotSpec("person", ("man", "woman"))),
        (("vehicle", "near", "structure"),
         ("person", "next to", "vehicle")),
        background=("road",),
    ),
    SceneTemplate(
        "dog_walk",
        (SlotSpec("walkway", ("sidewalk", "road", "grass")),
         SlotSpec("person", ("man", "woman")),
         SlotSpec("pet", ("dog",)),
         SlotSpec("lead", ("leash",))),
        (("person", "walking on", "walkway"),
         ("person", "holding", "lead"),
         ("pet", "next to", "person")),
        background=("fence", "tree", "building"),
    ),
    SceneTemplate(
        "feeding",
        (SlotSpec("ground", ("grass", "field")),
         SlotSpec("person", ("man", "woman", "girl", "boy")),
         SlotSpec("animal", ("bird", "horse", "sheep", "dog"))),
        (("person", "standing on", "ground"),
         ("person", "feeding", "animal")),
        background=("bench", "tree", "fence"),
    ),
    SceneTemplate(
        "picnic",
        (SlotSpec("ground", ("grass", "beach")),
         SlotSpec("table", ("table", "bench")),
         SlotSpec("person", ("man", "woman", "boy", "girl")),
         SlotSpec("food", ("pizza", "sandwich", "apple", "banana"))),
        (("table", "on", "ground"),
         ("person", "eating", "food")),
        background=("tree",),
    ),
    SceneTemplate(
        "chase",
        (SlotSpec("ground", ("grass", "field", "beach")),
         SlotSpec("chaser", ("dog",)),
         SlotSpec("chased", ("cat", "bird", "sheep"))),
        (("chaser", "chasing", "chased"),
         ("chaser", "standing on", "ground")),
        background=("tree", "fence"),
    ),
    SceneTemplate(
        "horse_cart",
        (SlotSpec("ground", ("road", "field")),
         SlotSpec("horse", ("horse",)),
         SlotSpec("load", ("car", "truck"))),
        (("horse", "standing on", "ground"),
         ("horse", "pulling", "load")),
        background=("tree", "fence", "house"),
    ),
)


class SceneGenerator:
    """Deterministic scene generator.

    >>> pool = SceneGenerator(seed=7).generate_pool(10)
    >>> len(pool)
    10
    """

    def __init__(self, seed: int = 0,
                 templates: tuple[SceneTemplate, ...] = TEMPLATES) -> None:
        self._rng = np.random.default_rng(seed)
        self._templates = templates

    def generate_pool(self, count: int) -> list[SyntheticScene]:
        """Generate ``count`` scenes with sequential image ids."""
        return [self.generate(image_id) for image_id in range(count)]

    def generate(self, image_id: int) -> SyntheticScene:
        """Generate one scene from a random template."""
        template = self._templates[self._rng.integers(len(self._templates))]
        return self.generate_from_template(image_id, template)

    def generate_from_template(
        self, image_id: int, template: SceneTemplate
    ) -> SyntheticScene:
        rng = self._rng
        chosen: dict[str, str] = {
            slot.name: slot.categories[rng.integers(len(slot.categories))]
            for slot in template.slots
        }
        placed: dict[str, SceneObject] = {}
        objects: list[SceneObject] = []
        relations: list[SceneRelation] = []

        def add_object(category: str, box: Box, depth: float) -> SceneObject:
            obj = SceneObject(len(objects), category, box.clipped(),
                              float(np.clip(depth, 0.0, 1.0)))
            objects.append(obj)
            return obj

        # place slots in template order, honoring relation geometry
        for slot in template.slots:
            category = chosen[slot.name]
            anchor_relation = _first_relation_with_placed(
                template.relations, slot.name, placed
            )
            if anchor_relation is None:
                box, depth = self._free_placement(category)
            else:
                src, predicate, dst = anchor_relation
                if src == slot.name:
                    anchor = placed[dst]
                    box, depth = self._place_subject(category, predicate,
                                                     anchor)
                else:
                    anchor = placed[src]
                    box, depth = self._place_object(category, predicate,
                                                    anchor)
            placed[slot.name] = add_object(category, box, depth)

        for src, predicate, dst in template.relations:
            relations.append(SceneRelation(placed[src].index,
                                           placed[dst].index, predicate))

        # background and extras
        for category in template.background:
            if rng.random() < 0.5:
                box, depth = self._free_placement(category)
                add_object(category, box, depth + 0.1)

        relations = complete_spatial_relations(objects, relations)
        caption = _caption(objects, relations)
        return SyntheticScene(image_id, objects, relations, caption)

    # ------------------------------------------------------------------
    # placement engine
    # ------------------------------------------------------------------
    def _sample_size(self, category: str) -> tuple[int, int]:
        lo, hi = category_by_name(category).size
        w = int(self._rng.integers(lo, hi + 1))
        h = int(w * self._rng.uniform(0.7, 1.3))
        return w, max(2, min(h, CANVAS - 2))

    def _free_placement(self, category: str) -> tuple[Box, float]:
        w, h = self._sample_size(category)
        x = int(self._rng.integers(0, max(1, CANVAS - w)))
        y = int(self._rng.integers(0, max(1, CANVAS - h)))
        depth = category_by_name(category).depth_bias + \
            self._rng.uniform(-0.08, 0.08)
        return Box(x, y, w, h), depth

    def _place_subject(
        self, category: str, predicate: str, anchor: SceneObject
    ) -> tuple[Box, float]:
        """Place the relation's *subject* relative to a placed object."""
        w, h = self._sample_size(category)
        a = anchor.box
        rng = self._rng
        if predicate in {"on", "sitting on", "standing on", "lying on",
                         "riding", "walking on", "parked on",
                         "jumping over", "eating"}:
            # subject rests on / above the anchor
            x = int(rng.integers(a.x, max(a.x + 1, a.x2 - w)))
            y = max(0, a.y - h + max(2, h // 4))
            return Box(x, y, w, h), anchor.depth - 0.1
        if predicate in {"in", "looking out of"}:
            x = int(rng.integers(a.x, max(a.x + 1, a.x2 - w)))
            y = int(rng.integers(a.y, max(a.y + 1, a.y2 - h)))
            return Box(x, y, min(w, a.w), min(h, a.h)), anchor.depth - 0.1
        if predicate in {"catching", "holding", "carrying", "pulling",
                         "feeding", "chasing", "playing with"}:
            # subject adjacent with a slight overlap
            x = a.x - w + max(2, w // 5)
            y = int(rng.integers(max(0, a.y - h // 2), a.y + 1))
            return Box(max(0, x), max(0, y), w, h), anchor.depth
        # watching / near / next to / hanging out with: beside, no overlap
        gap = max(3, (a.w + w) // 8)
        side = 1 if rng.random() < 0.5 else -1
        x = a.x2 + gap if side > 0 else a.x - gap - w
        y = int(rng.integers(max(0, a.y - h // 3), a.y + max(1, a.h // 3)))
        depth = anchor.depth + (0.25 if predicate == "behind" else 0.0)
        return Box(max(0, min(x, CANVAS - w)), max(0, y), w, h), depth

    def _place_object(
        self, category: str, predicate: str, anchor: SceneObject
    ) -> tuple[Box, float]:
        """Place the relation's *object* relative to the placed subject."""
        w, h = self._sample_size(category)
        a = anchor.box
        rng = self._rng
        if predicate in {"wearing", "has"}:
            # worn item sits inside the wearer's upper body
            w = min(w, max(2, a.w - 2))
            h = min(h, max(2, a.h // 3))
            x = a.x + max(0, (a.w - w) // 2)
            y = a.y + (0 if category in {"hat", "helmet"} else a.h // 4)
            return Box(x, y, w, h), anchor.depth - 0.05
        if predicate in {"holding", "carrying", "catching", "eating",
                         "playing with", "pulling"}:
            # held item overlaps the subject's edge
            x = a.x2 - max(2, w // 3)
            y = a.y + a.h // 3
            return Box(min(x, CANVAS - w), min(y, CANVAS - h), w, h), \
                anchor.depth - 0.05
        if predicate in {"looking out of", "in"}:
            # container is larger, behind
            w2 = max(w, a.w + 10)
            h2 = max(h, a.h + 10)
            x = max(0, a.x - 5)
            y = max(0, a.y - 5)
            return Box(x, y, w2, h2), anchor.depth + 0.15
        if predicate in {"sitting on", "standing on", "lying on", "riding",
                         "walking on", "parked on", "on", "jumping over"}:
            # supporting surface under the subject
            w2 = max(w, a.w + 8)
            x = max(0, a.x - 4)
            y = min(CANVAS - h, a.y2 - max(2, h // 4))
            return Box(x, y, w2, h), anchor.depth + 0.15
        # watching / chasing / feeding / near: beside
        gap = max(3, (a.w + w) // 8)
        x = min(CANVAS - w, a.x2 + gap)
        y = int(rng.integers(max(0, a.y - h // 3), a.y + max(1, a.h // 3)))
        return Box(x, max(0, y), w, h), anchor.depth


def _first_relation_with_placed(
    relations: tuple[tuple[str, str, str], ...],
    slot: str,
    placed: dict[str, SceneObject],
) -> tuple[str, str, str] | None:
    for src, predicate, dst in relations:
        if src == slot and dst in placed:
            return (src, predicate, dst)
        if dst == slot and src in placed:
            return (src, predicate, dst)
    return None


def _caption(objects: list[SceneObject],
             relations: list[SceneRelation]) -> str:
    """A short caption from the semantic relations (MVQA annotators work
    from captions, §VI-B)."""
    from repro.synth.relations import SEMANTIC_RELATIONS

    sentences = []
    for relation in relations:
        if relation.predicate not in SEMANTIC_RELATIONS:
            continue
        src = objects[relation.src].category
        dst = objects[relation.dst].category
        words = relation.predicate.split()
        verb = gerund(verb_lemma(words[0]))
        tail = " ".join(words[1:])
        predicate = f"{verb} {tail}".strip()
        sentences.append(f"A {src} is {predicate} the {dst}.")
    return " ".join(sentences)
