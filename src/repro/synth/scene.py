"""Synthetic scenes: the COCO-image substitute.

A :class:`SyntheticScene` is a ground-truth scene *specification* —
objects with bounding boxes, depth order, and labeled ground-truth
relations — that can be **rendered** to a coarse label/instance raster.
The downstream detector (:mod:`repro.vision.detector`) consumes only
the raster, so detection is genuinely lossy: small objects vanish,
occluded objects shrink, adjacent same-category objects can merge.

Ground-truth relations come in two kinds:

* *spatial* relations, recomputed from box geometry by
  :func:`spatial_relation` (so geometry and labels never disagree);
* *semantic* relations (holding, wearing, riding, ...), asserted by the
  scene generator and additionally encoded into a per-object
  ``interaction`` signal that the renderer exposes as an extra raster
  channel — the stand-in for the visual appearance cues a trained
  relation head would pick up (a dog visibly biting a frisbee).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SceneError
from repro.synth.relations import RELATIONS, UBIQUITOUS_RELATIONS, relation_index
from repro.synth.taxonomy import category_by_name, category_index

CANVAS = 128  # scenes are CANVAS x CANVAS


@dataclass(frozen=True)
class Box:
    """An axis-aligned bounding box (x, y = top-left corner)."""

    x: int
    y: int
    w: int
    h: int

    @property
    def x2(self) -> int:
        return self.x + self.w

    @property
    def y2(self) -> int:
        return self.y + self.h

    @property
    def area(self) -> int:
        return self.w * self.h

    @property
    def center(self) -> tuple[float, float]:
        return (self.x + self.w / 2.0, self.y + self.h / 2.0)

    def clipped(self, size: int = CANVAS) -> Box:
        """Clip to the canvas."""
        x = max(0, min(self.x, size - 1))
        y = max(0, min(self.y, size - 1))
        x2 = max(x + 1, min(self.x2, size))
        y2 = max(y + 1, min(self.y2, size))
        return Box(x, y, x2 - x, y2 - y)


def iou(a: Box, b: Box) -> float:
    """Intersection-over-union of two boxes."""
    ix = max(0, min(a.x2, b.x2) - max(a.x, b.x))
    iy = max(0, min(a.y2, b.y2) - max(a.y, b.y))
    inter = ix * iy
    if inter == 0:
        return 0.0
    return inter / (a.area + b.area - inter)


def overlap_fraction(a: Box, b: Box) -> float:
    """Fraction of ``a`` covered by ``b``."""
    ix = max(0, min(a.x2, b.x2) - max(a.x, b.x))
    iy = max(0, min(a.y2, b.y2) - max(a.y, b.y))
    return (ix * iy) / a.area if a.area else 0.0


def center_distance(a: Box, b: Box) -> float:
    (ax, ay), (bx, by) = a.center, b.center
    return float(np.hypot(ax - bx, ay - by))


@dataclass(frozen=True)
class SceneObject:
    """One ground-truth object in a scene."""

    index: int
    category: str
    box: Box
    depth: float  # 0 = closest to the camera, 1 = farthest
    attributes: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        category_by_name(self.category)  # validates the name


@dataclass(frozen=True)
class SceneRelation:
    """A ground-truth relation between two scene objects."""

    src: int
    dst: int
    predicate: str

    def __post_init__(self) -> None:
        relation_index(self.predicate)  # validates the predicate


@dataclass
class SyntheticScene:
    """A full scene: objects + relations + a caption."""

    image_id: int
    objects: list[SceneObject]
    relations: list[SceneRelation]
    caption: str = ""

    def __post_init__(self) -> None:
        indices = [o.index for o in self.objects]
        if sorted(indices) != list(range(len(indices))):
            raise SceneError(
                f"scene {self.image_id}: object indices must be 0..n-1"
            )
        for relation in self.relations:
            if relation.src >= len(indices) or relation.dst >= len(indices):
                raise SceneError(
                    f"scene {self.image_id}: relation endpoints out of range"
                )
            if relation.src == relation.dst:
                raise SceneError(
                    f"scene {self.image_id}: self-relation on object "
                    f"{relation.src}"
                )

    @property
    def categories(self) -> list[str]:
        return [o.category for o in self.objects]

    def object(self, index: int) -> SceneObject:
        return self.objects[index]

    def relations_of(self, index: int) -> list[SceneRelation]:
        return [r for r in self.relations if r.src == index or r.dst == index]

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render(self) -> Raster:
        """Paint the scene to label/instance rasters.

        Farther objects (higher depth) paint first, so closer objects
        occlude them — occlusion is real, not simulated noise.  The
        raster also carries per-object *interaction signals*: the
        appearance cues of a relation (a dog visibly biting a frisbee)
        that a trained relation head would recover from pixels.  The
        detector pools these over each detection's **visible** pixel
        mix, so occlusion and region merging corrupt them naturally.
        """
        labels = np.zeros((CANVAS, CANVAS), dtype=np.int16)
        instances = np.full((CANVAS, CANVAS), -1, dtype=np.int16)
        for obj in sorted(self.objects, key=lambda o: -o.depth):
            box = obj.box.clipped()
            labels[box.y:box.y2, box.x:box.x2] = category_index(obj.category)
            instances[box.y:box.y2, box.x:box.x2] = obj.index
        subject_signals, object_signals = self._interaction_signals()
        return Raster(labels, instances, subject_signals, object_signals)

    def _interaction_signals(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-object relation-participation signals.

        ``subject_signals[i, k]`` is 1 when object ``i`` acts as the
        subject of relation class ``k`` (``object_signals`` likewise for
        the object role).  This is the renderer's stand-in for the
        appearance evidence of an interaction; the TDE masked pass
        (Eq. 2) zeroes exactly these signals.

        Ubiquitous head predicates carry no appearance signal: "near"
        and "on" look like nothing in particular, which is precisely
        why trained models predict them from frequency bias.  Keeping
        them signal-free also prevents pair cross-talk (almost every
        object is near *something*, so a pooled per-object "near"
        signal would light up every pair).
        """
        n = len(self.objects)
        subject_signals = np.zeros((n, len(RELATIONS)), dtype=np.float32)
        object_signals = np.zeros((n, len(RELATIONS)), dtype=np.float32)
        for relation in self.relations:
            if relation.predicate in UBIQUITOUS_RELATIONS:
                continue
            k = relation_index(relation.predicate)
            subject_signals[relation.src, k] = 1.0
            object_signals[relation.dst, k] = 1.0
        return subject_signals, object_signals


@dataclass(frozen=True)
class Raster:
    """Rendered scene: label/instance rasters plus interaction signals."""

    labels: np.ndarray           # (H, W) int16 category index, 0 = background
    instances: np.ndarray        # (H, W) int16 object index, -1 = background
    subject_signals: np.ndarray  # (n_objects, |RELATIONS|) float32
    object_signals: np.ndarray   # (n_objects, |RELATIONS|) float32

    @property
    def shape(self) -> tuple[int, int]:
        return self.labels.shape  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# spatial ground truth from geometry
# ---------------------------------------------------------------------------

def spatial_relation(a: SceneObject, b: SceneObject) -> str | None:
    """The spatial predicate from ``a`` to ``b`` implied by geometry.

    Returns None when the objects are too far apart to relate.  The
    rules are deliberately simple and *deterministic*: the same
    function generates ground truth and powers the relation models'
    geometry evidence, so "the truth is recoverable from the pixels".
    """
    ab_overlap = overlap_fraction(a.box, b.box)
    distance = center_distance(a.box, b.box)
    scale = max(a.box.w, a.box.h, b.box.w, b.box.h)

    if ab_overlap > 0.55 and b.box.area > a.box.area:
        # a mostly inside b
        if abs(a.depth - b.depth) > 0.15:
            return "in"
        return "on"
    if ab_overlap > 0.05:
        (_, ay), (_, by) = a.box.center, b.box.center
        if a.box.y2 <= b.box.y + b.box.h * 0.55 and ay < by:
            return "above" if ab_overlap < 0.2 else "on"
        if ay > by and a.box.area < b.box.area:
            return "under"
        if a.depth + 0.1 < b.depth:
            return "in front of"
        if b.depth + 0.1 < a.depth:
            return "behind"
        return "near"
    if distance < scale * 1.1:
        if a.depth + 0.2 < b.depth:
            return "in front of"
        if b.depth + 0.2 < a.depth:
            return "behind"
        return "near" if distance < scale * 0.8 else "next to"
    return None


def complete_spatial_relations(
    objects: list[SceneObject],
    asserted: list[SceneRelation],
    max_per_object: int = 3,
) -> list[SceneRelation]:
    """Fill in spatial relations implied by geometry.

    Pairs already covered by an asserted (semantic) relation are left
    alone; each object contributes at most ``max_per_object`` outgoing
    spatial relations (nearest pairs first), keeping scene-graph
    density realistic.
    """
    covered = {(r.src, r.dst) for r in asserted}
    result = list(asserted)
    per_object: dict[int, int] = {}
    pairs = []
    for a in objects:
        for b in objects:
            if a.index == b.index:
                continue
            pairs.append((center_distance(a.box, b.box), a, b))
    pairs.sort(key=lambda p: p[0])
    for _, a, b in pairs:
        if (a.index, b.index) in covered:
            continue
        if per_object.get(a.index, 0) >= max_per_object:
            continue
        predicate = spatial_relation(a, b)
        if predicate is None:
            continue
        result.append(SceneRelation(a.index, b.index, predicate))
        covered.add((a.index, b.index))
        per_object[a.index] = per_object.get(a.index, 0) + 1
    return result
