"""Feature-map extraction for detected regions.

The paper's RPN produces a feature map ``m_i`` per bounding box
(§III-A).  Here a feature map is a flat vector with three parts:

* **geometry** — normalized box coordinates, area, visibility;
* **appearance** — a hashed category-histogram of the region's pixels
  (what a conv backbone would summarize);
* **interaction** — the region's pooled subject/object relation
  signals, weighted by the *visible* pixel mix, so occluded or merged
  regions carry corrupted signals.

``Mask(m_i)`` (Eq. 2 of the paper) zeroes the interaction part — the
appearance evidence — while geometry stays available, exactly like TDE
keeps boxes/labels but masks feature maps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.synth.relations import RELATIONS
from repro.synth.scene import Box, CANVAS, Raster

GEOMETRY_DIM = 6
APPEARANCE_DIM = 16
INTERACTION_DIM = 2 * len(RELATIONS)
FEATURE_DIM = GEOMETRY_DIM + APPEARANCE_DIM + INTERACTION_DIM


@dataclass(frozen=True)
class FeatureMap:
    """A region's feature vector, with named views of its parts."""

    vector: np.ndarray

    @property
    def geometry(self) -> np.ndarray:
        return self.vector[:GEOMETRY_DIM]

    @property
    def appearance(self) -> np.ndarray:
        return self.vector[GEOMETRY_DIM:GEOMETRY_DIM + APPEARANCE_DIM]

    @property
    def subject_signal(self) -> np.ndarray:
        start = GEOMETRY_DIM + APPEARANCE_DIM
        return self.vector[start:start + len(RELATIONS)]

    @property
    def object_signal(self) -> np.ndarray:
        start = GEOMETRY_DIM + APPEARANCE_DIM + len(RELATIONS)
        return self.vector[start:]

    def masked(self) -> FeatureMap:
        """The TDE mask: interaction signals zeroed, geometry kept."""
        vector = self.vector.copy()
        vector[GEOMETRY_DIM + APPEARANCE_DIM:] = 0.0
        return FeatureMap(vector)


def extract_features(
    raster: Raster, box: Box, region_mask: np.ndarray
) -> FeatureMap:
    """Feature map for a region of the raster.

    ``region_mask`` is a boolean (H, W) array of the region's visible
    pixels (the connected component the detector found).
    """
    vector = np.zeros(FEATURE_DIM, dtype=np.float32)

    # geometry: normalized x, y, w, h, area fraction, visibility
    visible = int(region_mask.sum())
    vector[0] = box.x / CANVAS
    vector[1] = box.y / CANVAS
    vector[2] = box.w / CANVAS
    vector[3] = box.h / CANVAS
    vector[4] = box.area / (CANVAS * CANVAS)
    vector[5] = visible / box.area if box.area else 0.0

    # appearance: hashed histogram of category pixels in the region
    labels = raster.labels[region_mask]
    if labels.size:
        hist = np.bincount(labels % APPEARANCE_DIM,
                           minlength=APPEARANCE_DIM).astype(np.float32)
        vector[GEOMETRY_DIM:GEOMETRY_DIM + APPEARANCE_DIM] = \
            hist / labels.size

    # interaction: pooled per-object signals weighted by pixel ownership
    instances = raster.instances[region_mask]
    owners = instances[instances >= 0]
    if owners.size:
        counts = np.bincount(owners, minlength=raster.subject_signals.shape[0])
        weights = counts / owners.size
        start = GEOMETRY_DIM + APPEARANCE_DIM
        vector[start:start + len(RELATIONS)] = \
            weights @ raster.subject_signals
        vector[start + len(RELATIONS):] = weights @ raster.object_signals

    return FeatureMap(vector)
