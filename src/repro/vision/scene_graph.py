"""Scene graphs and the SGG pipeline orchestration (§III-A).

``SGGPipeline`` turns a synthetic scene into a
:class:`SceneGraphResult`: render -> detect -> score candidate pairs ->
keep the strongest relations.  The result carries both the kept edges
(what the aggregator merges into ``G_mg``) and the full ranked triple
list (what the mR@K evaluation consumes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import FaultToleranceError
from repro.simtime import SimClock
from repro.synth.relations import RELATIONS
from repro.synth.scene import SyntheticScene
from repro.vision.detector import Detection, SimulatedDetector
from repro.vision.relation import RelationPredictor, candidate_pairs
from repro.vision.tde import tde_scores

if TYPE_CHECKING:
    from repro.resilience.manager import ResilienceManager


@dataclass(frozen=True)
class PredictedRelation:
    """One predicted scene-graph edge ``r_ij``."""

    src: int        # detection index
    dst: int        # detection index
    predicate: str
    score: float


@dataclass
class SceneGraphResult:
    """The scene graph ``G_sg(I)`` for one image."""

    image_id: int
    detections: list[Detection]
    relations: list[PredictedRelation]
    ranked_triples: list[PredictedRelation] = field(default_factory=list)
    #: relation prediction failed permanently; detections survive but
    #: the image contributes no relation edges to the merged graph
    degraded: bool = False

    @property
    def categories(self) -> list[str]:
        return [d.label for d in self.detections]


@dataclass
class SGGConfig:
    """Scene-graph generation knobs."""

    use_tde: bool = True
    max_pairs: int = 48
    predicates_per_pair: int = 3     # candidates emitted per pair for ranking
    keep_per_detection: float = 3.0  # kept edges <= n_detections * this
    min_keep: int = 4
    keep_min_score: float = 0.05     # per-pair argmax below this is noise


#: score assigned to geometry-fallback edges: above keep_min_score but
#: below any confident TDE prediction
GEOMETRY_FALLBACK_SCORE = 0.08


def _geometry_fallback(subject, obj) -> PredictedRelation | None:
    from repro.synth.scene import spatial_relation
    from repro.vision.relation import _GeometryShim

    predicate = spatial_relation(_GeometryShim(subject),
                                 _GeometryShim(obj))
    if predicate is None:
        return None
    return PredictedRelation(subject.index, obj.index, predicate,
                             GEOMETRY_FALLBACK_SCORE)


class SGGPipeline:
    """Scene-graph generation: detector + relation predictor (+ TDE)."""

    def __init__(
        self,
        detector: SimulatedDetector,
        predictor: RelationPredictor,
        config: SGGConfig | None = None,
        clock: SimClock | None = None,
        resilience: ResilienceManager | None = None,
    ) -> None:
        self.detector = detector
        self.predictor = predictor
        self.config = config or SGGConfig()
        self.clock = clock
        self.resilience = resilience
        #: image ids dropped by :meth:`run_many` after the detector
        #: failed permanently (the merged graph is then partial)
        self.skipped_images: list[int] = []

    def run(self, scene: SyntheticScene) -> SceneGraphResult:
        """Generate the scene graph for one scene.

        Under a resilience manager the detector runs guarded (a
        permanently failing image raises
        :class:`~repro.errors.FaultToleranceError`, which
        :meth:`run_many` turns into a skip) and relation prediction
        degrades to a relation-less scene graph when its retry budget
        is exhausted.
        """
        if self.clock is not None:
            self.clock.charge("detector_forward")
            self.clock.charge("relation_forward")
        raster = scene.render()
        if self.resilience is None:
            detections = self.detector.detect(raster, scene.image_id)
            triples, kept = self._predict_relations(scene, detections)
            degraded = False
        else:
            detections = self.resilience.call(
                "detector.detect", scene.image_id,
                lambda: self.detector.detect(raster, scene.image_id),
                clock=self.clock,
            )
            fallback_used: list[bool] = []

            def _no_relations() -> tuple[list[PredictedRelation],
                                         list[PredictedRelation]]:
                fallback_used.append(True)
                return [], []

            triples, kept = self.resilience.call(
                "relation.predict", scene.image_id,
                lambda: self._predict_relations(scene, detections),
                clock=self.clock, fallback=_no_relations,
            )
            degraded = bool(fallback_used)
        return SceneGraphResult(
            image_id=scene.image_id,
            detections=detections,
            relations=kept,
            ranked_triples=triples,
            degraded=degraded,
        )

    def _predict_relations(
        self, scene: SyntheticScene, detections: list[Detection]
    ) -> tuple[list[PredictedRelation], list[PredictedRelation]]:
        """Score candidate pairs; returns ``(ranked_triples, kept)``."""
        triples: list[PredictedRelation] = []
        best_per_pair: list[PredictedRelation] = []
        for subject, obj in candidate_pairs(detections,
                                            self.config.max_pairs):
            if self.config.use_tde:
                scores = tde_scores(self.predictor, subject, obj,
                                    scene.image_id)
            else:
                scores = self.predictor.pair_probabilities(
                    subject, obj, scene.image_id
                )
            # standard SGG ranking emits several predicate candidates
            # per pair; the top one is the pair's argmax (Eq. 3)
            order = np.argsort(scores)[::-1][:self.config.predicates_per_pair]
            pair_best: PredictedRelation | None = None
            for rank, class_index in enumerate(order):
                relation = PredictedRelation(
                    subject.index, obj.index, RELATIONS[int(class_index)],
                    float(scores[int(class_index)]),
                )
                triples.append(relation)
                if rank == 0:
                    pair_best = relation
            if self.config.use_tde and pair_best is not None and \
                    pair_best.score < self.config.keep_min_score:
                # TDE found no direct visual effect for this pair:
                # ubiquitous predicates have none.  The unmasked
                # geometry (boxes + depth estimates are never masked)
                # still supports a spatial predicate, so fall back to it
                # — this is why the merged graph keeps its near/on edges
                fallback = _geometry_fallback(subject, obj)
                if fallback is not None:
                    pair_best = fallback
                    triples.append(fallback)
            if pair_best is not None:
                best_per_pair.append(pair_best)
        triples.sort(key=lambda t: -t.score)
        best_per_pair.sort(key=lambda t: -t.score)
        # Eq. 3 keeps the argmax relation of every pair; pairs whose
        # best score is indistinguishable from noise are dropped, and a
        # density cap keeps merged-graph degree realistic
        keep = max(self.config.min_keep,
                   int(len(detections) * self.config.keep_per_detection))
        kept = [r for r in best_per_pair
                if r.score >= self.config.keep_min_score][:keep]
        return triples, kept

    def run_many(self, scenes: list[SyntheticScene]) -> list[SceneGraphResult]:
        """Generate scene graphs for a batch of scenes.

        With a resilience manager, an image whose detector fails
        permanently is skipped (recorded in :attr:`skipped_images`)
        instead of sinking the whole offline build — the merged graph
        comes out partial, and dependent answers degrade.
        """
        if self.resilience is None:
            return [self.run(scene) for scene in scenes]
        results: list[SceneGraphResult] = []
        for scene in scenes:
            try:
                results.append(self.run(scene))
            except FaultToleranceError:
                self.skipped_images.append(scene.image_id)
        return results
