"""Simulated object detector (the Mask R-CNN stand-in).

The detector sees only the rendered raster — not the scene spec — so
it exhibits the real failure modes of a detector:

* small or heavily occluded objects are missed (their visible region
  falls under ``min_area``);
* adjacent same-category objects can merge into one region (connected
  components run on the *label* raster, like class-wise segmentation);
* bounding boxes carry regression jitter;
* labels are corrupted through a confusion table — e.g. a (toy) bear
  recognized as a "bear" is exactly the Fig. 8(b) error.

All randomness is drawn from the detector's own seeded generator mixed
with the image id, so detection is deterministic per image.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.synth.scene import Box, CANVAS, Raster
from repro.synth.taxonomy import category_names
from repro.vision.features import FeatureMap, extract_features

#: plausible label-confusion pairs (both directions)
CONFUSIONS: dict[str, tuple[str, ...]] = {
    "dog": ("cat", "sheep"),
    "cat": ("dog",),
    "toy": ("bear", "dog"),
    "bear": ("dog", "toy"),
    "cow": ("horse", "sheep"),
    "sheep": ("cow", "dog"),
    "horse": ("cow", "zebra"),
    "zebra": ("horse",),
    "man": ("woman", "boy"),
    "woman": ("man", "girl"),
    "boy": ("girl", "man"),
    "girl": ("boy", "woman"),
    "car": ("truck", "bus"),
    "truck": ("car", "bus"),
    "bus": ("truck", "train"),
    "frisbee": ("ball",),
    "ball": ("frisbee", "apple"),
    "hat": ("helmet",),
    "helmet": ("hat",),
    "sofa": ("bed", "chair"),
    "bed": ("sofa",),
    "house": ("building",),
    "building": ("house", "station"),
    "grass": ("field",),
    "field": ("grass",),
}


@dataclass(frozen=True)
class Detection:
    """One detected object: ``v_i = (b_i, m_i, l_i)`` of §III-A."""

    index: int
    box: Box
    features: FeatureMap
    label: str
    score: float
    depth_estimate: float  # 0 = front (fully visible), 1 = hidden


@dataclass
class DetectorConfig:
    """Noise knobs of the simulated detector."""

    min_area: int = 12          # visible pixels below this are missed
    box_jitter: float = 0.06    # stddev of box-coordinate noise, rel. size
    label_noise: float = 0.05   # probability of a confusion-table flip
    miss_rate: float = 0.02     # extra probability of dropping a region
    seed: int = 0


class SimulatedDetector:
    """Region-based detector over rendered rasters."""

    def __init__(self, config: DetectorConfig | None = None) -> None:
        self.config = config or DetectorConfig()
        self._names = category_names()

    def detect(self, raster: Raster, image_id: int = 0) -> list[Detection]:
        """Detect objects in ``raster``; deterministic per image id."""
        rng = np.random.default_rng((self.config.seed << 32) ^ (image_id + 1))
        detections: list[Detection] = []
        for label_value, mask in _connected_regions(raster.labels):
            visible = int(mask.sum())
            if visible < self.config.min_area:
                continue
            if rng.random() < self.config.miss_rate:
                continue
            box = _region_box(mask)
            box = self._jitter_box(box, rng)
            category = self._names[label_value - 1]
            category = self._corrupt_label(category, visible, rng)
            features = extract_features(raster, box, mask)
            visibility = visible / max(1, box.area)
            score = float(np.clip(0.5 + 0.5 * visibility
                                  - self.config.label_noise, 0.05, 0.99))
            detections.append(Detection(
                index=len(detections),
                box=box,
                features=features,
                label=category,
                score=score,
                depth_estimate=float(np.clip(1.0 - visibility, 0.0, 1.0)),
            ))
        return detections

    def _jitter_box(self, box: Box, rng: np.random.Generator) -> Box:
        jitter = self.config.box_jitter
        dx = rng.normal(0, jitter * box.w)
        dy = rng.normal(0, jitter * box.h)
        dw = rng.normal(0, jitter * box.w)
        dh = rng.normal(0, jitter * box.h)
        return Box(
            int(round(box.x + dx)),
            int(round(box.y + dy)),
            max(2, int(round(box.w + dw))),
            max(2, int(round(box.h + dh))),
        ).clipped(CANVAS)

    def _corrupt_label(
        self, category: str, visible: int, rng: np.random.Generator
    ) -> str:
        # small regions are harder to classify
        noise = self.config.label_noise * (2.0 if visible < 60 else 1.0)
        options = CONFUSIONS.get(category)
        if options and rng.random() < noise:
            return options[int(rng.integers(len(options)))]
        return category


def _connected_regions(labels: np.ndarray):
    """Yield (label_value, mask) for 4-connected same-label regions."""
    for value in np.unique(labels):
        if value == 0:
            continue
        components, count = ndimage.label(labels == value)
        for component in range(1, count + 1):
            yield int(value), components == component


def _region_box(mask: np.ndarray) -> Box:
    ys, xs = np.nonzero(mask)
    y1, y2 = int(ys.min()), int(ys.max()) + 1
    x1, x2 = int(xs.min()), int(xs.max()) + 1
    return Box(x1, y1, x2 - x1, y2 - y1)
