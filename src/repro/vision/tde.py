"""Total Direct Effect (TDE) debiasing for relation prediction.

Implements Eq. 1-3 of the paper (§III-A).  The predictor is run twice:
once on the real inputs (Eq. 1) and once with the feature maps masked
to zero vectors (Eq. 2).  The masked pass measures what the model
would predict from *bias alone* (label priors + geometry); subtracting
it isolates the direct effect of the visual evidence:

    r_ij = argmax(p_rij - p'_rij)                                (Eq. 3)

which recovers tail predicates ("in front of", "catching") that the
ubiquitous head predicates ("on", "near") would otherwise swamp.
"""

from __future__ import annotations

import numpy as np

from repro.vision.detector import Detection
from repro.vision.relation import RelationPredictor


def tde_scores(
    predictor: RelationPredictor,
    subject: Detection,
    obj: Detection,
    image_id: int,
) -> np.ndarray:
    """The debiased score vector ``p - p'`` for an ordered pair."""
    factual = predictor.pair_probabilities(subject, obj, image_id,
                                           masked=False)
    counterfactual = predictor.pair_probabilities(subject, obj, image_id,
                                                  masked=True)
    return factual - counterfactual


def predict_relation(
    predictor: RelationPredictor,
    subject: Detection,
    obj: Detection,
    image_id: int,
    use_tde: bool = True,
) -> tuple[int, float, np.ndarray]:
    """Predict the relation class for a pair.

    Returns ``(class_index, score, scores_vector)``; with
    ``use_tde=False`` this is the biased Eq. 1 prediction.
    """
    if use_tde:
        scores = tde_scores(predictor, subject, obj, image_id)
    else:
        scores = predictor.pair_probabilities(subject, obj, image_id)
    best = int(np.argmax(scores))
    return best, float(scores[best]), scores
