"""Box utilities for the vision pipeline.

Re-exports the core :class:`~repro.synth.scene.Box` math and adds the
operations the detector and the SGG evaluation need (matching detected
boxes to ground truth, non-maximum suppression).
"""

from __future__ import annotations

from repro.synth.scene import Box, center_distance, iou, overlap_fraction

__all__ = ["Box", "center_distance", "iou", "match_boxes", "nms",
           "overlap_fraction"]


def match_boxes(
    detected: list[Box],
    truth: list[Box],
    threshold: float = 0.5,
) -> dict[int, int]:
    """Greedy IoU matching: detected index -> ground-truth index.

    Each ground-truth box is matched at most once; pairs are taken in
    descending IoU order, and pairs below ``threshold`` are ignored.
    """
    pairs = []
    for i, det in enumerate(detected):
        for j, gt in enumerate(truth):
            score = iou(det, gt)
            if score >= threshold:
                pairs.append((score, i, j))
    pairs.sort(key=lambda p: -p[0])
    matched: dict[int, int] = {}
    used_truth: set[int] = set()
    for _, i, j in pairs:
        if i in matched or j in used_truth:
            continue
        matched[i] = j
        used_truth.add(j)
    return matched


def nms(boxes: list[Box], scores: list[float], threshold: float = 0.6) -> list[int]:
    """Non-maximum suppression; returns kept indices, best first."""
    order = sorted(range(len(boxes)), key=lambda i: -scores[i])
    kept: list[int] = []
    for i in order:
        if all(iou(boxes[i], boxes[k]) < threshold for k in kept):
            kept.append(i)
    return kept
