"""SGG evaluation: mean Recall@K (mR@K), the Table V metric.

A ground-truth triple (subject box+label, predicate, object box+label)
counts as recalled at K when some triple among the K highest-scoring
predictions matches it: both endpoint boxes overlap their ground-truth
boxes at IoU >= 0.5, both labels match, and the predicate matches.
Recall is computed per predicate class and averaged over the classes
that occur in ground truth — the mean protects tail classes from being
drowned by "on"/"near", which is exactly what TDE is supposed to help.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.synth.scene import SyntheticScene, iou
from repro.vision.scene_graph import SceneGraphResult

IOU_THRESHOLD = 0.5


@dataclass
class RecallCounts:
    """Per-class hit/total counters."""

    hits: dict[str, int]
    totals: dict[str, int]

    def mean_recall(self) -> float:
        """mR: average per-class recall over classes with ground truth."""
        recalls = [
            self.hits.get(predicate, 0) / total
            for predicate, total in self.totals.items()
            if total > 0
        ]
        return sum(recalls) / len(recalls) if recalls else 0.0


def evaluate_scene(
    result: SceneGraphResult,
    scene: SyntheticScene,
    k: int,
    counts: RecallCounts,
) -> None:
    """Accumulate recall@k counts for one scene into ``counts``."""
    top = result.ranked_triples[:k]
    for gt in scene.relations:
        gt_subject = scene.objects[gt.src]
        gt_object = scene.objects[gt.dst]
        counts.totals[gt.predicate] = counts.totals.get(gt.predicate, 0) + 1
        for predicted in top:
            if predicted.predicate != gt.predicate:
                continue
            det_subject = result.detections[predicted.src]
            det_object = result.detections[predicted.dst]
            if det_subject.label != gt_subject.category:
                continue
            if det_object.label != gt_object.category:
                continue
            if iou(det_subject.box, gt_subject.box) < IOU_THRESHOLD:
                continue
            if iou(det_object.box, gt_object.box) < IOU_THRESHOLD:
                continue
            counts.hits[gt.predicate] = counts.hits.get(gt.predicate, 0) + 1
            break


def mean_recall_at(
    results: list[SceneGraphResult],
    scenes: list[SyntheticScene],
    ks: tuple[int, ...] = (20, 50, 100),
) -> dict[int, float]:
    """mR@K over a dataset, for each K.

    ``results[i]`` must correspond to ``scenes[i]``.
    """
    if len(results) != len(scenes):
        raise ValueError(
            f"got {len(results)} results for {len(scenes)} scenes"
        )
    output: dict[int, float] = {}
    for k in ks:
        counts = RecallCounts(hits={}, totals={})
        for result, scene in zip(results, scenes, strict=True):
            evaluate_scene(result, scene, k, counts)
        output[k] = counts.mean_recall()
    return output
