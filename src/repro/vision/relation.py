"""Relation predictors: the MOTIFNET / VCTree / VTransE stand-ins.

Each predictor scores every relation class for an ordered detection
pair ``(v_i, v_j)`` by combining four ingredients (Eq. 1 of the paper,
behaviourally):

* **bias** — the log training-frequency prior over predicates.  This
  is the ubiquitous-relation bias ("on", "near") that TDE removes;
* **geometry** — a hint from the *detected* boxes and depth estimates,
  computed by the same spatial rules that generated ground truth, so
  geometry genuinely supports spatial predicates (and can be wrong
  when detection was wrong — the Fig. 8(c) failure);
* **evidence** — the pooled interaction signals from the pair's
  feature maps (`subject_signal[i] * object_signal[j]`): the
  appearance cues a trained relation head would extract.  Masking the
  feature maps (Eq. 2) zeroes exactly this term;
* **noise** — per-model Gaussian logit noise.

The three models differ in how well they exploit evidence: MOTIFNET's
global context gives it the strongest, cleanest evidence term, VCTree's
dynamic trees sit in the middle, and VTransE's translation embeddings
trail — reproducing the ordering of Table V without per-row constants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.synth.relations import RELATIONS, prior_vector, relation_index
from repro.synth.scene import spatial_relation
from repro.util import stable_hash
from repro.vision.detector import Detection

BIAS_WEIGHT = 1.0
GEOMETRY_WEIGHT = 1.2


@dataclass(frozen=True)
class RelationModelSpec:
    """A relation model's behavioural profile.

    ``evidence_fidelity`` is the per-channel probability that the
    model's context mechanism successfully extracts an appearance cue;
    it differentiates the models even after TDE removes the shared
    bias (global-context Motifs > tree-context VCTree > translation
    embedding VTransE).
    """

    name: str
    evidence_weight: float   # how much appearance evidence reaches logits
    evidence_fidelity: float  # per-channel extraction success probability
    noise_scale: float       # logit noise stddev


MOTIFNET = RelationModelSpec("neural-motifs", evidence_weight=4.2,
                             evidence_fidelity=0.92, noise_scale=0.85)
VCTREE = RelationModelSpec("vctree", evidence_weight=3.8,
                           evidence_fidelity=0.84, noise_scale=0.95)
VTRANSE = RelationModelSpec("vtranse", evidence_weight=3.0,
                            evidence_fidelity=0.72, noise_scale=1.15)

MODELS: dict[str, RelationModelSpec] = {
    spec.name: spec for spec in (MOTIFNET, VCTREE, VTRANSE)
}


class RelationPredictor:
    """Scores relation classes for detection pairs.

    >>> predictor = RelationPredictor(MOTIFNET, seed=0)
    """

    def __init__(self, spec: RelationModelSpec, seed: int = 0) -> None:
        self.spec = spec
        self._seed = seed
        self._log_prior = np.log(prior_vector())

    def pair_logits(
        self,
        subject: Detection,
        obj: Detection,
        image_id: int,
        masked: bool = False,
    ) -> np.ndarray:
        """Logits over RELATIONS for the ordered pair (Eq. 1 / Eq. 2).

        ``masked=True`` is the TDE counterfactual pass: the feature
        maps are replaced by zero vectors, so the evidence term
        vanishes while bias and geometry remain.
        """
        rng = self._pair_rng(subject, obj, image_id)
        logits = BIAS_WEIGHT * self._log_prior.copy()
        logits += GEOMETRY_WEIGHT * self._geometry_hint(subject, obj)
        subject_features = subject.features.masked() if masked \
            else subject.features
        object_features = obj.features.masked() if masked else obj.features
        evidence = subject_features.subject_signal * \
            object_features.object_signal
        # the model's context mechanism extracts each cue with
        # probability evidence_fidelity (drawn per pair+channel from the
        # deterministic stream, so the factual and masked passes agree)
        extraction = rng.random(len(RELATIONS)) < self.spec.evidence_fidelity
        logits += self.spec.evidence_weight * evidence * extraction
        logits += rng.normal(0.0, self.spec.noise_scale, len(RELATIONS))
        return logits

    def pair_probabilities(
        self,
        subject: Detection,
        obj: Detection,
        image_id: int,
        masked: bool = False,
    ) -> np.ndarray:
        """Softmax of :meth:`pair_logits` — the ``p_rij`` of Eq. 1."""
        logits = self.pair_logits(subject, obj, image_id, masked)
        logits -= logits.max()
        exp = np.exp(logits)
        return exp / exp.sum()

    def _geometry_hint(self, subject: Detection, obj: Detection) -> np.ndarray:
        """One-hot-ish support from detected geometry."""
        hint = np.zeros(len(RELATIONS))
        shim_a = _GeometryShim(subject)
        shim_b = _GeometryShim(obj)
        predicate = spatial_relation(shim_a, shim_b)
        if predicate is not None:
            hint[relation_index(predicate)] = 1.0
        return hint

    def _pair_rng(
        self, subject: Detection, obj: Detection, image_id: int
    ) -> np.random.Generator:
        """Deterministic per-(model, image, pair) random stream."""
        key = stable_hash(self.spec.name, self._seed, image_id,
                          subject.index, obj.index)
        return np.random.default_rng(key)


class _GeometryShim:
    """Adapts a Detection to the SceneObject interface spatial_relation
    expects (box + depth)."""

    def __init__(self, detection: Detection) -> None:
        self.box = detection.box
        self.depth = detection.depth_estimate
        self.category = detection.label
        self.index = detection.index


def candidate_pairs(
    detections: list[Detection], max_pairs: int = 48
) -> list[tuple[Detection, Detection]]:
    """Ordered detection pairs worth scoring, nearest first."""
    from repro.synth.scene import center_distance

    scored = []
    for a in detections:
        for b in detections:
            if a.index == b.index:
                continue
            scored.append((center_distance(a.box, b.box), a, b))
    scored.sort(key=lambda item: item[0])
    return [(a, b) for _, a, b in scored[:max_pairs]]
