"""Simulated vision substrate: detector, relation prediction, TDE
debiasing, SGG pipeline, and mR@K evaluation.
"""

from repro.vision.boxes import match_boxes, nms
from repro.vision.detector import (
    CONFUSIONS,
    Detection,
    DetectorConfig,
    SimulatedDetector,
)
from repro.vision.features import FEATURE_DIM, FeatureMap, extract_features
from repro.vision.metrics import RecallCounts, evaluate_scene, mean_recall_at
from repro.vision.relation import (
    MODELS,
    MOTIFNET,
    VCTREE,
    VTRANSE,
    RelationModelSpec,
    RelationPredictor,
    candidate_pairs,
)
from repro.vision.scene_graph import (
    PredictedRelation,
    SceneGraphResult,
    SGGConfig,
    SGGPipeline,
)
from repro.vision.tde import predict_relation, tde_scores

__all__ = [
    "CONFUSIONS",
    "Detection",
    "DetectorConfig",
    "FEATURE_DIM",
    "FeatureMap",
    "MODELS",
    "MOTIFNET",
    "PredictedRelation",
    "RecallCounts",
    "RelationModelSpec",
    "RelationPredictor",
    "SGGConfig",
    "SGGPipeline",
    "SceneGraphResult",
    "SimulatedDetector",
    "VCTREE",
    "VTRANSE",
    "candidate_pairs",
    "evaluate_scene",
    "extract_features",
    "match_boxes",
    "mean_recall_at",
    "nms",
    "predict_relation",
    "tde_scores",
]
