"""Incremental label index for graph elements.

Maps a label string to the set of element ids carrying it.  Maintained
by :class:`repro.graph.model.Graph` on every mutation, so label lookups
(the hot path of ``matchVertex`` in Algorithm 3) are O(1) instead of a
full vertex scan.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator


class LabelIndex:
    """label -> sorted-insertion set of integer ids."""

    def __init__(self) -> None:
        self._by_label: dict[str, dict[int, None]] = {}

    def add(self, label: str, element_id: int) -> None:
        """Register ``element_id`` under ``label``."""
        self._by_label.setdefault(label, {})[element_id] = None

    def remove(self, label: str, element_id: int) -> None:
        """Unregister ``element_id``; removes the label bucket if empty."""
        bucket = self._by_label.get(label)
        if bucket is None or element_id not in bucket:
            raise KeyError(f"{element_id} not indexed under {label!r}")
        del bucket[element_id]
        if not bucket:
            del self._by_label[label]

    def ids(self, label: str) -> list[int]:
        """Ids carrying ``label``, in insertion order (empty if unknown)."""
        return list(self._by_label.get(label, ()))

    def labels(self) -> Iterator[str]:
        """All labels with at least one element."""
        return iter(self._by_label)

    def count(self, label: str) -> int:
        """Number of elements carrying ``label``."""
        return len(self._by_label.get(label, ()))

    def counts(self) -> dict[str, int]:
        """Mapping of every label to its element count."""
        return {label: len(bucket) for label, bucket in self._by_label.items()}

    def __contains__(self, label: str) -> bool:
        """Whether any element is registered under ``label``."""
        return label in self._by_label

    def __len__(self) -> int:
        """Number of distinct labels with at least one element."""
        return len(self._by_label)

    def __iter__(self) -> Iterator[str]:
        """Iterate over the registered labels."""
        return iter(self._by_label)

    def update_many(self, label: str, element_ids: Iterable[int]) -> None:
        """Bulk-register many ids under one label."""
        bucket = self._by_label.setdefault(label, {})
        for element_id in element_ids:
            bucket[element_id] = None
