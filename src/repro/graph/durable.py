"""Durable merged-graph store: snapshots + WAL + crash-safe recovery.

The paper's Data Aggregator builds the merged graph ``G_mg`` once and
everything downstream depends on it; this module makes that graph
survive process crashes so ``repro serve`` can warm-start instead of
re-running the vision pipeline.  One :class:`DurableStore` owns a
directory with:

* ``snapshot.jsonl`` — an atomic, checksummed store-v2 snapshot
  (:func:`repro.graph.store.write_snapshot`): a manifest record with
  the format version, ``Graph.epoch``, counts, id watermarks and a
  whole-file digest, followed by one framed record per vertex/edge;
* ``wal.jsonl`` — an append-only write-ahead log of graph mutations.
  The first record is a ``begin`` frame linking the log to its
  snapshot's ``payload_digest``; every further record is one mutation
  op dict (``add_vertex``/``add_edge``/``remove_edge``/
  ``remove_vertex``/``relabel_vertex``) tagged with the post-mutation
  epoch, framed and fsynced per append;
* ``quarantine/`` — corrupt records and files moved aside by recovery,
  never silently deleted.

Recovery (:meth:`DurableStore.recover`) loads the last-good snapshot,
verifies every digest, replays the WAL in order — stopping at the
first bad checksum or epoch gap, quarantining the damaged record and
truncating the torn tail — and degrades to a full-rebuild verdict when
the snapshot itself fails verification.  The guarantee the
crash-torture harness (:mod:`repro.graph.torture`) enforces: recovery
always yields a graph extensionally equal to some durable prefix of
the mutation history, or an attributed rebuild — never a silent
partial load.

All three operations are guarded at registered fault sites
(``store.snapshot`` / ``store.wal_append`` / ``store.recover``), traced
under ``store.*`` spans, charged to the :class:`~repro.simtime.SimClock`
(``store_record_io`` / ``store_fsync``), and counted in ``svqa_store_*``
metric families on the store's own registry — so a server that never
touches the store keeps byte-identical metrics output.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import FaultToleranceError, GraphError, StoreError
from repro.graph.model import Graph
from repro.graph.store import (
    atomic_write_bytes,
    frame_record,
    parse_frame,
    read_snapshot,
    write_snapshot,
)
from repro.locks import wrap_lock
from repro.observability.metrics import MetricsRegistry
from repro.observability.spans import Tracer, maybe_span
from repro.simtime import SimClock

if TYPE_CHECKING:
    from repro.resilience.manager import ResilienceManager


class WriteAheadLog:
    """Append-only framed mutation log, fsynced per record.

    Not thread-safe on its own: the owning :class:`DurableStore`
    serializes access.  ``reset`` rewrites the log atomically (a
    single ``begin`` record linking it to a snapshot digest);
    ``append`` frames, writes, flushes and fsyncs one op record.
    """

    def __init__(self, path: str | Path, clock: SimClock | None = None) -> None:
        self.path = Path(path)
        self.clock = clock
        self._handle: Any = None

    def reset(self, snapshot_digest: str, epoch: int) -> None:
        """Start a fresh log bound to the snapshot with that digest."""
        self.close()
        atomic_write_bytes(self.path, frame_record({
            "op": "begin",
            "snapshot_digest": snapshot_digest,
            "epoch": epoch,
        }))

    def append(self, op: dict[str, Any]) -> None:
        """Durably append one mutation op record."""
        try:
            if self._handle is None:
                self._handle = self.path.open("ab")
            self._handle.write(frame_record(op))
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError as exc:
            raise StoreError(
                f"cannot append to WAL {self.path}: {exc}",
                path=self.path, reason="unwritable",
            ) from exc
        if self.clock is not None:
            self.clock.charge("store_record_io")
            self.clock.charge("store_fsync")

    def close(self) -> None:
        """Close the append handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


@dataclass
class RecoveryReport:
    """What one recovery attempt found and decided.

    Deterministic by construction: file references are store-relative
    names (``snapshot.jsonl`` / ``wal.jsonl``), never absolute paths,
    and no timestamps — two same-seed torture runs must produce
    byte-identical reports.
    """

    #: ``"snapshot"`` (durable state recovered) or ``"rebuild"``
    #: (nothing recoverable; caller must rebuild from scratch)
    source: str = "rebuild"
    #: the recovered graph's epoch (0 when rebuilding)
    epoch: int = 0
    #: WAL op records applied on top of the snapshot
    wal_records_replayed: int = 0
    #: the recovered snapshot's whole-file payload digest
    snapshot_digest: str | None = None
    #: quarantined damage: ``{"file", "lineno", "reason"}`` per item
    quarantined: list[dict[str, Any]] = field(default_factory=list)
    #: deterministic prose notes (drops, missing files, ...)
    notes: list[str] = field(default_factory=list)

    def healthz(self) -> dict[str, Any]:
        """The ``store`` block ``/healthz`` exposes."""
        return {
            "source": self.source,
            "epoch": self.epoch,
            "wal_records_replayed": self.wal_records_replayed,
        }

    def to_json(self) -> dict[str, Any]:
        """A deterministic JSON-ready dict (fixed key order)."""
        return {
            "source": self.source,
            "epoch": self.epoch,
            "wal_records_replayed": self.wal_records_replayed,
            "snapshot_digest": self.snapshot_digest,
            "quarantined": [
                {
                    "file": item["file"],
                    "lineno": item["lineno"],
                    "reason": item["reason"],
                }
                for item in self.quarantined
            ],
            "notes": list(self.notes),
        }

    def render(self) -> str:
        """Human-readable report (the ``repro recover`` output)."""
        lines = [
            f"durable-store recovery: source={self.source} "
            f"epoch={self.epoch} "
            f"wal_records_replayed={self.wal_records_replayed}"
        ]
        if self.snapshot_digest is not None:
            lines.append(f"  snapshot digest: {self.snapshot_digest}")
        for item in self.quarantined:
            where = item["file"]
            if item["lineno"] is not None:
                where = f"{where}:{item['lineno']}"
            lines.append(f"  quarantined: {where} ({item['reason']})")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


@dataclass
class RecoveryResult:
    """A recovered graph (or ``None``) plus its report."""

    #: the recovered graph, or ``None`` when ``report.source`` is
    #: ``"rebuild"``
    graph: Graph | None
    #: the snapshot's ``merged_meta`` payload (MergedGraph
    #: bookkeeping), or ``None``
    merged_meta: dict[str, Any] | None
    #: what recovery found and decided
    report: RecoveryReport


class DurableStore:
    """One graph's durable home: snapshot + WAL + recovery.

    The store also implements the graph's ``MutationSink`` protocol:
    after :meth:`attach`, every structural mutation is appended to the
    WAL, so streaming ingestion persists incrementally between
    snapshots.  Durability never blocks answering: a WAL append whose
    retry budget is exhausted degrades the store to memory-only for
    the rest of the process (counted, never silent) instead of
    failing the mutation.

    Thread-safety: snapshot/append serialize on the store lock;
    :meth:`recover` runs before the store is shared (startup) and is
    documented single-threaded.
    """

    SNAPSHOT_NAME = "snapshot.jsonl"
    WAL_NAME = "wal.jsonl"
    QUARANTINE_DIR = "quarantine"

    def __init__(
        self,
        root: str | Path,
        resilience: ResilienceManager | None = None,
        clock: SimClock | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.snapshot_path = self.root / self.SNAPSHOT_NAME
        self.wal_path = self.root / self.WAL_NAME
        self.quarantine_dir = self.root / self.QUARANTINE_DIR
        self.resilience = resilience
        self.clock = clock
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = wrap_lock(threading.Lock(), "durable.store")
        self._wal = WriteAheadLog(self.wal_path, clock=clock)
        self._wal_healthy = True
        self._attached: Graph | None = None
        r = self.metrics
        self._snapshots = r.counter(
            "svqa_store_snapshots_total",
            "Durable-store snapshots written.")
        self._appends = r.counter(
            "svqa_store_wal_appends_total",
            "Mutations durably appended to the write-ahead log.")
        self._append_drops = r.counter(
            "svqa_store_wal_append_drops_total",
            "WAL appends dropped after guard exhaustion "
            "(store degraded to memory-only).")
        self._recoveries = r.counter(
            "svqa_store_recoveries_total",
            "Recovery outcomes by source.",
            labels=("source",))
        self._replayed = r.counter(
            "svqa_store_wal_records_replayed_total",
            "WAL op records replayed during recovery.")
        self._quarantined = r.counter(
            "svqa_store_quarantined_total",
            "Corrupt records/files quarantined during recovery.",
            labels=("reason",))

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(
        self, graph: Graph, merged_meta: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        """Write an atomic checksummed snapshot and rotate the WAL.

        On success the WAL is reset to a single ``begin`` record bound
        to the new snapshot's digest, and a store previously degraded
        by WAL-append exhaustion becomes healthy again (the snapshot
        re-establishes a durable baseline).  Returns the manifest.
        Guarded at ``store.snapshot``: an exhausted retry budget
        raises :class:`~repro.errors.FaultToleranceError`, leaving the
        previous snapshot+WAL pair intact (atomic replacement).
        """
        def write() -> dict[str, Any]:
            with maybe_span(self.tracer, "store.snapshot",
                            epoch=graph.epoch):
                with self._lock:
                    manifest = write_snapshot(
                        graph, self.snapshot_path, merged_meta)
                    self._wal.reset(
                        manifest["payload_digest"], manifest["epoch"])
                    self._wal_healthy = True
            if self.clock is not None:
                self.clock.charge("store_record_io",
                                  manifest["records"] + 1)
                self.clock.charge("store_fsync", 2)
            self._snapshots.inc()
            return manifest

        if self.resilience is not None:
            result = self.resilience.call(
                "store.snapshot", graph.epoch, write, clock=self.clock)
            assert isinstance(result, dict)
            return result
        return write()

    # ------------------------------------------------------------------
    # the WAL side: MutationSink protocol
    # ------------------------------------------------------------------
    def attach(self, graph: Graph) -> None:
        """Start appending ``graph``'s mutations to the WAL."""
        with self._lock:
            self._attached = graph
        graph.attach_mutation_sink(self)

    def detach(self) -> None:
        """Stop logging and close the WAL handle (idempotent)."""
        with self._lock:
            graph = self._attached
            self._attached = None
        if graph is not None:
            graph.detach_mutation_sink()
        self._wal.close()

    def record(self, op: dict[str, Any]) -> None:
        """``MutationSink`` hook: durably append one mutation.

        Guarded at ``store.wal_append`` with the op's epoch as the
        fault key.  Exhaustion (or a real write error) degrades the
        store to memory-only — counted on
        ``svqa_store_wal_append_drops_total`` — rather than failing
        the in-memory mutation that already happened.
        """
        with self._lock:
            healthy = self._wal_healthy
        if not healthy:
            self._append_drops.inc()
            return

        def append() -> None:
            with maybe_span(self.tracer, "store.wal_append",
                            epoch=op["epoch"]):
                with self._lock:
                    self._wal.append(op)

        try:
            if self.resilience is not None:
                self.resilience.call(
                    "store.wal_append", op["epoch"], append,
                    clock=self.clock)
            else:
                append()
        except (FaultToleranceError, StoreError):
            with self._lock:
                self._wal_healthy = False
            self._append_drops.inc()
            return
        self._appends.inc()

    @property
    def wal_healthy(self) -> bool:
        """Whether WAL appends are still being persisted."""
        with self._lock:
            return self._wal_healthy

    def close(self) -> None:
        """Detach from the graph and release file handles."""
        self.detach()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self) -> RecoveryResult:
        """Recover the last durable state: snapshot load + WAL replay.

        Never raises for on-disk corruption — damage is quarantined
        and attributed in the report, and the result degrades to
        ``source="rebuild"`` when nothing is recoverable.  Guarded at
        ``store.recover``: injected-fault exhaustion also degrades to
        a rebuild verdict (the server falls back to the cold path).
        """
        def run() -> RecoveryResult:
            with maybe_span(self.tracer, "store.recover"):
                return self._recover()

        if self.resilience is None:
            return run()
        try:
            result = self.resilience.call(
                "store.recover", "recover", run, clock=self.clock)
            assert isinstance(result, RecoveryResult)
            return result
        except FaultToleranceError:
            report = RecoveryReport()
            report.notes.append(
                "store.recover guard exhausted its retry budget; "
                "falling back to a full rebuild")
            self._recoveries.inc(source="rebuild")
            return RecoveryResult(None, None, report)

    def _recover(self) -> RecoveryResult:
        report = RecoveryReport()
        if not self.snapshot_path.exists():
            if self.wal_path.exists():
                self._quarantine_file(self.wal_path, report, "orphaned-wal")
            report.notes.append("no snapshot on disk")
            self._recoveries.inc(source="rebuild")
            return RecoveryResult(None, None, report)
        try:
            loaded = read_snapshot(self.snapshot_path)
        except StoreError as exc:
            self._quarantine_file(
                self.snapshot_path, report,
                exc.reason or "bad-snapshot", lineno=exc.lineno)
            if self.wal_path.exists():
                self._quarantine_file(self.wal_path, report, "orphaned-wal")
            report.notes.append(
                "snapshot failed verification; full rebuild required")
            self._recoveries.inc(source="rebuild")
            return RecoveryResult(None, None, report)
        graph = loaded.graph
        manifest = loaded.manifest
        report.source = "snapshot"
        report.snapshot_digest = manifest["payload_digest"]
        if self.clock is not None:
            self.clock.charge("store_record_io", manifest["records"] + 1)
        replayed = self._replay_wal(graph, manifest, report)
        report.wal_records_replayed = replayed
        report.epoch = graph.epoch
        self._recoveries.inc(source="snapshot")
        if replayed:
            self._replayed.inc(replayed)
        return RecoveryResult(graph, loaded.merged_meta, report)

    def _replay_wal(
        self,
        graph: Graph,
        manifest: dict[str, Any],
        report: RecoveryReport,
    ) -> int:
        """Replay the WAL onto ``graph``; returns ops applied.

        Stops at the first damaged or out-of-sequence record: the
        record is quarantined, the remainder dropped, and the WAL file
        truncated to its good prefix — so the on-disk pair is again
        internally consistent.
        """
        if not self.wal_path.exists():
            report.notes.append("no WAL on disk")
            return 0
        try:
            raw = self.wal_path.read_bytes()
        except OSError:
            self._quarantine_file(self.wal_path, report, "unreadable")
            return 0
        lines = raw.split(b"\n")
        if lines and lines[-1] == b"":
            lines.pop()
        if not lines:
            self._quarantine_file(self.wal_path, report, "missing-begin")
            return 0
        try:
            begin = parse_frame(lines[0], self.WAL_NAME, 1)
        except StoreError as exc:
            self._quarantine_file(
                self.wal_path, report, exc.reason or "bad-record",
                lineno=1)
            return 0
        if begin.get("op") != "begin" \
                or begin.get("snapshot_digest") \
                != manifest["payload_digest"] \
                or begin.get("epoch") != manifest["epoch"]:
            # a WAL for some other snapshot generation: the snapshot
            # alone is a valid durable prefix, the log is not ours
            self._quarantine_file(self.wal_path, report, "stale-wal",
                                  lineno=1)
            return 0
        replayed = 0
        good = lines[:1]
        for lineno, line in enumerate(lines[1:], start=2):
            try:
                op = parse_frame(line, self.WAL_NAME, lineno)
                self._apply(graph, op, lineno)
            except StoreError as exc:
                self._quarantine_record(
                    line, lineno, report, exc.reason or "bad-record")
                dropped = len(lines) - lineno
                if dropped:
                    report.notes.append(
                        f"dropped {dropped} WAL record(s) after the "
                        f"damaged record at line {lineno}")
                atomic_write_bytes(
                    self.wal_path,
                    b"".join(item + b"\n" for item in good))
                break
            good.append(line)
            replayed += 1
            if self.clock is not None:
                self.clock.charge("store_record_io")
        return replayed

    def _apply(
        self, graph: Graph, op: dict[str, Any], lineno: int
    ) -> None:
        """Apply one verified WAL op, enforcing epoch continuity.

        The epoch check runs *before* mutating: every logged op bumps
        the epoch exactly once, so a gap means the log lost a record
        (a dropped append) and everything from here on is not a
        durable prefix.
        """
        kind = op.get("op")
        if op.get("epoch") != graph.epoch + 1:
            raise StoreError(
                f"{self.WAL_NAME}:{lineno}: epoch gap (graph at "
                f"{graph.epoch}, record says {op.get('epoch')!r})",
                path=self.WAL_NAME, lineno=lineno, reason="epoch-gap",
            )
        try:
            if kind == "add_vertex":
                graph.add_vertex(op["label"], op["props"],
                                 vertex_id=op["id"])
            elif kind == "add_edge":
                graph.add_edge(op["src"], op["dst"], op["label"],
                               op["props"], edge_id=op["id"])
            elif kind == "remove_edge":
                graph.remove_edge(op["id"])
            elif kind == "remove_vertex":
                graph.remove_vertex(op["id"])
            elif kind == "relabel_vertex":
                graph.relabel_vertex(op["id"], op["label"])
            else:
                raise StoreError(
                    f"{self.WAL_NAME}:{lineno}: unknown WAL op {kind!r}",
                    path=self.WAL_NAME, lineno=lineno,
                    reason="bad-record",
                )
        except KeyError as exc:
            raise StoreError(
                f"{self.WAL_NAME}:{lineno}: {kind} record missing key "
                f"{exc}",
                path=self.WAL_NAME, lineno=lineno, reason="bad-record",
            ) from exc
        except StoreError:
            raise
        except GraphError as exc:
            raise StoreError(
                f"{self.WAL_NAME}:{lineno}: {kind} record does not "
                f"apply: {exc}",
                path=self.WAL_NAME, lineno=lineno, reason="bad-record",
            ) from exc

    # ------------------------------------------------------------------
    # quarantine
    # ------------------------------------------------------------------
    def _quarantine_file(
        self,
        path: Path,
        report: RecoveryReport,
        reason: str,
        lineno: int | None = None,
    ) -> None:
        """Move a damaged file aside (never delete evidence)."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(path, self.quarantine_dir / path.name)
        except OSError:
            report.notes.append(
                f"could not move {path.name} into quarantine")
        report.quarantined.append(
            {"file": path.name, "lineno": lineno, "reason": reason})
        self._quarantined.inc(reason=reason)

    def _quarantine_record(
        self,
        line: bytes,
        lineno: int,
        report: RecoveryReport,
        reason: str,
    ) -> None:
        """Preserve one damaged WAL record under quarantine/."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(
            self.quarantine_dir / f"wal-{lineno:06d}.rec", line + b"\n")
        report.quarantined.append(
            {"file": self.WAL_NAME, "lineno": lineno, "reason": reason})
        self._quarantined.inc(reason=reason)


__all__ = [
    "DurableStore",
    "RecoveryReport",
    "RecoveryResult",
    "WriteAheadLog",
]
