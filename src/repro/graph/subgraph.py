"""Induced subgraphs and the index-based subgraph view ``G[S(t, k)]``.

Definition 2 of the paper: given the k-hop vertex set ``S(t, k)`` of a
target vertex ``t``, ``G[S(t, k)]`` is the subgraph of ``G`` induced by
those vertices.  §III-B notes that SVQA "does not store a part of G
independently; instead, it adds an index to G to distinguish
G[S(t, k)]" — so the primary representation here is
:class:`SubgraphView`, a lightweight vertex-id index over the parent
graph, with :func:`materialize` available when an independent copy is
genuinely needed (e.g. for serialization).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.model import Edge, Graph, Vertex
from repro.graph.traverse import k_hop_neighborhood


@dataclass
class SubgraphView:
    """An induced-subgraph *view*: an id set indexed over a parent graph.

    The view holds no copies — membership checks and iteration resolve
    against the parent, so the view stays consistent with label updates
    on the parent (though not with vertex removals, which callers of the
    aggregator never perform mid-merge).
    """

    parent: Graph
    vertex_ids: frozenset[int]
    anchor: int | None = None
    label_index: dict[str, list[int]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        """Build the per-view label index from the parent's labels."""
        index: dict[str, list[int]] = {}
        for vertex_id in self.vertex_ids:
            label = self.parent.vertex(vertex_id).label
            index.setdefault(label, []).append(vertex_id)
        self.label_index = index

    @property
    def vertex_count(self) -> int:
        """Number of vertices inside the view."""
        return len(self.vertex_ids)

    def vertices(self) -> list[Vertex]:
        """Vertices in the view (resolved live from the parent)."""
        return [self.parent.vertex(i) for i in sorted(self.vertex_ids)]

    def edges(self) -> list[Edge]:
        """Edges of the parent with both endpoints inside the view."""
        result = []
        for vertex_id in sorted(self.vertex_ids):
            for edge in self.parent.out_edges(vertex_id):
                if edge.dst in self.vertex_ids:
                    result.append(edge)
        return result

    def find_vertices(self, label: str) -> list[Vertex]:
        """Vertices in the view carrying ``label`` (built-in index)."""
        return [self.parent.vertex(i) for i in self.label_index.get(label, ())]

    def __contains__(self, vertex_id: int) -> bool:
        """Whether ``vertex_id`` is part of the view."""
        return vertex_id in self.vertex_ids


def induced_subgraph_view(
    graph: Graph, vertex_ids: set[int], anchor: int | None = None
) -> SubgraphView:
    """Build a :class:`SubgraphView` over an explicit vertex set."""
    for vertex_id in vertex_ids:
        graph.vertex(vertex_id)  # validate membership
    return SubgraphView(graph, frozenset(vertex_ids), anchor)


def k_hop_subgraph(graph: Graph, target: int, k: int) -> SubgraphView:
    """``G[S(t, k)]`` — the induced subgraph of the k-hop set of ``target``.

    This is the ``subgraph(t, k, G)`` call of Algorithm 1, line 6.
    """
    vertex_ids = k_hop_neighborhood(graph, target, k, directed=False)
    return SubgraphView(graph, frozenset(vertex_ids), anchor=target)


def materialize(view: SubgraphView) -> Graph:
    """Copy a view into an independent :class:`Graph`.

    Vertex ids are preserved so results can be mapped back to the parent.
    """
    out = Graph(name=f"{view.parent.name}[S]")
    for vertex in view.vertices():
        out.add_vertex(vertex.label, vertex.props, vertex_id=vertex.id)
    for edge in view.edges():
        out.add_edge(edge.src, edge.dst, edge.label, edge.props)
    return out
