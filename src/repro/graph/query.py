"""Low-level pattern-matching primitives over a graph.

These are the building blocks Algorithm 3 composes: find vertices by
(approximate) label, and retrieve the relation pairs
``(Sub - E_so - Obj)`` connecting two vertex sets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.model import Edge, Graph, Vertex


@dataclass(frozen=True)
class RelationPair:
    """One ``subject --edge--> object`` match in the merged graph."""

    subject: Vertex
    edge: Edge
    object: Vertex

    @property
    def triple(self) -> tuple[str, str, str]:
        """The (subject-label, edge-label, object-label) triple."""
        return (self.subject.label, self.edge.label, self.object.label)


def vertices_with_label(graph: Graph, label: str) -> list[Vertex]:
    """Exact-label vertex lookup (index-backed)."""
    return graph.find_vertices(label)


def relations_between(
    graph: Graph,
    subjects: list[Vertex],
    objects: list[Vertex],
    *,
    include_reverse: bool = False,
) -> list[RelationPair]:
    """All edges from any subject to any object (``getRelations``).

    Scans the out-edges of the smaller side against a membership set of
    the other, so cost is O(min-side out-degree mass), not |S| x |O|.
    With ``include_reverse`` edges running object -> subject are also
    returned (reversed into subject/object order is NOT applied; the
    pair keeps the edge's true direction via ``edge.src``).
    """
    object_ids = {v.id: v for v in objects}
    subject_ids = {v.id: v for v in subjects}
    pairs: list[RelationPair] = []
    for subject in subjects:
        for edge in graph.out_edges(subject.id):
            if edge.dst in object_ids:
                pairs.append(RelationPair(subject, edge, object_ids[edge.dst]))
    if include_reverse:
        for obj in objects:
            for edge in graph.out_edges(obj.id):
                if edge.src in subject_ids:
                    continue  # already covered above
                if edge.dst in subject_ids:
                    pairs.append(RelationPair(obj, edge, subject_ids[edge.dst]))
    return pairs


def relations_from(graph: Graph, subjects: list[Vertex]) -> list[RelationPair]:
    """All outgoing relation pairs of the given subjects.

    Used when a SPOC has an unknown object (e.g. "What kind of clothes
    are worn by X" — the object set is open).
    """
    pairs = []
    for subject in subjects:
        for edge in graph.out_edges(subject.id):
            pairs.append(RelationPair(subject, edge, graph.vertex(edge.dst)))
    return pairs


def relations_to(graph: Graph, objects: list[Vertex]) -> list[RelationPair]:
    """All incoming relation pairs of the given objects."""
    pairs = []
    for obj in objects:
        for edge in graph.in_edges(obj.id):
            pairs.append(RelationPair(graph.vertex(edge.src), edge, obj))
    return pairs


def count_edge_scans(
    subjects: list[Vertex], graph: Graph
) -> int:
    """How many edges a ``relations_between`` call would scan.

    Exposed so the executor can charge the simulated clock with the
    true data-dependent cost.
    """
    return sum(graph.out_degree(s.id) for s in subjects)
