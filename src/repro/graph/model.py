"""Directed labeled multigraph — the storage model used everywhere.

The paper defines ``G = (V, E, L)``: a directed graph whose vertices and
edges both carry labels (§II).  Scene graphs, the external knowledge
graph, the merged graph ``G_mg``, and the query graph ``G_q`` are all
instances of this model, so we implement it once with:

* stable integer vertex/edge ids,
* O(1) vertex lookup and adjacency access,
* a label index maintained incrementally (see :mod:`repro.graph.index`),
* arbitrary per-vertex / per-edge properties (bounding boxes, image ids,
  SPOC payloads, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator
from typing import Any, TYPE_CHECKING

from repro.errors import (
    DuplicateEdgeError,
    DuplicateVertexError,
    EdgeNotFoundError,
    VertexNotFoundError,
)
from repro.graph.candidates import VertexCandidateIndex
from repro.graph.index import LabelIndex
from repro.nlp.ann import EmbeddingANNIndex
from repro.retrieval.lexical import LexicalIndex

if TYPE_CHECKING:
    from typing import Protocol

    class MutationSink(Protocol):
        """Observer of structural graph mutations (the WAL seam).

        The durable store's write-ahead log implements this; the graph
        calls :meth:`record` once per applied mutation with a
        JSON-ready op dict (``op``, ``epoch``, and the op's payload).
        With no sink attached the hook is a single ``is None`` check,
        so persistence is strictly zero-cost when off.
        """

        def record(self, op: dict[str, Any]) -> None:
            """One applied mutation, in application order."""


@dataclass
class Vertex:
    """A labeled vertex with arbitrary properties.

    Attributes
    ----------
    id:
        Integer id, unique within its graph.
    label:
        The vertex label ``L(v)`` — for scene graphs the object class,
        for knowledge graphs the entity name.
    props:
        Free-form properties (e.g. ``image_id``, ``bbox``, ``source``).
    """

    id: int
    label: str
    props: dict[str, Any] = field(default_factory=dict)

    def __hash__(self) -> int:
        """Hash by id (labels and props are mutable)."""
        return hash(self.id)


@dataclass
class Edge:
    """A labeled directed edge ``src --label--> dst``."""

    id: int
    src: int
    dst: int
    label: str
    props: dict[str, Any] = field(default_factory=dict)

    def __hash__(self) -> int:
        """Hash by id (labels and props are mutable)."""
        return hash(self.id)


class Graph:
    """A directed labeled multigraph with incremental indexes.

    Vertices and edges are identified by dense integer ids assigned at
    insertion.  Multiple edges between the same vertex pair are allowed
    (a scene may assert both ``dog near man`` and ``dog in front of
    man``).

    Example
    -------
    >>> g = Graph(name="demo")
    >>> a = g.add_vertex("dog")
    >>> b = g.add_vertex("man")
    >>> e = g.add_edge(a.id, b.id, "in front of")
    >>> [v.label for v in g.successors(a.id)]
    ['man']
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._vertices: dict[int, Vertex] = {}
        self._edges: dict[int, Edge] = {}
        self._out: dict[int, list[int]] = {}
        self._in: dict[int, list[int]] = {}
        self._next_vertex_id = 0
        self._next_edge_id = 0
        self.vertex_labels = LabelIndex()
        self.edge_labels = LabelIndex()
        self.candidate_index = VertexCandidateIndex()
        self.ann_index = EmbeddingANNIndex()
        self.lexical_index = LexicalIndex()
        self._epoch = 0
        self._mutation_sink: MutationSink | None = None

    def attach_mutation_sink(self, sink: MutationSink) -> None:
        """Attach a mutation observer (the durable store's WAL).

        Every subsequent structural mutation is reported to
        ``sink.record`` *after* it is applied and the epoch has been
        bumped, in application order.  One sink at a time: attaching
        replaces any previous sink.
        """
        self._mutation_sink = sink

    def detach_mutation_sink(self) -> None:
        """Stop reporting mutations (idempotent)."""
        self._mutation_sink = None

    def _restore_bookkeeping(
        self, epoch: int, next_vertex_id: int, next_edge_id: int
    ) -> None:
        """Restore loader-only counters after rebuilding from a store.

        Replaying a snapshot's records through the public mutators
        bumps the epoch once per record; the snapshot manifest carries
        the *original* graph's epoch and id watermarks, which must win
        so WAL replay and post-recovery ingestion continue the exact
        id/epoch sequence of the crashed process.  Only the store-v2
        loader calls this.
        """
        self._epoch = epoch
        self._next_vertex_id = max(self._next_vertex_id, next_vertex_id)
        self._next_edge_id = max(self._next_edge_id, next_edge_id)

    @property
    def epoch(self) -> int:
        """Monotone mutation counter: bumped by every structural
        mutation (vertex or edge), so anything derived from the graph
        — executor scope/path cache entries in particular — can be
        tagged with the epoch it was computed under and retired when
        the graph moves on.
        """
        return self._epoch

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_vertex(
        self,
        label: str,
        props: dict[str, Any] | None = None,
        vertex_id: int | None = None,
    ) -> Vertex:
        """Add a vertex; returns the new :class:`Vertex`.

        ``vertex_id`` may be supplied when loading from a store; it must
        not collide with an existing id.
        """
        if vertex_id is None:
            vertex_id = self._next_vertex_id
        if vertex_id in self._vertices:
            raise DuplicateVertexError(vertex_id)
        self._next_vertex_id = max(self._next_vertex_id, vertex_id + 1)
        vertex = Vertex(vertex_id, label, dict(props or {}))
        self._vertices[vertex_id] = vertex
        self._out[vertex_id] = []
        self._in[vertex_id] = []
        self.vertex_labels.add(label, vertex_id)
        self.candidate_index.add_label(label)
        self.lexical_index.add_document(label)
        self._epoch += 1
        if self._mutation_sink is not None:
            self._mutation_sink.record({
                "op": "add_vertex", "epoch": self._epoch,
                "id": vertex_id, "label": label, "props": vertex.props,
            })
        return vertex

    def add_edge(
        self,
        src: int,
        dst: int,
        label: str,
        props: dict[str, Any] | None = None,
        edge_id: int | None = None,
    ) -> Edge:
        """Add a directed edge from ``src`` to ``dst``.

        ``edge_id`` may be supplied when loading from a store or
        replaying a write-ahead log; it must not collide with an
        existing id.
        """
        if src not in self._vertices:
            raise VertexNotFoundError(src)
        if dst not in self._vertices:
            raise VertexNotFoundError(dst)
        if edge_id is None:
            edge_id = self._next_edge_id
        if edge_id in self._edges:
            raise DuplicateEdgeError(edge_id)
        self._next_edge_id = max(self._next_edge_id, edge_id + 1)
        edge = Edge(edge_id, src, dst, label, dict(props or {}))
        self._edges[edge.id] = edge
        self._out[src].append(edge.id)
        self._in[dst].append(edge.id)
        self.edge_labels.add(label, edge.id)
        self.ann_index.add_label(label)
        self._epoch += 1
        if self._mutation_sink is not None:
            self._mutation_sink.record({
                "op": "add_edge", "epoch": self._epoch, "id": edge.id,
                "src": src, "dst": dst, "label": label,
                "props": edge.props,
            })
        return edge

    def remove_edge(self, edge_id: int) -> None:
        """Remove an edge by id."""
        edge = self._edges.pop(edge_id, None)
        if edge is None:
            raise EdgeNotFoundError(edge_id)
        self._out[edge.src].remove(edge_id)
        self._in[edge.dst].remove(edge_id)
        self.edge_labels.remove(edge.label, edge_id)
        self.ann_index.remove_label(edge.label)
        self._epoch += 1
        if self._mutation_sink is not None:
            self._mutation_sink.record({
                "op": "remove_edge", "epoch": self._epoch, "id": edge_id,
            })

    def remove_vertex(self, vertex_id: int) -> None:
        """Remove a vertex and every edge incident to it.

        Incident edges are removed through :meth:`remove_edge` *while
        the vertex is still present*, so a mutation sink sees one
        ``remove_edge`` record per cascaded edge before the
        ``remove_vertex`` record and — crucially for WAL replay —
        every intermediate in-memory state equals the state reached by
        applying the logged op prefix up to that epoch.
        """
        vertex = self._vertices.get(vertex_id)
        if vertex is None:
            raise VertexNotFoundError(vertex_id)
        for edge_id in list(self._out[vertex_id]) + list(self._in[vertex_id]):
            if edge_id in self._edges:
                self.remove_edge(edge_id)
        del self._vertices[vertex_id]
        del self._out[vertex_id]
        del self._in[vertex_id]
        self.vertex_labels.remove(vertex.label, vertex_id)
        self.candidate_index.remove_label(vertex.label)
        self.lexical_index.remove_document(vertex.label)
        self._epoch += 1
        if self._mutation_sink is not None:
            self._mutation_sink.record({
                "op": "remove_vertex", "epoch": self._epoch,
                "id": vertex_id,
            })

    def relabel_vertex(self, vertex_id: int, label: str) -> None:
        """Change a vertex label, keeping the label indexes consistent."""
        vertex = self.vertex(vertex_id)
        self.vertex_labels.remove(vertex.label, vertex_id)
        self.candidate_index.remove_label(vertex.label)
        self.lexical_index.remove_document(vertex.label)
        vertex.label = label
        self.vertex_labels.add(label, vertex_id)
        self.candidate_index.add_label(label)
        self.lexical_index.add_document(label)
        self._epoch += 1
        if self._mutation_sink is not None:
            self._mutation_sink.record({
                "op": "relabel_vertex", "epoch": self._epoch,
                "id": vertex_id, "label": label,
            })

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def vertex(self, vertex_id: int) -> Vertex:
        """Return the vertex with the given id."""
        try:
            return self._vertices[vertex_id]
        except KeyError:
            raise VertexNotFoundError(vertex_id) from None

    def edge(self, edge_id: int) -> Edge:
        """Return the edge with the given id."""
        try:
            return self._edges[edge_id]
        except KeyError:
            raise EdgeNotFoundError(edge_id) from None

    def has_vertex(self, vertex_id: int) -> bool:
        """Whether ``vertex_id`` exists in the graph."""
        return vertex_id in self._vertices

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._vertices.values())

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges."""
        return iter(self._edges.values())

    def vertex_ids(self) -> Iterable[int]:
        """A view over every vertex id."""
        return self._vertices.keys()

    @property
    def vertex_count(self) -> int:
        """Number of vertices."""
        return len(self._vertices)

    @property
    def edge_count(self) -> int:
        """Number of edges."""
        return len(self._edges)

    def out_edges(self, vertex_id: int) -> list[Edge]:
        """Edges leaving ``vertex_id``."""
        if vertex_id not in self._vertices:
            raise VertexNotFoundError(vertex_id)
        return [self._edges[e] for e in self._out[vertex_id]]

    def in_edges(self, vertex_id: int) -> list[Edge]:
        """Edges entering ``vertex_id``."""
        if vertex_id not in self._vertices:
            raise VertexNotFoundError(vertex_id)
        return [self._edges[e] for e in self._in[vertex_id]]

    def out_degree(self, vertex_id: int) -> int:
        """Number of edges leaving ``vertex_id``."""
        if vertex_id not in self._vertices:
            raise VertexNotFoundError(vertex_id)
        return len(self._out[vertex_id])

    def in_degree(self, vertex_id: int) -> int:
        """Number of edges entering ``vertex_id``."""
        if vertex_id not in self._vertices:
            raise VertexNotFoundError(vertex_id)
        return len(self._in[vertex_id])

    def successors(self, vertex_id: int) -> list[Vertex]:
        """Vertices reachable by one outgoing edge."""
        return [self._vertices[e.dst] for e in self.out_edges(vertex_id)]

    def predecessors(self, vertex_id: int) -> list[Vertex]:
        """Vertices with an edge into ``vertex_id``."""
        return [self._vertices[e.src] for e in self.in_edges(vertex_id)]

    def neighbors(self, vertex_id: int) -> list[Vertex]:
        """Union of successors and predecessors (deduplicated, ordered)."""
        seen: dict[int, Vertex] = {}
        for v in self.successors(vertex_id):
            seen.setdefault(v.id, v)
        for v in self.predecessors(vertex_id):
            seen.setdefault(v.id, v)
        return list(seen.values())

    def edges_between(self, src: int, dst: int) -> list[Edge]:
        """All directed edges from ``src`` to ``dst``."""
        return [e for e in self.out_edges(src) if e.dst == dst]

    def find_vertices(self, label: str) -> list[Vertex]:
        """All vertices carrying ``label`` (via the label index)."""
        return [self._vertices[i] for i in self.vertex_labels.ids(label)]

    def find_edges(self, label: str) -> list[Edge]:
        """All edges carrying ``label`` (via the label index)."""
        return [self._edges[i] for i in self.edge_labels.ids(label)]

    def __contains__(self, vertex_id: int) -> bool:
        """Whether ``vertex_id`` exists in the graph."""
        return vertex_id in self._vertices

    def __repr__(self) -> str:
        """Compact summary: name plus vertex/edge counts."""
        return (
            f"Graph(name={self.name!r}, vertices={self.vertex_count}, "
            f"edges={self.edge_count})"
        )
