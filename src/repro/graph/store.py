"""Graph persistence (JSON-lines) and summary statistics.

Two on-disk formats live here (full spec in DESIGN.md §5i):

**v1** — the original diff-able JSONL format: a header record
``{"type": "header", "version": 1, "name": ...}`` followed by one
``{"type": "vertex", ...}`` / ``{"type": "edge", ...}`` record per
element.  v1 has no checksums; it remains the format of
:func:`save_graph` / :func:`load_graph` for ad-hoc exports, but writes
now go through the atomic temp+fsync+rename path so a crash can never
destroy the previous good file.

**v2 (snapshot)** — the durable-store format used by
:mod:`repro.graph.durable`.  Every line is a *framed* record::

    <payload-bytes>|<blake2b-128 hex>|<canonical-json-payload>\\n

so torn writes and flipped bits are detected per record.  The first
record is a manifest carrying the format version, graph name,
``Graph.epoch``, vertex/edge counts, the id watermarks needed for
exact WAL replay, and a whole-file digest over every framed record
after the manifest.  The same framing is shared by the write-ahead
log (:class:`repro.graph.durable.WriteAheadLog`).

All load/verify failures raise :class:`~repro.errors.StoreError` with
structured attribution (``path``, ``lineno``, machine-readable
``reason`` slug) so recovery reports and the crash-torture harness can
point at the damage.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import GraphError, StoreError
from repro.graph.model import Graph

FORMAT_VERSION = 1

#: format version of the framed snapshot format (store v2)
SNAPSHOT_VERSION = 2

#: blake2b digest size in bytes for record and whole-file checksums
#: (128-bit: 32 hex characters per digest field)
DIGEST_SIZE = 16


# ----------------------------------------------------------------------
# record framing (shared by snapshots and the write-ahead log)
# ----------------------------------------------------------------------
def canonical_payload(record: dict[str, Any]) -> bytes:
    """The canonical JSON encoding of one record.

    Sorted keys, no whitespace, ASCII-escaped — so equal records have
    equal bytes and same-seed runs write byte-identical files.
    """
    return json.dumps(
        record, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")


def frame_record(record: dict[str, Any]) -> bytes:
    """Frame one record as ``<len>|<digest>|<payload>\\n`` bytes."""
    payload = canonical_payload(record)
    digest = hashlib.blake2b(payload, digest_size=DIGEST_SIZE).hexdigest()
    return b"%d|%s|%s\n" % (len(payload), digest.encode("ascii"), payload)


def parse_frame(
    line: bytes, path: str | Path | None = None, lineno: int | None = None
) -> dict[str, Any]:
    """Parse and verify one framed line (without its newline).

    Raises :class:`~repro.errors.StoreError` with reason
    ``"torn-record"`` (framing damage: missing separators, bad length
    field, short payload — the shape a crash mid-append leaves),
    ``"bad-digest"`` (full-length payload whose checksum does not
    match — flipped bits), or ``"bad-record"`` (digest-valid payload
    that is not a JSON object — a writer bug, not corruption).
    """
    length_field, sep, rest = line.partition(b"|")
    if not sep:
        raise StoreError(
            f"{path}:{lineno}: torn record (no length separator)",
            path=path, lineno=lineno, reason="torn-record",
        )
    try:
        length = int(length_field)
    except ValueError:
        raise StoreError(
            f"{path}:{lineno}: torn record (bad length field "
            f"{length_field!r})",
            path=path, lineno=lineno, reason="torn-record",
        ) from None
    digest_field, sep, payload = rest.partition(b"|")
    if not sep or len(digest_field) != 2 * DIGEST_SIZE:
        raise StoreError(
            f"{path}:{lineno}: torn record (bad digest field)",
            path=path, lineno=lineno, reason="torn-record",
        )
    if len(payload) != length:
        raise StoreError(
            f"{path}:{lineno}: torn record (payload is {len(payload)} "
            f"bytes, framed length says {length})",
            path=path, lineno=lineno, reason="torn-record",
        )
    actual = hashlib.blake2b(payload, digest_size=DIGEST_SIZE).hexdigest()
    if actual.encode("ascii") != digest_field:
        raise StoreError(
            f"{path}:{lineno}: record checksum mismatch",
            path=path, lineno=lineno, reason="bad-digest",
        )
    try:
        record = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise StoreError(
            f"{path}:{lineno}: checksummed payload is not JSON: {exc}",
            path=path, lineno=lineno, reason="bad-record",
        ) from exc
    if not isinstance(record, dict):
        raise StoreError(
            f"{path}:{lineno}: record must be a JSON object",
            path=path, lineno=lineno, reason="bad-record",
        )
    return record


# ----------------------------------------------------------------------
# atomic file replacement
# ----------------------------------------------------------------------
def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically.

    Writes to a sibling temp file, fsyncs it, renames it over the
    target, then fsyncs the directory — so readers see either the old
    complete file or the new complete file, never a torn mix, even
    across a crash at any point.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with tmp.open("wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        raise StoreError(
            f"cannot write {path}: {exc}", path=path, reason="unwritable"
        ) from exc
    _fsync_dir(path.parent)


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry (rename durability); best-effort on
    platforms without directory file descriptors."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


# ----------------------------------------------------------------------
# v1: plain JSONL (ad-hoc exports; now crash-safe on the write side)
# ----------------------------------------------------------------------
def save_graph(graph: Graph, path: str | Path) -> None:
    """Serialize ``graph`` to a JSONL file at ``path``, atomically."""
    lines = [
        json.dumps(
            {"type": "header", "version": FORMAT_VERSION, "name": graph.name}
        )
    ]
    for vertex in graph.vertices():
        lines.append(json.dumps({
            "type": "vertex",
            "id": vertex.id,
            "label": vertex.label,
            "props": vertex.props,
        }))
    for edge in graph.edges():
        lines.append(json.dumps({
            "type": "edge",
            "src": edge.src,
            "dst": edge.dst,
            "label": edge.label,
            "props": edge.props,
        }))
    atomic_write_bytes(path, ("\n".join(lines) + "\n").encode("utf-8"))


def load_graph(path: str | Path) -> Graph:
    """Load a graph previously written by :func:`save_graph`.

    Malformed input raises an attributed
    :class:`~repro.errors.StoreError` (``path``, 1-based ``lineno``,
    ``reason`` slug) — never a bare ``KeyError`` or a misleading
    "unknown record type" for a duplicated header.
    """
    path = Path(path)
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise StoreError(
            f"cannot read graph file {path}: {exc}",
            path=path, reason="unreadable",
        ) from exc
    if not lines:
        raise StoreError(
            f"empty graph file: {path}", path=path, reason="missing-header"
        )

    header = _parse_line(lines[0], path, 1)
    if header.get("type") != "header":
        raise StoreError(
            f"{path}:1: first record must be a header",
            path=path, lineno=1, reason="missing-header",
        )
    if header.get("version") != FORMAT_VERSION:
        raise StoreError(
            f"{path}:1: unsupported format version "
            f"{header.get('version')!r}",
            path=path, lineno=1, reason="bad-version",
        )

    name = header.get("name", "")
    if not isinstance(name, str):
        raise StoreError(
            f"{path}:1: header name must be a string, got {name!r}",
            path=path, lineno=1, reason="bad-record",
        )
    graph = Graph(name=name)
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        record = _parse_line(line, path, lineno)
        kind = record.get("type")
        try:
            if kind == "vertex":
                graph.add_vertex(
                    record["label"], record.get("props"),
                    vertex_id=record["id"],
                )
            elif kind == "edge":
                graph.add_edge(
                    record["src"], record["dst"], record["label"],
                    record.get("props"),
                )
            elif kind == "header":
                raise StoreError(
                    f"{path}:{lineno}: duplicate header record",
                    path=path, lineno=lineno, reason="duplicate-header",
                )
            else:
                raise StoreError(
                    f"{path}:{lineno}: unknown record type {kind!r}",
                    path=path, lineno=lineno, reason="bad-record",
                )
        except KeyError as exc:
            raise StoreError(
                f"{path}:{lineno}: {kind} record missing key {exc}",
                path=path, lineno=lineno, reason="bad-record",
            ) from exc
        except StoreError:
            raise
        except GraphError as exc:
            raise StoreError(
                f"{path}:{lineno}: inconsistent {kind} record: {exc}",
                path=path, lineno=lineno, reason="bad-record",
            ) from exc
    return graph


def _parse_line(line: str, path: Path, lineno: int) -> dict[str, Any]:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise StoreError(
            f"{path}:{lineno}: invalid JSON: {exc}",
            path=path, lineno=lineno, reason="bad-json",
        ) from exc
    if not isinstance(record, dict):
        raise StoreError(
            f"{path}:{lineno}: record must be an object",
            path=path, lineno=lineno, reason="bad-record",
        )
    return record


# ----------------------------------------------------------------------
# v2: framed, checksummed snapshots (the durable store's format)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LoadedSnapshot:
    """The verified contents of one store-v2 snapshot file."""

    #: the rebuilt graph, with epoch and id watermarks restored
    graph: Graph
    #: the verified manifest record (version, digests, counts, ...)
    manifest: dict[str, Any]
    #: the optional ``merged_meta`` record's ``meta`` dict (MergedGraph
    #: bookkeeping for server warm start), or ``None``
    merged_meta: dict[str, Any] | None


_MANIFEST_INT_FIELDS = (
    "epoch", "vertices", "edges", "records", "next_vertex_id",
    "next_edge_id",
)


def write_snapshot(
    graph: Graph,
    path: str | Path,
    merged_meta: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Write a store-v2 snapshot of ``graph`` to ``path``, atomically.

    Records are written in insertion order (vertices then edges), so a
    rebuilt graph iterates identically to the original — a requirement
    for bit-identical answers after warm start.  ``merged_meta`` is an
    optional JSON-ready dict stored verbatim (the serving layer puts
    :class:`~repro.core.aggregator.MergedGraph` bookkeeping there).

    Returns the manifest record, whose ``payload_digest`` identifies
    this snapshot (the WAL's ``begin`` record links to it).
    """
    records: list[dict[str, Any]] = []
    if merged_meta is not None:
        records.append({"type": "merged_meta", "meta": merged_meta})
    for vertex in graph.vertices():
        records.append({
            "type": "vertex", "id": vertex.id, "label": vertex.label,
            "props": vertex.props,
        })
    for edge in graph.edges():
        records.append({
            "type": "edge", "id": edge.id, "src": edge.src,
            "dst": edge.dst, "label": edge.label, "props": edge.props,
        })
    body = b"".join(frame_record(record) for record in records)
    manifest = {
        "type": "manifest",
        "version": SNAPSHOT_VERSION,
        "name": graph.name,
        "epoch": graph.epoch,
        "vertices": graph.vertex_count,
        "edges": graph.edge_count,
        "records": len(records),
        "next_vertex_id": graph._next_vertex_id,
        "next_edge_id": graph._next_edge_id,
        "payload_digest": hashlib.blake2b(
            body, digest_size=DIGEST_SIZE
        ).hexdigest(),
    }
    atomic_write_bytes(path, frame_record(manifest) + body)
    return manifest


def read_snapshot(path: str | Path) -> LoadedSnapshot:
    """Load and fully verify a store-v2 snapshot.

    Verification order localizes damage as precisely as possible:
    every frame's own checksum first (attributing a line number), then
    the record count, then the whole-file payload digest, then graph
    reconstruction, then the manifest's vertex/edge counts.  Any
    failure raises an attributed :class:`~repro.errors.StoreError`;
    there is no partial success.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise StoreError(
            f"cannot read snapshot {path}: {exc}",
            path=path, reason="unreadable",
        ) from exc
    lines = raw.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    if not lines:
        raise StoreError(
            f"empty snapshot: {path}", path=path, reason="missing-manifest"
        )

    manifest = parse_frame(lines[0], path, 1)
    if manifest.get("type") != "manifest":
        raise StoreError(
            f"{path}:1: first record must be a manifest",
            path=path, lineno=1, reason="missing-manifest",
        )
    if manifest.get("version") != SNAPSHOT_VERSION:
        raise StoreError(
            f"{path}:1: unsupported snapshot version "
            f"{manifest.get('version')!r}",
            path=path, lineno=1, reason="bad-version",
        )
    for fld in _MANIFEST_INT_FIELDS:
        if not isinstance(manifest.get(fld), int):
            raise StoreError(
                f"{path}:1: manifest field {fld!r} must be an integer",
                path=path, lineno=1, reason="bad-manifest",
            )
    if not isinstance(manifest.get("name"), str) or \
            not isinstance(manifest.get("payload_digest"), str):
        raise StoreError(
            f"{path}:1: manifest name/payload_digest must be strings",
            path=path, lineno=1, reason="bad-manifest",
        )

    records = [
        parse_frame(line, path, lineno)
        for lineno, line in enumerate(lines[1:], start=2)
    ]
    if len(records) != manifest["records"]:
        raise StoreError(
            f"{path}: manifest promises {manifest['records']} records, "
            f"found {len(records)}",
            path=path, reason="record-count",
        )
    body = raw[raw.index(b"\n") + 1:]
    actual = hashlib.blake2b(body, digest_size=DIGEST_SIZE).hexdigest()
    if actual != manifest["payload_digest"]:
        raise StoreError(
            f"{path}: whole-file payload digest mismatch",
            path=path, reason="bad-digest",
        )

    graph = Graph(name=manifest["name"])
    merged_meta: dict[str, Any] | None = None
    for lineno, record in enumerate(records, start=2):
        kind = record.get("type")
        try:
            if kind == "vertex":
                graph.add_vertex(
                    record["label"], record["props"],
                    vertex_id=record["id"],
                )
            elif kind == "edge":
                graph.add_edge(
                    record["src"], record["dst"], record["label"],
                    record["props"], edge_id=record["id"],
                )
            elif kind == "merged_meta":
                if merged_meta is not None:
                    raise StoreError(
                        f"{path}:{lineno}: duplicate merged_meta record",
                        path=path, lineno=lineno, reason="bad-record",
                    )
                meta = record["meta"]
                if not isinstance(meta, dict):
                    raise StoreError(
                        f"{path}:{lineno}: merged_meta meta must be an "
                        "object",
                        path=path, lineno=lineno, reason="bad-record",
                    )
                merged_meta = meta
            else:
                raise StoreError(
                    f"{path}:{lineno}: unknown record type {kind!r}",
                    path=path, lineno=lineno, reason="bad-record",
                )
        except KeyError as exc:
            raise StoreError(
                f"{path}:{lineno}: {kind} record missing key {exc}",
                path=path, lineno=lineno, reason="bad-record",
            ) from exc
        except StoreError:
            raise
        except GraphError as exc:
            raise StoreError(
                f"{path}:{lineno}: inconsistent {kind} record: {exc}",
                path=path, lineno=lineno, reason="bad-record",
            ) from exc
    if graph.vertex_count != manifest["vertices"] or \
            graph.edge_count != manifest["edges"]:
        raise StoreError(
            f"{path}: manifest counts "
            f"({manifest['vertices']}v/{manifest['edges']}e) disagree "
            f"with records ({graph.vertex_count}v/{graph.edge_count}e)",
            path=path, reason="bad-count",
        )
    graph._restore_bookkeeping(
        manifest["epoch"], manifest["next_vertex_id"],
        manifest["next_edge_id"],
    )
    return LoadedSnapshot(graph=graph, manifest=manifest,
                          merged_meta=merged_meta)


# ----------------------------------------------------------------------
# extensional equality (torture-harness verification)
# ----------------------------------------------------------------------
def extensional_digest(graph: Graph) -> str:
    """A digest of a graph's extensional content plus its epoch.

    Two graphs have equal digests iff they have the same name, epoch,
    and the same vertex/edge sets (ids, labels, props) — regardless of
    insertion order or internal index state.  The crash-torture
    harness uses this to assert that recovery yields *exactly* some
    durable prefix of the mutation history.
    """
    payload = {
        "name": graph.name,
        "epoch": graph.epoch,
        "vertices": [
            [v.id, v.label, v.props]
            for v in sorted(graph.vertices(), key=lambda v: v.id)
        ],
        "edges": [
            [e.id, e.src, e.dst, e.label, e.props]
            for e in sorted(graph.edges(), key=lambda e: e.id)
        ],
    }
    return hashlib.blake2b(
        canonical_payload(payload), digest_size=DIGEST_SIZE
    ).hexdigest()


def graphs_equal(a: Graph, b: Graph) -> bool:
    """Extensional equality (see :func:`extensional_digest`)."""
    return extensional_digest(a) == extensional_digest(b)


# ----------------------------------------------------------------------
# summary statistics
# ----------------------------------------------------------------------
@dataclass
class GraphStats:
    """Summary statistics for a graph."""

    vertex_count: int
    edge_count: int
    vertex_label_count: int
    edge_label_count: int
    max_out_degree: int
    max_in_degree: int
    top_vertex_labels: list[tuple[str, int]]
    top_edge_labels: list[tuple[str, int]]


def graph_stats(graph: Graph, top: int = 10) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    vertex_counts = graph.vertex_labels.counts()
    edge_counts = graph.edge_labels.counts()
    max_out = max((graph.out_degree(v) for v in graph.vertex_ids()), default=0)
    max_in = max((graph.in_degree(v) for v in graph.vertex_ids()), default=0)

    def top_items(counts: dict[str, int]) -> list[tuple[str, int]]:
        return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:top]

    return GraphStats(
        vertex_count=graph.vertex_count,
        edge_count=graph.edge_count,
        vertex_label_count=len(vertex_counts),
        edge_label_count=len(edge_counts),
        max_out_degree=max_out,
        max_in_degree=max_in,
        top_vertex_labels=top_items(vertex_counts),
        top_edge_labels=top_items(edge_counts),
    )
