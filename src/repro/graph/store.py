"""Graph persistence (JSON-lines) and summary statistics.

The external knowledge graph and the merged graph can be saved to and
loaded from disk; the on-disk format is one JSON object per line:

* a header record ``{"type": "header", "version": 1, "name": ...}``,
* one ``{"type": "vertex", ...}`` record per vertex,
* one ``{"type": "edge", ...}`` record per edge.

The format is append-friendly and diff-able, which is all this
reproduction needs from a storage layer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import StoreError
from repro.graph.model import Graph

FORMAT_VERSION = 1


def save_graph(graph: Graph, path: str | Path) -> None:
    """Serialize ``graph`` to a JSONL file at ``path``."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        header = {"type": "header", "version": FORMAT_VERSION, "name": graph.name}
        handle.write(json.dumps(header) + "\n")
        for vertex in graph.vertices():
            record = {
                "type": "vertex",
                "id": vertex.id,
                "label": vertex.label,
                "props": vertex.props,
            }
            handle.write(json.dumps(record) + "\n")
        for edge in graph.edges():
            record = {
                "type": "edge",
                "src": edge.src,
                "dst": edge.dst,
                "label": edge.label,
                "props": edge.props,
            }
            handle.write(json.dumps(record) + "\n")


def load_graph(path: str | Path) -> Graph:
    """Load a graph previously written by :func:`save_graph`."""
    path = Path(path)
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise StoreError(f"cannot read graph file {path}: {exc}") from exc
    if not lines:
        raise StoreError(f"empty graph file: {path}")

    header = _parse_line(lines[0], path, 1)
    if header.get("type") != "header":
        raise StoreError(f"{path}: first record must be a header")
    if header.get("version") != FORMAT_VERSION:
        raise StoreError(
            f"{path}: unsupported format version {header.get('version')!r}"
        )

    graph = Graph(name=header.get("name", ""))
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        record = _parse_line(line, path, lineno)
        kind = record.get("type")
        if kind == "vertex":
            graph.add_vertex(
                record["label"], record.get("props"), vertex_id=record["id"]
            )
        elif kind == "edge":
            graph.add_edge(
                record["src"], record["dst"], record["label"], record.get("props")
            )
        else:
            raise StoreError(f"{path}:{lineno}: unknown record type {kind!r}")
    return graph


def _parse_line(line: str, path: Path, lineno: int) -> dict[str, object]:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise StoreError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
    if not isinstance(record, dict):
        raise StoreError(f"{path}:{lineno}: record must be an object")
    return record


@dataclass
class GraphStats:
    """Summary statistics for a graph."""

    vertex_count: int
    edge_count: int
    vertex_label_count: int
    edge_label_count: int
    max_out_degree: int
    max_in_degree: int
    top_vertex_labels: list[tuple[str, int]]
    top_edge_labels: list[tuple[str, int]]


def graph_stats(graph: Graph, top: int = 10) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    vertex_counts = graph.vertex_labels.counts()
    edge_counts = graph.edge_labels.counts()
    max_out = max((graph.out_degree(v) for v in graph.vertex_ids()), default=0)
    max_in = max((graph.in_degree(v) for v in graph.vertex_ids()), default=0)

    def top_items(counts: dict[str, int]) -> list[tuple[str, int]]:
        return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:top]

    return GraphStats(
        vertex_count=graph.vertex_count,
        edge_count=graph.edge_count,
        vertex_label_count=len(vertex_counts),
        edge_label_count=len(edge_counts),
        max_out_degree=max_out,
        max_in_degree=max_in,
        top_vertex_labels=top_items(vertex_counts),
        top_edge_labels=top_items(edge_counts),
    )
