"""Crash-torture harness for the durable store.

The durability contract (:mod:`repro.graph.durable`) is a *prefix*
guarantee: whatever crash interrupts a snapshot or WAL write, recovery
must yield either a graph extensionally equal to some durable prefix
of the mutation history, or an attributed full-rebuild verdict —
never a silent partial load.  This module proves it by brute force:

1. build a scripted mutation history (movie KG base, then ``OP_COUNT``
   seeded mutations through the real WAL-attached mutators), recording
   the extensional digest of the graph at *every* epoch;
2. damage the resulting snapshot/WAL pair at every record boundary,
   mid-record, and with a single corrupted byte per record;
3. recover from each damaged copy and check the verdict: a recovered
   graph must digest-match the recorded state at exactly its reported
   epoch, and a rebuild verdict must carry quarantine attribution.

Everything is deterministic — seeded script, no timestamps, no
absolute paths in the report — so two same-seed runs render
byte-identical reports (the CI ``store-torture`` job diffs them).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.dataset.kg import build_movie_kg
from repro.graph.durable import DurableStore
from repro.graph.model import Graph
from repro.graph.store import extensional_digest

#: scripted mutations applied on top of the base snapshot
OP_COUNT = 40

#: props deliberately chosen to stress canonical JSON framing
_GNARLY_PROPS: list[dict[str, Any]] = [
    {"note": "café ☃", "rank": 0.1 + 0.2},
    {"empty": "", "nested": [[1, 2], ["a", ""], []]},
    {"neg": -0.0, "big": 2**53 - 1, "tiny": 5e-324},
    {"mixed": [None, True, False, "end"], "kind": "torture"},
]


class _DigestTee:
    """MutationSink that forwards to the store and records the
    extensional digest of the graph after every single epoch bump
    (cascaded removals included)."""

    def __init__(self, graph: Graph, store: DurableStore,
                 digests: dict[int, str]) -> None:
        self.graph = graph
        self.store = store
        self.digests = digests

    def record(self, op: dict[str, Any]) -> None:
        """Apply one mutation and remember the post-epoch digest."""
        self.store.record(op)
        self.digests[op["epoch"]] = extensional_digest(self.graph)


def scripted_mutations(graph: Graph, rng: random.Random,
                       count: int = OP_COUNT) -> None:
    """Apply ``count`` seeded, always-valid mutations to ``graph``."""
    for step in range(count):
        kind = rng.choice(
            ["add_vertex", "add_vertex", "add_edge", "add_edge",
             "relabel_vertex", "remove_edge", "remove_vertex"])
        vertex_ids = sorted(v.id for v in graph.vertices())
        edge_ids = sorted(e.id for e in graph.edges())
        if kind == "add_vertex":
            graph.add_vertex(
                f"torture-{step}",
                dict(rng.choice(_GNARLY_PROPS), step=step))
        elif kind == "add_edge" and len(vertex_ids) >= 2:
            src, dst = rng.sample(vertex_ids, 2)
            graph.add_edge(src, dst, f"rel-{step}", {"step": step})
        elif kind == "relabel_vertex" and vertex_ids:
            graph.relabel_vertex(rng.choice(vertex_ids),
                                 f"renamed-{step}")
        elif kind == "remove_edge" and edge_ids:
            graph.remove_edge(rng.choice(edge_ids))
        elif kind == "remove_vertex" and vertex_ids:
            graph.remove_vertex(rng.choice(vertex_ids))
        else:
            graph.add_vertex(f"fallback-{step}", {"step": step})


@dataclass
class TortureCase:
    """One damage point and what recovery made of it."""

    kind: str      # e.g. "wal-truncate-boundary", "snapshot-corrupt"
    detail: str    # deterministic locator ("line=4", "offset=123")
    outcome: str   # "prefix" | "rebuild" | "FAIL"
    epoch: int
    replayed: int
    quarantined: int

    def to_json(self) -> dict[str, Any]:
        """JSON-serializable form of this case's verdict."""
        return {
            "kind": self.kind,
            "detail": self.detail,
            "outcome": self.outcome,
            "epoch": self.epoch,
            "replayed": self.replayed,
            "quarantined": self.quarantined,
        }


@dataclass
class TortureReport:
    """The deterministic verdict of one full torture sweep."""

    seed: int
    base_epoch: int = 0
    final_epoch: int = 0
    cases: list[TortureCase] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Whether every torture case recovered correctly."""
        return not self.failures

    def to_json(self) -> dict[str, Any]:
        """JSON-serializable form of the full sweep report."""
        return {
            "seed": self.seed,
            "base_epoch": self.base_epoch,
            "final_epoch": self.final_epoch,
            "cases": [case.to_json() for case in self.cases],
            "failures": list(self.failures),
            "passed": self.passed,
        }

    def render(self) -> str:
        """Byte-stable human-readable summary."""
        by_kind: dict[str, dict[str, int]] = {}
        for case in self.cases:
            tally = by_kind.setdefault(
                case.kind, {"prefix": 0, "rebuild": 0, "FAIL": 0})
            tally[case.outcome] += 1
        lines = [
            f"store torture sweep (seed={self.seed}): "
            f"history epochs {self.base_epoch}..{self.final_epoch}, "
            f"{len(self.cases)} damage cases",
        ]
        for kind in sorted(by_kind):
            tally = by_kind[kind]
            lines.append(
                f"  {kind}: {sum(tally.values())} cases "
                f"(prefix={tally['prefix']} rebuild={tally['rebuild']} "
                f"fail={tally['FAIL']})")
        for failure in self.failures:
            lines.append(f"  FAILURE: {failure}")
        lines.append("verdict: " + ("PASS — every damage point "
                     "recovered to a durable prefix or an attributed "
                     "rebuild" if self.passed else
                     f"FAIL — {len(self.failures)} silent partial "
                     "load(s)"))
        return "\n".join(lines)


def _line_spans(raw: bytes) -> list[tuple[int, int]]:
    """(start, end) byte offsets of each newline-terminated record."""
    spans = []
    start = 0
    while start < len(raw):
        end = raw.index(b"\n", start) + 1
        spans.append((start, end))
        start = end
    return spans


def _damage_cases(
    raw: bytes, prefix: str
) -> list[tuple[str, str, bytes]]:
    """Every (kind, detail, damaged_bytes) case for one file."""
    spans = _line_spans(raw)
    cases: list[tuple[str, str, bytes]] = []
    # truncation at every record boundary (0 = empty file; the
    # full-length boundary is the undamaged file, skipped)
    for index in range(len(spans)):
        offset = spans[index][0]
        cases.append((f"{prefix}-truncate-boundary",
                      f"line={index + 1} offset={offset}",
                      raw[:offset]))
    # truncation mid-record: cut each record at its midpoint
    for index, (start, end) in enumerate(spans):
        cut = start + max(1, (end - start) // 2)
        cases.append((f"{prefix}-truncate-mid",
                      f"line={index + 1} offset={cut}", raw[:cut]))
    # single-byte corruption inside each record's payload
    for index, (start, end) in enumerate(spans):
        pos = start + (end - start) // 2
        original = raw[pos:pos + 1]
        flipped = b"#" if original != b"#" else b"@"
        cases.append((f"{prefix}-corrupt", f"line={index + 1}",
                      raw[:pos] + flipped + raw[pos + 1:]))
    return cases


def run_torture(seed: int, root: str | Path) -> TortureReport:
    """Build one history, damage it everywhere, verify every recovery.

    ``root`` is a scratch directory (caller-owned, typically a
    tempdir); nothing about it leaks into the report.
    """
    root = Path(root)
    report = TortureReport(seed=seed)

    # ----- 1. scripted history through the real durable plumbing
    pristine = root / "pristine"
    graph = build_movie_kg()
    store = DurableStore(pristine)
    manifest = store.snapshot(graph)
    report.base_epoch = int(manifest["epoch"])
    digests: dict[int, str] = {
        report.base_epoch: extensional_digest(graph)}
    graph.attach_mutation_sink(_DigestTee(graph, store, digests))
    scripted_mutations(graph, random.Random(seed))
    graph.detach_mutation_sink()
    store.close()
    report.final_epoch = graph.epoch

    snap_raw = (pristine / DurableStore.SNAPSHOT_NAME).read_bytes()
    wal_raw = (pristine / DurableStore.WAL_NAME).read_bytes()

    # ----- 2./3. damage sweep + verification
    cases = [(kind, detail, damaged, wal_raw)
             for kind, detail, damaged
             in _damage_cases(snap_raw, "snapshot")]
    cases += [(kind, detail, snap_raw, damaged)
              for kind, detail, damaged
              in _damage_cases(wal_raw, "wal")]
    workdir = root / "case"
    for number, (kind, detail, snap, wal) in enumerate(cases):
        casedir = workdir / str(number)
        casedir.mkdir(parents=True)
        (casedir / DurableStore.SNAPSHOT_NAME).write_bytes(snap)
        (casedir / DurableStore.WAL_NAME).write_bytes(wal)
        result = DurableStore(casedir).recover()
        rep = result.report
        if result.graph is not None:
            outcome = "prefix"
            expected = digests.get(rep.epoch)
            if expected is None or \
                    extensional_digest(result.graph) != expected:
                outcome = "FAIL"
                report.failures.append(
                    f"{kind} {detail}: recovered graph at epoch "
                    f"{rep.epoch} does not match any durable prefix")
            elif rep.epoch != result.graph.epoch:
                outcome = "FAIL"
                report.failures.append(
                    f"{kind} {detail}: report epoch {rep.epoch} != "
                    f"graph epoch {result.graph.epoch}")
        else:
            outcome = "rebuild"
            if not rep.quarantined and not rep.notes:
                outcome = "FAIL"
                report.failures.append(
                    f"{kind} {detail}: rebuild verdict with no "
                    "attribution (no quarantine, no notes)")
        report.cases.append(TortureCase(
            kind=kind, detail=detail, outcome=outcome,
            epoch=rep.epoch, replayed=rep.wal_records_replayed,
            quarantined=len(rep.quarantined)))
    return report


__all__ = [
    "OP_COUNT",
    "TortureCase",
    "TortureReport",
    "run_torture",
    "scripted_mutations",
]
