"""Graph traversal primitives: BFS, DFS, k-hop neighborhoods.

Implements Definition 1 of the paper — the *K-th order neighbours* of a
vertex ``t`` are the vertices reachable from ``t`` within ``K`` hops —
treating edges as undirected for reachability, which matches the
paper's Example 3 (both ``Fence -> Man`` and ``Man -> Fence`` directions
count as one hop between the two vertices).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterator

from repro.graph.model import Graph


def bfs_order(graph: Graph, start: int, directed: bool = True) -> list[int]:
    """Vertex ids in BFS order from ``start``.

    With ``directed=False`` edges are traversed both ways.
    """
    graph.vertex(start)  # validate
    seen = {start}
    order = [start]
    frontier = deque([start])
    while frontier:
        current = frontier.popleft()
        for nxt in _adjacent(graph, current, directed):
            if nxt not in seen:
                seen.add(nxt)
                order.append(nxt)
                frontier.append(nxt)
    return order


def dfs_order(graph: Graph, start: int, directed: bool = True) -> list[int]:
    """Vertex ids in DFS (preorder) from ``start``."""
    graph.vertex(start)
    seen: set[int] = set()
    order: list[int] = []
    stack = [start]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        order.append(current)
        # reversed so the first adjacent vertex is visited first
        for nxt in reversed(_adjacent(graph, current, directed)):
            if nxt not in seen:
                stack.append(nxt)
    return order


def k_hop_neighborhood(
    graph: Graph, start: int, k: int, directed: bool = False
) -> set[int]:
    """The set ``S(t, k)``: vertices within ``k`` hops of ``start``.

    Includes ``start`` itself (distance 0), matching the paper's
    Example 3 where ``S("Fence", 1)`` contains both "Fence" and "Man".
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    graph.vertex(start)
    distances = {start: 0}
    frontier = deque([start])
    while frontier:
        current = frontier.popleft()
        depth = distances[current]
        if depth == k:
            continue
        for nxt in _adjacent(graph, current, directed):
            if nxt not in distances:
                distances[nxt] = depth + 1
                frontier.append(nxt)
    return set(distances)


def hop_distances(
    graph: Graph, start: int, directed: bool = False, limit: int | None = None
) -> dict[int, int]:
    """BFS distances from ``start``; ``limit`` caps the search depth."""
    graph.vertex(start)
    distances = {start: 0}
    frontier = deque([start])
    while frontier:
        current = frontier.popleft()
        depth = distances[current]
        if limit is not None and depth == limit:
            continue
        for nxt in _adjacent(graph, current, directed):
            if nxt not in distances:
                distances[nxt] = depth + 1
                frontier.append(nxt)
    return distances


def connected_components(graph: Graph) -> list[set[int]]:
    """Weakly connected components (edges treated as undirected)."""
    seen: set[int] = set()
    components: list[set[int]] = []
    for vertex_id in graph.vertex_ids():
        if vertex_id in seen:
            continue
        component = set(bfs_order(graph, vertex_id, directed=False))
        seen |= component
        components.append(component)
    return components


def iter_paths(
    graph: Graph,
    start: int,
    goal: Callable[[int], bool],
    max_depth: int,
) -> Iterator[list[int]]:
    """Yield simple directed paths from ``start`` to vertices satisfying
    ``goal``, up to ``max_depth`` edges long.

    Used by multi-hop reasoning questions ("friend of a friend").
    """
    graph.vertex(start)
    stack: list[tuple[int, list[int]]] = [(start, [start])]
    while stack:
        current, path = stack.pop()
        if goal(current) and len(path) > 1:
            yield path
        if len(path) > max_depth:
            continue
        for edge in graph.out_edges(current):
            if edge.dst not in path:
                stack.append((edge.dst, path + [edge.dst]))


def _adjacent(graph: Graph, vertex_id: int, directed: bool) -> list[int]:
    """Adjacent vertex ids, deduplicated, insertion-ordered."""
    seen: dict[int, None] = {}
    for edge in graph.out_edges(vertex_id):
        seen.setdefault(edge.dst)
    if not directed:
        for edge in graph.in_edges(vertex_id):
            seen.setdefault(edge.src)
    return list(seen)
