"""Incremental candidate-label index for ``matchVertex`` (Algorithm 3).

The executor's innermost loop matches a query term against every
distinct merged-graph vertex label, so matching cost grows linearly
with the image pool.  This module provides the standard
subgraph-matching acceleration — indexed candidate pruning before
per-candidate verification (gStore-style label filtering, the
candidate-selection stage of TurboISO-family matchers) — specialised
to the exact label test of
:meth:`repro.core.executor.QueryGraphExecutor._labels_match`:

* an **exact** bucket (lowercased label -> labels),
* a **number-normalized** bucket (``noun_singular`` form -> labels),
* a **synonym-cluster** bucket (cluster -> labels), consulted only for
  non-category query words (the executor decides, via
  ``include_synonyms``),
* a **length-bucketed bigram index** that shrinks the
  normalized-Levenshtein fallback to a small candidate set: the
  ``min-len >= 5`` rule plus the length-compatibility bound mean only
  buckets within edit-band length of the query need scanning, and
  inside a bucket the q-gram lemma (strings within edit distance ``d``
  share at least ``max_len - 1 - 2d`` bigrams) selects candidates via
  bigram postings whenever that bound guarantees at least one shared
  bigram.

Every lookup path *verifies* fuzzy candidates with the same
:func:`~repro.nlp.dword.within_distance` call the linear scan used, so
the index-backed matcher returns exactly the label set of the old
``_labels_match`` scan — in the same order (labels carry their graph
insertion position, mirroring :class:`~repro.graph.index.LabelIndex`
iteration order).

The index is maintained **incrementally** by
:class:`~repro.graph.model.Graph` on ``add_vertex`` /
``remove_vertex`` / ``relabel_vertex`` behind the graph's monotone
epoch counter; nothing else may mutate it (lint rule RP007).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.locks import note_read, note_write
from repro.nlp.dword import within_distance
from repro.nlp.morphology import noun_singular
from repro.nlp.semlex import cluster_of

#: the normalized-Levenshtein fallback of ``matchVertex`` only applies
#: when both words have at least this many characters (short labels —
#: "cat"/"car" — must not collide on one edit)
MIN_LD_LENGTH = 5


def label_bigrams(word: str) -> set[str]:
    """The distinct character bigrams of ``word`` (empty for len < 2)."""
    return {word[i:i + 2] for i in range(len(word) - 1)}


def length_compatible(query_len: int, bucket_len: int,
                      threshold: float) -> bool:
    """Whether any string of ``bucket_len`` can fall within the
    normalized-Levenshtein ``threshold`` of a ``query_len`` string.

    The minimal edit distance between strings of those lengths is the
    length difference, so the minimal Yujian-Bo normalized distance is
    ``|a-b| / max(a, b)``; buckets where even that floor reaches the
    threshold can be skipped wholesale.
    """
    gap = abs(query_len - bucket_len)
    if gap == 0:
        return True
    return gap / max(query_len, bucket_len) < threshold


def max_edit_distance(query_len: int, bucket_len: int,
                      threshold: float) -> int:
    """The largest raw edit distance an in-threshold match between
    strings of the two lengths can have.

    ``2d / (a + b + d) < t`` rearranges to ``d < t(a + b) / (2 - t)``;
    starting one above that bound and walking down with the *same*
    float expression :func:`~repro.nlp.dword.within_distance` evaluates
    keeps the result exact under rounding (it can only over-estimate
    transiently, never under-estimate).
    """
    total = query_len + bucket_len
    d = int(threshold * total / (2.0 - threshold)) + 1
    while d > 0 and (2.0 * d) / (total + d) >= threshold:
        d -= 1
    return d


def occurrence_keys(word: str) -> list[tuple[str, int]]:
    """Each character of ``word`` keyed by its occurrence index —
    ``"moo"`` yields ``[("m", 0), ("o", 0), ("o", 1)]``.

    Two words share a key ``(c, k)`` exactly when both contain at
    least ``k + 1`` copies of ``c``, so the number of shared keys *is*
    the character-multiset intersection size.
    """
    seen: dict[str, int] = {}
    keys: list[tuple[str, int]] = []
    for char in word:
        k = seen.get(char, 0)
        seen[char] = k + 1
        keys.append((char, k))
    return keys


class _LengthBucket:
    """All indexed labels of one (lowercased) length, with bigram and
    character-occurrence postings for candidate selection inside the
    bucket."""

    __slots__ = ("labels", "postings", "chars")

    def __init__(self) -> None:
        self.labels: dict[str, None] = {}
        self.postings: dict[str, dict[str, None]] = {}
        self.chars: dict[tuple[str, int], dict[str, None]] = {}

    def add(self, label: str, lowered: str) -> None:
        """Register ``label`` under its bigram and occurrence keys."""
        self.labels[label] = None
        for bigram in sorted(label_bigrams(lowered)):
            self.postings.setdefault(bigram, {})[label] = None
        for key in occurrence_keys(lowered):
            self.chars.setdefault(key, {})[label] = None

    def remove(self, label: str, lowered: str) -> None:
        """Drop ``label`` from every posting list that holds it."""
        del self.labels[label]
        for bigram in sorted(label_bigrams(lowered)):
            bucket = self.postings.get(bigram)
            if bucket is not None and label in bucket:
                del bucket[label]
                if not bucket:
                    del self.postings[bigram]
        for key in occurrence_keys(lowered):
            chars = self.chars[key]
            del chars[label]
            if not chars:
                del self.chars[key]


@dataclass(frozen=True)
class CandidateMatch:
    """The result of one index-backed ``matchVertex`` label lookup."""

    #: matched labels, in graph insertion order (the order the old
    #: linear scan produced)
    labels: tuple[str, ...]
    #: candidate labels the lookup examined (bucket entries fetched
    #: plus Levenshtein verifications) — what ``vertex_match`` charges
    examined: int
    #: distinct labels currently indexed
    total: int

    @property
    def pruned(self) -> int:
        """Labels the index skipped that the linear scan would have
        compared (floored at zero: buckets may overlap)."""
        return max(0, self.total - self.examined)


class VertexCandidateIndex:
    """Label buckets that make ``matchVertex`` sublinear in the number
    of distinct merged-graph labels.

    Mutate only through the :class:`~repro.graph.model.Graph` mutation
    API (``add_vertex`` / ``remove_vertex`` / ``relabel_vertex``),
    which refcounts labels so a label leaves the index exactly when
    its last vertex does — the invariant lint rule RP007 enforces.
    """

    def __init__(self) -> None:
        self._refs: dict[str, int] = {}
        self._order: dict[str, int] = {}
        self._next_position = 0
        self._exact: dict[str, dict[str, None]] = {}
        self._singular: dict[str, dict[str, None]] = {}
        self._cluster: dict[str, dict[str, None]] = {}
        self._by_length: dict[int, _LengthBucket] = {}

    # ------------------------------------------------------------------
    # maintenance (Graph mutation API only — RP007)
    # ------------------------------------------------------------------
    def add_label(self, label: str) -> None:
        """Register one more vertex carrying ``label``."""
        note_write("graph.candidate_index")
        count = self._refs.get(label, 0)
        self._refs[label] = count + 1
        if count:
            return
        self._order[label] = self._next_position
        self._next_position += 1
        lowered = label.lower()
        self._exact.setdefault(lowered, {})[label] = None
        singular = noun_singular(lowered)
        self._singular.setdefault(singular, {})[label] = None
        cluster = cluster_of(lowered)
        if cluster is not None:
            self._cluster.setdefault(cluster[0], {})[label] = None
        bucket = self._by_length.setdefault(len(lowered), _LengthBucket())
        bucket.add(label, lowered)

    def remove_label(self, label: str) -> None:
        """Unregister one vertex carrying ``label``; the label leaves
        every bucket when its last vertex goes."""
        note_write("graph.candidate_index")
        count = self._refs.get(label)
        if count is None:
            raise KeyError(f"label {label!r} is not indexed")
        if count > 1:
            self._refs[label] = count - 1
            return
        del self._refs[label]
        del self._order[label]
        lowered = label.lower()
        self._drop(self._exact, lowered, label)
        self._drop(self._singular, noun_singular(lowered), label)
        cluster = cluster_of(lowered)
        if cluster is not None:
            self._drop(self._cluster, cluster[0], label)
        length = len(lowered)
        bucket = self._by_length[length]
        bucket.remove(label, lowered)
        if not bucket.labels:
            del self._by_length[length]

    @staticmethod
    def _drop(buckets: dict[str, dict[str, None]], key: str,
              label: str) -> None:
        bucket = buckets[key]
        del bucket[label]
        if not bucket:
            del buckets[key]

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def match(self, query: str, ld_threshold: float,
              include_synonyms: bool = True) -> CandidateMatch:
        """All indexed labels the executor's label test accepts for
        ``query``, plus how many candidates were examined to find them.

        ``include_synonyms`` mirrors the executor's category guard: a
        category query word ("girl") matches exactly and must not
        reach its synonym cluster.
        """
        note_read("graph.candidate_index")
        lowered = query.lower()
        matched: dict[str, None] = {}
        examined = 0
        for label in self._exact.get(lowered, ()):
            examined += 1
            matched[label] = None
        for label in self._singular.get(noun_singular(lowered), ()):
            examined += 1
            matched.setdefault(label, None)
        if include_synonyms:
            cluster = cluster_of(lowered)
            if cluster is not None:
                for label in self._cluster.get(cluster[0], ()):
                    examined += 1
                    matched.setdefault(label, None)
        examined += self._match_levenshtein(lowered, ld_threshold, matched)
        ordered = sorted(matched, key=self._order.__getitem__)
        return CandidateMatch(labels=tuple(ordered), examined=examined,
                              total=len(self._refs))

    def _match_levenshtein(self, lowered: str, threshold: float,
                           matched: dict[str, None]) -> int:
        """The pruned normalized-Levenshtein fallback; returns the
        number of candidates examined."""
        query_len = len(lowered)
        if query_len < MIN_LD_LENGTH:
            return 0
        query_grams = sorted(label_bigrams(lowered))
        query_chars = occurrence_keys(lowered)
        examined = 0
        for length in sorted(self._by_length):
            if length < MIN_LD_LENGTH:
                continue
            if not length_compatible(query_len, length, threshold):
                continue
            bucket = self._by_length[length]
            candidates = self._bucket_candidates(
                bucket, query_len, length, threshold,
                query_grams, query_chars,
            )
            for label in candidates:
                examined += 1
                if label in matched:
                    continue
                if within_distance(lowered, label.lower(), threshold):
                    matched[label] = None
        return examined

    @staticmethod
    def _bucket_candidates(
        bucket: _LengthBucket,
        query_len: int,
        length: int,
        threshold: float,
        query_grams: list[str],
        query_chars: list[tuple[str, int]],
    ) -> dict[str, None]:
        """Candidates from one length bucket, via two sound count
        filters on the maximal in-threshold edit distance ``d``:

        * **character occurrences** (the first-character idea taken to
          every position): each edit changes at most one character
          occurrence, so a true match shares at least
          ``max_len - d`` occurrence keys with the query;
        * **bigrams** (the q-gram lemma): each edit destroys at most
          two bigram occurrences, so when ``max_len - 1 - 2d >= 1`` a
          true match must share at least one bigram.

        Labels surviving both applicable filters are returned; when
        neither filter applies, the whole (single-length) bucket is
        scanned exhaustively.
        """
        d_max = max_edit_distance(query_len, length, threshold)
        needed = max(query_len, length) - d_max
        if needed >= 1:
            shared: dict[str, int] = {}
            for key in query_chars:
                for label in bucket.chars.get(key, ()):
                    shared[label] = shared.get(label, 0) + 1
            base: dict[str, None] = {
                label: None for label, count in shared.items()
                if count >= needed
            }
        else:
            base = bucket.labels
        if max(query_len, length) - 1 - 2 * d_max < 1:
            return base
        candidates: dict[str, None] = {}
        for bigram in query_grams:
            for label in bucket.postings.get(bigram, ()):
                if label in base:
                    candidates.setdefault(label, None)
        return candidates

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Distinct labels currently indexed."""
        return len(self._refs)

    def __contains__(self, label: str) -> bool:
        """Whether ``label`` is currently indexed."""
        return label in self._refs

    def count(self, label: str) -> int:
        """Number of vertices currently carrying ``label``."""
        return self._refs.get(label, 0)
