"""Graph database substrate: directed labeled multigraphs with indexes,
traversal, induced subgraph views, persistence, and pattern matching.
"""

from repro.graph.candidates import CandidateMatch, VertexCandidateIndex
from repro.graph.model import Edge, Graph, Vertex
from repro.graph.query import (
    RelationPair,
    relations_between,
    relations_from,
    relations_to,
    vertices_with_label,
)
from repro.graph.store import GraphStats, graph_stats, load_graph, save_graph
from repro.graph.subgraph import (
    SubgraphView,
    induced_subgraph_view,
    k_hop_subgraph,
    materialize,
)
from repro.graph.traverse import (
    bfs_order,
    connected_components,
    dfs_order,
    hop_distances,
    iter_paths,
    k_hop_neighborhood,
)

__all__ = [
    "CandidateMatch",
    "Edge",
    "Graph",
    "GraphStats",
    "RelationPair",
    "SubgraphView",
    "Vertex",
    "VertexCandidateIndex",
    "bfs_order",
    "connected_components",
    "dfs_order",
    "graph_stats",
    "hop_distances",
    "induced_subgraph_view",
    "iter_paths",
    "k_hop_neighborhood",
    "k_hop_subgraph",
    "load_graph",
    "materialize",
    "relations_between",
    "relations_from",
    "relations_to",
    "save_graph",
    "vertices_with_label",
]
