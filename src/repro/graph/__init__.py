"""Graph database substrate: directed labeled multigraphs with indexes,
traversal, induced subgraph views, persistence, and pattern matching.
"""

from repro.graph.candidates import CandidateMatch, VertexCandidateIndex
from repro.graph.durable import (
    DurableStore,
    RecoveryReport,
    RecoveryResult,
    WriteAheadLog,
)
from repro.graph.model import Edge, Graph, Vertex
from repro.graph.query import (
    RelationPair,
    relations_between,
    relations_from,
    relations_to,
    vertices_with_label,
)
from repro.graph.store import (
    GraphStats,
    LoadedSnapshot,
    extensional_digest,
    graph_stats,
    graphs_equal,
    load_graph,
    read_snapshot,
    save_graph,
    write_snapshot,
)
from repro.graph.subgraph import (
    SubgraphView,
    induced_subgraph_view,
    k_hop_subgraph,
    materialize,
)
from repro.graph.traverse import (
    bfs_order,
    connected_components,
    dfs_order,
    hop_distances,
    iter_paths,
    k_hop_neighborhood,
)

__all__ = [
    "CandidateMatch",
    "DurableStore",
    "Edge",
    "Graph",
    "GraphStats",
    "LoadedSnapshot",
    "RecoveryReport",
    "RecoveryResult",
    "RelationPair",
    "SubgraphView",
    "Vertex",
    "VertexCandidateIndex",
    "WriteAheadLog",
    "bfs_order",
    "connected_components",
    "dfs_order",
    "extensional_digest",
    "graph_stats",
    "graphs_equal",
    "hop_distances",
    "induced_subgraph_view",
    "iter_paths",
    "k_hop_neighborhood",
    "k_hop_subgraph",
    "load_graph",
    "materialize",
    "read_snapshot",
    "relations_between",
    "relations_from",
    "relations_to",
    "save_graph",
    "vertices_with_label",
    "write_snapshot",
]
