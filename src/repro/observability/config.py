"""Configuration of the observability layer.

``SVQAConfig.observability`` takes an :class:`ObservabilityConfig` (or
``None`` — the default — which keeps the whole layer off: no tracer is
constructed, no span context managers open, and the off path is
bit-identical to a build without the layer, the same discipline as
``SVQAConfig.resilience``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ObservabilityConfig:
    """Knobs of the observability layer.

    ``trace`` enables span recording (the metrics registry behind
    :class:`~repro.core.stats.ExecutorStats` is always live — it *is*
    the stats implementation).  ``max_spans_per_trace`` is a safety
    valve against unbounded buffers on pathological inputs; past the
    cap, further spans in that trace are dropped silently.
    """

    trace: bool = True
    max_spans_per_trace: int = 100_000
