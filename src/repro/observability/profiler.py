"""Profiling reports built from spans and metrics.

``repro profile`` runs the MVQA suite with tracing enabled and uses
this module to turn the raw spans into a **per-stage simulated-time
breakdown** (how many sim-seconds each pipeline stage consumed, split
into total and *self* time so nested stages don't double-count) and a
``BENCH_baseline.json`` artifact that future PRs diff their hot-path
claims against.

Everything here is a pure function of the recorded spans/metrics, so
the outputs inherit the tracer's determinism: two same-seed runs
produce byte-identical breakdowns and baselines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.observability.spans import Span

#: schema version stamped into every baseline artifact, bumped on any
#: backwards-incompatible change to the JSON layout.  v2 added
#: ``clock_counts`` (per-operation SimClock charge counts — the
#: ``vertex_match`` entry is the ceiling the CI regression check
#: enforces) and changed the charge model ``vertex_match`` counts
#: under (per candidate *examined* by the candidate index, not per
#: distinct merged-graph label).
BASELINE_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class StageRow:
    """Aggregated cost of one span name across a run."""

    name: str
    count: int           # spans recorded under this name
    total: float         # summed span durations (includes children)
    self_time: float     # summed durations minus child durations

    @property
    def mean(self) -> float:
        """Mean span duration in simulated seconds."""
        return self.total / self.count if self.count else 0.0


def stage_breakdown(spans: list[Span]) -> list[StageRow]:
    """Aggregate spans into per-stage rows, sorted by self time.

    *Self* time is a span's duration minus the durations of its
    direct children, so the per-stage column sums to total traced
    time instead of double-counting nested stages (``query_graph``
    contains ``parse`` and ``spoc``; ``executor.execute`` contains
    the cache and match spans).
    """
    child_time: dict[tuple[str, int], float] = {}
    for span in spans:
        if span.parent_id is not None:
            key = (span.trace_id, span.parent_id)
            child_time[key] = child_time.get(key, 0.0) + span.duration

    totals: dict[str, float] = {}
    selfs: dict[str, float] = {}
    counts: dict[str, int] = {}
    for span in spans:
        counts[span.name] = counts.get(span.name, 0) + 1
        totals[span.name] = totals.get(span.name, 0.0) + span.duration
        own = span.duration - child_time.get(
            (span.trace_id, span.span_id), 0.0
        )
        selfs[span.name] = selfs.get(span.name, 0.0) + own

    rows = [
        StageRow(name=name, count=counts[name],
                 total=round(totals[name], 9),
                 self_time=round(selfs[name], 9))
        for name in counts
    ]
    return sorted(rows, key=lambda r: (-r.self_time, r.name))


def build_baseline(
    suite: str,
    config: dict[str, Any],
    accuracy: dict[str, float],
    latency: dict[str, float],
    stages: list[StageRow],
    metrics: dict[str, Any],
    clock_counts: dict[str, int] | None = None,
) -> dict[str, Any]:
    """Assemble the ``BENCH_baseline.json`` payload (schema v2).

    The artifact deliberately carries **no wall-clock numbers** — it
    must be byte-reproducible on any machine — and no timestamps (the
    repo's determinism rules forbid reading the system clock; git
    history dates the artifact).  ``clock_counts`` records how many
    times each SimClock operation was charged; the checked-in counts
    double as regression ceilings (see
    :func:`charge_ceiling_violations`).
    """
    return {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "suite": suite,
        "config": dict(sorted(config.items())),
        "accuracy": {k: round(v, 6) for k, v in sorted(accuracy.items())},
        "latency_simulated_seconds": {
            k: round(v, 6) for k, v in sorted(latency.items())
        },
        "stages": [
            {"name": row.name, "count": row.count,
             "total": row.total, "self": row.self_time}
            for row in stages
        ],
        "metrics": metrics,
        "clock_counts": {
            k: int(v) for k, v in sorted((clock_counts or {}).items())
        },
    }


def charge_ceiling_violations(
    baseline: dict[str, Any],
    counts: dict[str, int],
    operations: tuple[str, ...] = (
        "vertex_match", "edge_scan", "embed_score",
    ),
) -> list[str]:
    """Compare a run's SimClock charge counts against a baseline's
    recorded counts; returns one message per operation that exceeds
    its recorded ceiling (empty means no regression).

    The checked-in baseline counts are the contract: the candidate
    index must keep ``vertex_match`` at or below the number of
    candidates it examined when the baseline was recorded, the
    multi-query planner must keep ``edge_scan`` at or below the
    post-plan-sharing mass, and the retrieval tier must keep
    ``embed_score`` at or below the post-memo fresh-score mass — an
    accidental return to linear scanning (or to re-embedding every
    candidate pair) fails CI instead of silently re-inflating
    simulated latency.
    """
    recorded = baseline.get("clock_counts", {})
    violations: list[str] = []
    for operation in operations:
        ceiling = recorded.get(operation)
        if ceiling is None:
            violations.append(
                f"{operation}: baseline has no recorded ceiling "
                "(regenerate BENCH_baseline.json with schema >= 2)"
            )
            continue
        current = counts.get(operation, 0)
        if current > ceiling:
            violations.append(
                f"{operation}: {current} charges exceed the baseline "
                f"ceiling of {ceiling}"
            )
    return violations


def dump_deterministic_json(payload: dict[str, Any]) -> str:
    """Serialize with sorted keys and a trailing newline.

    The one serialization used for every artifact the CI observability
    job byte-diffs (metric snapshots, baselines).
    """
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"
