"""Metrics registry: named counters, gauges, and histograms.

The registry is the fleet-level half of the observability layer (the
span tracer in :mod:`repro.observability.spans` is the per-question
half).  Instrumented code registers *families* — a metric name plus a
fixed label schema — and records into labeled *series*:

>>> registry = MetricsRegistry()
>>> requests = registry.counter(
...     "svqa_cache_requests_total",
...     "Scope/path store lookups by outcome.",
...     labels=("store", "outcome"),
... )
>>> requests.inc(store="scope", outcome="hit")
>>> requests.value(store="scope", outcome="hit")
1.0

Two export formats are supported, both byte-deterministic (families
sorted by name, series by label values, fixed float formatting):

* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` / sample lines);
* :meth:`MetricsRegistry.to_json` — a nested snapshot dict suitable
  for ``json.dumps(..., sort_keys=True)``; two same-seed runs must
  produce byte-identical snapshots (the CI observability job diffs
  them).

Histograms use **fixed** bucket bounds chosen at registration time —
never computed from the data — so bucket counts are comparable across
runs and commits.  All families and series are thread-safe: one
registry is shared by every worker thread of a batch run.
"""

from __future__ import annotations

import re
import threading
from typing import Any

from repro.locks import note_write, wrap_lock

#: fixed simulated-seconds buckets for per-query latency histograms
#: (chosen to straddle the MVQA per-query range of ~0.05-1 sim-s)
LATENCY_BUCKETS: tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: fixed buckets for small structural counts (vertices per query, ...)
COUNT_BUCKETS: tuple[float, ...] = (1, 2, 3, 4, 6, 8, 12, 16)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_PAIR_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def _format_value(value: float) -> str:
    """Render a sample value deterministically (integers stay integral)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    """Escape a label value per the Prometheus text format."""
    return value.replace("\\", "\\\\").replace('"', '\\"') \
                .replace("\n", "\\n")


class MetricFamily:
    """Base class: one named metric with a fixed label schema.

    Subclasses hold the per-series state; every mutation and read runs
    under the family's lock so one family can be shared by a worker
    pool.
    """

    metric_type = "untyped"

    def __init__(self, name: str, help_text: str,
                 labels: tuple[str, ...] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name: {label!r}")
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(labels)
        self._lock = wrap_lock(threading.Lock(), f"metrics.{name}")

    def _series_key(self, labels: dict[str, str]) -> tuple[str, ...]:
        """Validate ``labels`` against the schema and key the series."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def _label_text(self, key: tuple[str, ...],
                    extra: str | None = None) -> str:
        """Render one series' ``{name="value",...}`` suffix."""
        parts = [
            f'{name}="{_escape_label(value)}"'
            for name, value in zip(self.label_names, key, strict=True)
        ]
        if extra is not None:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    def expose(self) -> list[str]:
        """The family's lines in the Prometheus text format."""
        raise NotImplementedError

    def snapshot(self) -> dict[str, Any]:
        """The family's JSON-ready snapshot dict."""
        raise NotImplementedError


class Counter(MetricFamily):
    """A monotonically increasing sum per label combination."""

    metric_type = "counter"

    def __init__(self, name: str, help_text: str,
                 labels: tuple[str, ...] = ()) -> None:
        super().__init__(name, help_text, labels)
        self._series: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (must be >= 0) to the labeled series."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name} cannot decrease (got {amount})"
            )
        key = self._series_key(labels)
        with self._lock:
            note_write(f"metrics.{self.name}", key)
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current value of the labeled series (0.0 if never touched)."""
        key = self._series_key(labels)
        with self._lock:
            return self._series.get(key, 0.0)

    def total(self) -> float:
        """Sum over every series of the family."""
        with self._lock:
            return sum(self._series.values())

    def series_items(self) -> list[tuple[tuple[str, ...], float]]:
        """All ``(label_values, value)`` pairs, sorted for determinism."""
        with self._lock:
            return sorted(self._series.items())

    def reset(self) -> None:
        """Drop every series (test/rollover support)."""
        with self._lock:
            self._series.clear()

    def expose(self) -> list[str]:
        """Prometheus lines: HELP/TYPE header plus one line per series."""
        lines = [f"# HELP {self.name} {self.help_text}",
                 f"# TYPE {self.name} {self.metric_type}"]
        for key, value in self.series_items():
            lines.append(f"{self.name}{self._label_text(key)} "
                         f"{_format_value(value)}")
        return lines

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready dict: type, help, and the sorted series values."""
        return {
            "type": self.metric_type,
            "help": self.help_text,
            "series": [
                {"labels": dict(zip(self.label_names, key, strict=True)),
                 "value": value}
                for key, value in self.series_items()
            ],
        }


class Gauge(Counter):
    """A value that can go up and down (breaker state, hit ratio)."""

    metric_type = "gauge"

    def set(self, value: float, **labels: str) -> None:
        """Overwrite the labeled series with ``value``."""
        key = self._series_key(labels)
        with self._lock:
            note_write(f"metrics.{self.name}", key)
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (may be negative) to the labeled series."""
        key = self._series_key(labels)
        with self._lock:
            note_write(f"metrics.{self.name}", key)
            self._series[key] = self._series.get(key, 0.0) + amount


class _HistogramSeries:
    """One labeled histogram series: bucket counts + sum + count."""

    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, bucket_count: int) -> None:
        self.bucket_counts = [0] * bucket_count
        self.total = 0.0
        self.count = 0


class Histogram(MetricFamily):
    """Cumulative-bucket histogram with fixed, registration-time bounds."""

    metric_type = "histogram"

    def __init__(self, name: str, help_text: str,
                 buckets: tuple[float, ...],
                 labels: tuple[str, ...] = ()) -> None:
        super().__init__(name, help_text, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"{name}: buckets must be a sorted, non-empty, "
                f"duplicate-free sequence, got {buckets}"
            )
        self.buckets = bounds
        self._series: dict[tuple[str, ...], _HistogramSeries] = {}

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation into the labeled series."""
        key = self._series_key(labels)
        with self._lock:
            note_write(f"metrics.{self.name}", key)
            series = self._series.get(key)
            if series is None:
                series = _HistogramSeries(len(self.buckets))
                self._series[key] = series
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series.bucket_counts[i] += 1
            series.total += value
            series.count += 1

    def series_items(self) -> list[tuple[tuple[str, ...],
                                         tuple[list[int], float, int]]]:
        """Sorted ``(label_values, (buckets, sum, count))`` snapshots."""
        with self._lock:
            return sorted(
                (key, (list(s.bucket_counts), s.total, s.count))
                for key, s in self._series.items()
            )

    def reset(self) -> None:
        """Drop every series (test/rollover support)."""
        with self._lock:
            self._series.clear()

    def expose(self) -> list[str]:
        """Prometheus lines: cumulative buckets plus _sum/_count."""
        lines = [f"# HELP {self.name} {self.help_text}",
                 f"# TYPE {self.name} {self.metric_type}"]
        for key, (counts, total, count) in self.series_items():
            # bucket_counts are already cumulative (observe() increments
            # every bucket whose bound covers the value)
            for bound, bucket in zip(self.buckets, counts, strict=True):
                label_text = self._label_text(
                    key, extra=f'le="{_format_value(bound)}"'
                )
                lines.append(f"{self.name}_bucket{label_text} {bucket}")
            label_text = self._label_text(key, extra='le="+Inf"')
            lines.append(f"{self.name}_bucket{label_text} {count}")
            suffix = self._label_text(key)
            lines.append(f"{self.name}_sum{suffix} "
                         f"{_format_value(round(total, 9))}")
            lines.append(f"{self.name}_count{suffix} {count}")
        return lines

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready dict with per-series buckets, sum, and count."""
        return {
            "type": self.metric_type,
            "help": self.help_text,
            "buckets": list(self.buckets),
            "series": [
                {"labels": dict(zip(self.label_names, key, strict=True)),
                 "bucket_counts": counts,
                 "sum": round(total, 9),
                 "count": count}
                for key, (counts, total, count) in self.series_items()
            ],
        }


def _parse_label_text(text: str, line: str) -> dict[str, str]:
    """Parse one sample line's ``name="value",...`` label body."""
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(text):
        match = _LABEL_PAIR_RE.match(text, pos)
        if match is None:
            raise ValueError(f"malformed label set in line: {line!r}")
        raw = match.group("value")
        labels[match.group("name")] = (
            raw.replace("\\n", "\n").replace('\\"', '"')
               .replace("\\\\", "\\")
        )
        pos = match.end()
        if pos < len(text):
            if text[pos] != ",":
                raise ValueError(
                    f"malformed label set in line: {line!r}"
                )
            pos += 1
    return labels


def parse_prometheus(text: str) -> dict[str, dict[str, Any]]:
    """Parse the Prometheus text exposition format back into data.

    The validating inverse of :meth:`MetricsRegistry.to_prometheus`,
    used by the serving smoke test to assert that ``GET /metrics``
    actually speaks the exposition format.  Returns a dict keyed by
    family name with ``{"type", "help", "samples"}`` entries, where
    ``samples`` is a list of ``(sample_name, labels, value)`` tuples
    (histogram ``_bucket``/``_sum``/``_count`` samples attach to
    their declaring family).  Raises :class:`ValueError` on any line
    that is neither a comment, blank, nor a well-formed sample.
    """
    families: dict[str, dict[str, Any]] = {}

    def family(name: str) -> dict[str, Any]:
        return families.setdefault(
            name, {"type": None, "help": None, "samples": []}
        )

    current: str | None = None
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not _NAME_RE.match(parts[2]):
                raise ValueError(f"malformed comment line: {line!r}")
            key = "help" if parts[1] == "HELP" else "type"
            family(parts[2])[key] = parts[3]
            current = parts[2]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed sample line: {line!r}")
        name = match.group("name")
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(
                f"malformed sample value in line: {line!r}"
            ) from exc
        labels = _parse_label_text(match.group("labels") or "", line)
        owner = current if current is not None and (
            name == current or name.startswith(current + "_")
        ) else name
        family(owner)["samples"].append((name, labels, value))
    return families


class MetricsRegistry:
    """A named collection of metric families.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking
    for an existing name returns the existing family after checking
    that the type and label schema match (a mismatch raises
    ``ValueError`` — two subsystems silently sharing a name with
    different meanings is exactly the bug a registry exists to catch).
    """

    def __init__(self) -> None:
        self._lock = wrap_lock(threading.Lock(), "metrics.registry")
        self._families: dict[str, MetricFamily] = {}

    def _register(self, family_type: type, name: str, help_text: str,
                  labels: tuple[str, ...],
                  **kwargs: Any) -> MetricFamily:
        """Get-or-create a family, enforcing schema consistency.

        Family construction is virtual dispatch the registry lock
        must not pin (RP010), so the miss path constructs outside
        the critical section and inserts with a re-check: a racing
        registrant may win, in which case the loser's instance is
        discarded before anyone can observe it.
        """
        with self._lock:
            existing = self._families.get(name)
        if existing is None:
            candidate = family_type(name, help_text,
                                    labels=tuple(labels), **kwargs)
            with self._lock:
                existing = self._families.setdefault(name, candidate)
        if type(existing) is not family_type:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{existing.metric_type}"
            )
        if existing.label_names != tuple(labels):
            raise ValueError(
                f"metric {name!r} already registered with "
                f"labels {existing.label_names}"
            )
        return existing

    def counter(self, name: str, help_text: str,
                labels: tuple[str, ...] = ()) -> Counter:
        """Get-or-create a :class:`Counter` family."""
        family = self._register(Counter, name, help_text, labels)
        assert isinstance(family, Counter)
        return family

    def gauge(self, name: str, help_text: str,
              labels: tuple[str, ...] = ()) -> Gauge:
        """Get-or-create a :class:`Gauge` family."""
        family = self._register(Gauge, name, help_text, labels)
        assert isinstance(family, Gauge)
        return family

    def histogram(self, name: str, help_text: str,
                  buckets: tuple[float, ...] = LATENCY_BUCKETS,
                  labels: tuple[str, ...] = ()) -> Histogram:
        """Get-or-create a :class:`Histogram` family with fixed buckets."""
        family = self._register(Histogram, name, help_text, labels,
                                buckets=buckets)
        assert isinstance(family, Histogram)
        return family

    def families(self) -> list[MetricFamily]:
        """Every registered family, sorted by name."""
        with self._lock:
            return [self._families[name]
                    for name in sorted(self._families)]

    def reset(self) -> None:
        """Zero every series of every family (schemas survive)."""
        for family in self.families():
            reset = getattr(family, "reset", None)
            if reset is not None:
                reset()

    def to_prometheus(self) -> str:
        """The whole registry in the Prometheus text exposition format."""
        lines: list[str] = []
        for family in self.families():
            lines.extend(family.expose())
        return "\n".join(lines) + "\n" if lines else ""

    def to_json(self) -> dict[str, Any]:
        """A deterministic JSON-ready snapshot of every family."""
        return {family.name: family.snapshot()
                for family in self.families()}
