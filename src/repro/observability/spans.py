"""Deterministic, SimClock-stamped span tracing.

A *span* is one named stage of work (``parse``, ``cache.scope``,
``executor.match``, ...) with a start offset and duration in
**simulated seconds**, a parent span, and a flat attribute dict.
Spans belong to a *trace* — one question (``q0001``) or the offline
``build`` phase.

Determinism rules (also documented in DESIGN.md §5e):

* spans are stamped from the :class:`~repro.simtime.SimClock` of the
  executing thread, never from wall-clock, so two same-seed runs
  produce byte-identical exports;
* start offsets are **relative to the enclosing trace segment's
  start** on that segment's clock, which makes them comparable across
  worker counts (every clock shard starts a query at a different
  absolute elapsed value);
* each trace segment runs entirely in one thread and records into a
  private buffer (no locks on the hot path); buffers are merged —
  under the tracer's lock — only when the segment closes, which is
  the "per-shard buffers merged at join" contract the concurrent
  batch engine relies on;
* the multiset of ``(name, attributes)`` pairs across a whole run is
  worker-count invariant; the *assignment* of a shared-cache miss to
  a particular question is not (under concurrency, whichever query
  reaches the key first becomes the single-flight leader), which is
  why :func:`span_multiset` drops timing and trace identity.

The tracer never charges the clock — it only reads it — so enabling
tracing cannot perturb answers, latencies, or statistics.
"""

from __future__ import annotations

import json
import threading
from collections import Counter as _Counter
from collections.abc import Iterator
from contextlib import AbstractContextManager, contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any

from repro.locks import note_write, wrap_lock
from repro.simtime import SimClock

#: the closed span taxonomy (see DESIGN.md §5e); instrumentation may
#: only open spans with these names, so exports stay diffable across
#: commits
SPAN_NAMES: frozenset[str] = frozenset({
    "question",          # root: one answered question
    "build",             # root: the offline build phase
    "parse",             # dependency parse of the question text
    "spoc",              # SPOC extraction for one clause
    "query_graph",       # Algorithm 2 end to end
    "aggregate.merge",   # attaching one scene graph to G_mg
    "cache.scope",       # one matchVertex scope-store access
    "cache.path",        # one getRelationpairs path-store access
    "executor.match",    # resolving one query-graph slot
    "executor.execute",  # Algorithm 3 over one query graph
    "planner.share",     # shared sub-plan execution for one batch
    "resilience.retry",  # one backoff before a retry attempt
    "store.snapshot",    # writing one durable-store snapshot
    "store.wal_append",  # appending one mutation to the WAL
    "store.recover",     # snapshot load + WAL replay at warm start
})


@dataclass
class Span:
    """One recorded stage of work inside a trace."""

    name: str
    trace_id: str
    span_id: int                # position in the merged trace (birth order)
    parent_id: int | None       # enclosing span's ``span_id``, if any
    start: float                # sim-seconds from the trace segment start
    duration: float             # sim-seconds spent inside the span
    attributes: dict[str, Any] = field(default_factory=dict)

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute on the live span."""
        self.attributes[key] = value

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dict with a fixed key set."""
        return {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": round(self.start, 9),
            "duration": round(self.duration, 9),
            "attributes": dict(sorted(self.attributes.items())),
        }


class _Segment:
    """One thread's span buffer for one ``(trace_id, seq)`` segment."""

    __slots__ = ("trace_id", "seq", "clock", "base", "spans", "stack")

    def __init__(self, trace_id: str, seq: int,
                 clock: SimClock | None) -> None:
        self.trace_id = trace_id
        self.seq = seq
        self.clock = clock
        self.base = clock.elapsed if clock is not None else 0.0
        self.spans: list[Span] = []
        self.stack: list[int] = []

    def now(self) -> float:
        """Sim-seconds since this segment opened."""
        if self.clock is None:
            return 0.0
        return self.clock.elapsed - self.base


class Tracer:
    """Collects spans from any number of threads, deterministically.

    Usage::

        tracer = Tracer()
        with tracer.trace("q0001", clock):
            with tracer.span("query_graph") as sp:
                ...
                sp.set("clauses", 2)

    ``span`` outside an active ``trace`` records nothing and yields
    ``None`` — library code can therefore instrument unconditionally
    while only traced entry points produce data.  A trace id may be
    entered more than once (the batch engine parses a question on the
    main thread and executes it on a worker); the segments are
    ordered by entry sequence and concatenated at export.
    """

    def __init__(self, max_spans_per_trace: int = 100_000) -> None:
        if max_spans_per_trace < 1:
            raise ValueError("max_spans_per_trace must be >= 1, got "
                             f"{max_spans_per_trace}")
        self.max_spans_per_trace = max_spans_per_trace
        self._lock = wrap_lock(threading.Lock(), "tracer")
        self._segments: list[_Segment] = []
        self._seq_by_trace: dict[str, int] = {}
        self._local = threading.local()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    @contextmanager
    def trace(self, trace_id: str,
              clock: SimClock | None = None) -> Iterator[None]:
        """Open a trace segment on the calling thread.

        Nested ``trace`` calls on the same thread are pass-throughs:
        the outermost segment keeps collecting (the facade opens the
        trace; inner layers only open spans).
        """
        if getattr(self._local, "segment", None) is not None:
            yield
            return
        with self._lock:
            note_write("tracer.segments", trace_id)
            seq = self._seq_by_trace.get(trace_id, 0)
            self._seq_by_trace[trace_id] = seq + 1
        segment = _Segment(trace_id, seq, clock)
        self._local.segment = segment
        try:
            yield
        finally:
            self._local.segment = None
            with self._lock:
                note_write("tracer.segments", segment.trace_id)
                self._segments.append(segment)

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span | None]:
        """Record one span under the thread's active trace (or no-op)."""
        if name not in SPAN_NAMES:
            raise ValueError(f"unknown span name: {name!r} "
                             "(see SPAN_NAMES / DESIGN.md §5e)")
        segment: _Segment | None = getattr(self._local, "segment", None)
        if segment is None or \
                len(segment.spans) >= self.max_spans_per_trace:
            yield None
            return
        start = segment.now()
        span = Span(
            name=name,
            trace_id=segment.trace_id,
            span_id=len(segment.spans),
            parent_id=segment.stack[-1] if segment.stack else None,
            start=start,
            duration=0.0,
            attributes=dict(attributes),
        )
        segment.spans.append(span)
        segment.stack.append(span.span_id)
        try:
            yield span
        finally:
            segment.stack.pop()
            span.duration = segment.now() - start

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def finished_spans(self) -> list[Span]:
        """Every span from every closed segment, canonically ordered.

        Segments are sorted by ``(trace_id, entry_seq)`` and each
        trace's segments are concatenated with span/parent ids
        rebased, so the output is independent of which worker thread
        ran which query and of segment *close* order.
        """
        with self._lock:
            segments = sorted(self._segments,
                              key=lambda s: (s.trace_id, s.seq))
        result: list[Span] = []
        offsets: dict[str, int] = {}
        for segment in segments:
            offset = offsets.get(segment.trace_id, 0)
            for span in segment.spans:
                result.append(Span(
                    name=span.name,
                    trace_id=span.trace_id,
                    span_id=span.span_id + offset,
                    parent_id=None if span.parent_id is None
                    else span.parent_id + offset,
                    start=span.start,
                    duration=span.duration,
                    attributes=dict(span.attributes),
                ))
            offsets[segment.trace_id] = offset + len(segment.spans)
        return result

    def to_jsonl(self) -> str:
        """One JSON object per span, canonically ordered and keyed."""
        lines = [
            json.dumps(span.to_dict(), sort_keys=True)
            for span in self.finished_spans()
        ]
        return "\n".join(lines) + "\n" if lines else ""


#: shared no-op context for the tracer-off fast path
_NULL_CONTEXT: AbstractContextManager[None] = nullcontext()


def maybe_trace(
    tracer: Tracer | None, trace_id: str, clock: SimClock | None
) -> AbstractContextManager[None]:
    """``tracer.trace(...)`` when tracing is on, else a no-op context.

    The instrumentation sites call this unconditionally; with
    ``SVQAConfig.observability`` unset the tracer is ``None`` and the
    shared null context keeps the off path free of observable effects.
    """
    if tracer is None:
        return _NULL_CONTEXT
    return tracer.trace(trace_id, clock)


def maybe_span(
    tracer: Tracer | None, name: str, **attributes: Any
) -> AbstractContextManager[Span | None]:
    """``tracer.span(...)`` when tracing is on, else a no-op context.

    Yields the live :class:`Span` (so call sites can ``set`` outcome
    attributes like cache hit/miss) or ``None`` on the off path.
    """
    if tracer is None:
        return _NULL_CONTEXT
    return tracer.span(name, **attributes)


def span_multiset(spans: list[Span]) -> _Counter:
    """The worker-count-invariant view of a run's spans.

    Counts ``(name, sorted attribute items)`` pairs, dropping timing
    and trace assignment — the two properties that legitimately move
    between lanes under concurrency (see the module docstring).
    """
    return _Counter(
        (span.name,
         tuple(sorted((k, repr(v))
                      for k, v in span.attributes.items())))
        for span in spans
    )


def render_trace(spans: list[Span], trace_id: str) -> str:
    """Pretty-print one trace's span tree (the ``repro trace`` view)."""
    selected = [s for s in spans if s.trace_id == trace_id]
    if not selected:
        return f"(no spans recorded for trace {trace_id!r})"
    children: dict[int | None, list[Span]] = {}
    for span in selected:
        children.setdefault(span.parent_id, []).append(span)

    lines: list[str] = []

    def walk(parent: int | None, depth: int) -> None:
        for span in children.get(parent, ()):
            attrs = ", ".join(
                f"{k}={v!r}" for k, v in sorted(span.attributes.items())
            )
            suffix = f"  [{attrs}]" if attrs else ""
            lines.append(
                f"{'  ' * depth}{span.name}  "
                f"{span.duration * 1000:.3f} sim-ms{suffix}"
            )
            walk(span.span_id, depth + 1)

    walk(None, 0)
    return "\n".join(lines)
