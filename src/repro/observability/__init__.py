"""Observability: span tracing, metrics, and profiling reports.

Three cooperating pieces (DESIGN.md §5e):

* :mod:`repro.observability.spans` — the deterministic,
  SimClock-stamped span tracer threaded through the pipeline behind
  ``SVQAConfig.observability``;
* :mod:`repro.observability.metrics` — the named counter / gauge /
  histogram registry that backs
  :class:`~repro.core.stats.ExecutorStats`, with Prometheus text and
  JSON snapshot exports;
* :mod:`repro.observability.profiler` — per-stage breakdowns and the
  ``BENCH_baseline.json`` artifact built from the two above
  (surfaced by the ``repro profile`` / ``repro trace`` commands).

This package sits *below* :mod:`repro.core` (the stats collector
imports the registry), so nothing here may import from the core.
"""

from repro.observability.config import ObservabilityConfig
from repro.observability.metrics import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    parse_prometheus,
)
from repro.observability.glossary import (
    BENCH_GLOSSARY,
    METRIC_GLOSSARY,
    explain_lines,
)
from repro.observability.profiler import (
    BASELINE_SCHEMA_VERSION,
    StageRow,
    build_baseline,
    charge_ceiling_violations,
    dump_deterministic_json,
    stage_breakdown,
)
from repro.observability.spans import (
    SPAN_NAMES,
    Span,
    Tracer,
    maybe_span,
    maybe_trace,
    render_trace,
    span_multiset,
)

__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "BENCH_GLOSSARY",
    "COUNT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "METRIC_GLOSSARY",
    "MetricsRegistry",
    "ObservabilityConfig",
    "SPAN_NAMES",
    "Span",
    "StageRow",
    "Tracer",
    "build_baseline",
    "charge_ceiling_violations",
    "dump_deterministic_json",
    "explain_lines",
    "maybe_span",
    "maybe_trace",
    "parse_prometheus",
    "render_trace",
    "span_multiset",
    "stage_breakdown",
]
