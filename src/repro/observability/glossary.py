"""The single source of truth for metric and benchmark definitions.

``repro bench --explain`` prints its per-row definitions from here,
and ``docs/OPERATIONS.md`` must cover every family listed here (an
anti-drift test in ``tests/observability/test_glossary.py`` holds the
three together: every ``svqa_*`` family registered anywhere in
``src/repro`` appears in :data:`METRIC_GLOSSARY`, and every glossary
entry appears in the operations runbook).
"""

from __future__ import annotations

#: every ``svqa_*`` metric family the system can emit, with a
#: one-line operator-facing definition
METRIC_GLOSSARY: dict[str, str] = {
    # --- core execution ---
    "svqa_queries_total":
        "Queries executed to completion by Algorithm 3.",
    "svqa_query_vertices":
        "Histogram of query-graph vertices executed per query.",
    "svqa_query_latency_seconds":
        "Histogram of per-query simulated latency (SimClock seconds).",
    "svqa_cache_requests_total":
        "Key-centric cache lookups, labeled by store (scope/path) and "
        "outcome (hit/miss).",
    "svqa_cache_hit_ratio":
        "Derived hit ratio per store, refreshed at snapshot time.",
    "svqa_predicate_rejections_total":
        "Relation pairs dropped by maxScore predicate filtering.",
    "svqa_predicate_dropouts_total":
        "Query-graph vertices where predicate filtering dropped every "
        "retrieved pair.",
    "svqa_constraint_applications_total":
        "Constraints (e.g. 'most frequently') that actually narrowed "
        "a result set.",
    "svqa_validated_graphs_total":
        "Query graphs run through the semantic validator.",
    "svqa_validation_diagnostics_total":
        "Validator diagnostics, labeled by severity (error/warning).",
    "svqa_stale_scope_drops_total":
        "Scope/path cache entries retired by graph-epoch invalidation.",
    # --- multi-query planner ---
    "svqa_plan_batches_total":
        "Batches routed through the cost-based multi-query planner.",
    "svqa_plan_nodes_total":
        "Canonical plan nodes discovered across planned batches, "
        "labeled by kind (scope/path/neighborhood).",
    "svqa_plan_shared_nodes_total":
        "Shared sub-plan nodes executed exactly once by the share "
        "phase and fanned out to all consumers, labeled by kind.",
    "svqa_plan_overlay_fills_total":
        "Cache-miss closures served from the plan overlay instead of "
        "recomputing, labeled by store (scope/path).",
    # --- retrieval tier ---
    "svqa_retrieval_ann_lookups_total":
        "ANN-tier embedding scores, labeled by executor site "
        "(predicate/constraint/possessive) and outcome "
        "(fresh=computed, probe=score-memo hit).",
    "svqa_retrieval_fallbacks_total":
        "Degraded parses offered to the BM25-ranked retrieval "
        "fallback, labeled by outcome (ranked/empty).",
    "svqa_retrieval_fallback_confidence":
        "Histogram of normalized BM25 confidences carried by "
        "ranked fallback answers (in [0, 1]).",
    # --- resilience ---
    "svqa_faults_injected_total":
        "Injected faults that fired, labeled by fault site.",
    "svqa_retry_attempts_total":
        "Backoffs charged before a retry attempt.",
    "svqa_retry_recoveries_total":
        "Guarded operations that succeeded after at least one fault.",
    "svqa_retries_exhausted_total":
        "Guard calls whose retry budget ran out.",
    "svqa_breaker_trips_total":
        "Circuit-breaker transitions to open.",
    "svqa_breaker_short_circuits_total":
        "Calls rejected outright by an open circuit.",
    "svqa_breaker_state":
        "Current breaker state per site "
        "(0=closed, 1=half-open, 2=open).",
    "svqa_deadline_cutoffs_total":
        "Queries cut off by their per-query deadline budget.",
    "svqa_degraded_answers_total":
        "Answers salvaged by the graceful-degradation ladder.",
    # --- serving layer ---
    "svqa_http_requests_total":
        "HTTP requests served, labeled by route and status code.",
    "svqa_admission_total":
        "Admission-control decisions, labeled by outcome "
        "(admitted/throttled/shed).",
    "svqa_serve_batch_size":
        "Histogram of micro-batch sizes the serving bridge submitted.",
    # --- durable store ---
    "svqa_store_snapshots_total":
        "Durable-store snapshots written.",
    "svqa_store_recoveries_total":
        "Store recoveries attempted, labeled by verdict.",
    "svqa_store_quarantined_total":
        "Corrupt store files quarantined for forensics.",
    "svqa_store_wal_appends_total":
        "Mutations appended to the write-ahead log.",
    "svqa_store_wal_append_drops_total":
        "WAL appends dropped (sink closed or I/O failure).",
    "svqa_store_wal_records_replayed_total":
        "WAL records replayed during recovery.",
    "svqa_store_rebuilds_total":
        "Warm starts that degraded to a full vision-pipeline rebuild.",
}

#: definitions of the rows ``repro bench`` reports (printed verbatim
#: by ``repro bench --explain``)
BENCH_GLOSSARY: dict[str, str] = {
    "makespan":
        "Simulated seconds on the busiest worker lane — what a "
        "parallel deployment actually waits for.",
    "sim total":
        "Total simulated work summed over all worker-lane clock "
        "shards (excludes the planner's main-thread share phase).",
    "speedup":
        "Simulated total work divided by the makespan.",
    "wall":
        "Measured wall-clock seconds of the batch run itself.",
    "queries executed":
        "Queries that ran to an answer (svqa_queries_total).",
    "vertices / query":
        "Mean query-graph vertices executed per query "
        "(svqa_query_vertices).",
    "scope hit rate":
        "Scope-store hits over all scope requests "
        "(svqa_cache_requests_total, store=scope).",
    "path hit rate":
        "Path-store hits over all path requests "
        "(svqa_cache_requests_total, store=path).",
    "predicate rejections":
        "Pairs dropped by predicate filtering "
        "(svqa_predicate_rejections_total).",
    "predicate dropouts":
        "Vertices where filtering dropped every pair "
        "(svqa_predicate_dropouts_total).",
    "constraint applications":
        "Constraints that narrowed a result "
        "(svqa_constraint_applications_total).",
    "graphs validated":
        "Query graphs run through the semantic validator "
        "(svqa_validated_graphs_total).",
    "validation warnings":
        "WARNING diagnostics across validated graphs "
        "(svqa_validation_diagnostics_total, severity=warning).",
    "validation errors":
        "ERROR diagnostics across validated graphs "
        "(svqa_validation_diagnostics_total, severity=error).",
    "stale scope drops":
        "Cache entries retired by graph-epoch invalidation "
        "(svqa_stale_scope_drops_total).",
    "plan batches":
        "Batches routed through the multi-query planner "
        "(svqa_plan_batches_total).",
    "plan nodes":
        "Canonical plan nodes discovered (svqa_plan_nodes_total).",
    "plan shared nodes":
        "Sub-plan nodes executed once and fanned out "
        "(svqa_plan_shared_nodes_total).",
    "plan overlay fills":
        "Cache misses served from the plan overlay "
        "(svqa_plan_overlay_fills_total).",
    "predicted makespan":
        "The plan-aware makespan predictor's estimate, calibrated "
        "from the recorded baseline's per-operation clock counts.",
    "ann fresh scores":
        "ANN-tier scores computed for the first time "
        "(svqa_retrieval_ann_lookups_total, outcome=fresh).",
    "ann memo probes":
        "ANN-tier scores served from the memo "
        "(svqa_retrieval_ann_lookups_total, outcome=probe).",
    "retrieval fallbacks":
        "Degraded parses offered to the ranked fallback "
        "(svqa_retrieval_fallbacks_total).",
    "faults injected":
        "Injected faults that fired (svqa_faults_injected_total).",
    "retry attempts":
        "Backoffs charged before a retry (svqa_retry_attempts_total).",
    "retry recoveries":
        "Operations that succeeded after faults "
        "(svqa_retry_recoveries_total).",
    "retries exhausted":
        "Guard calls whose retry budget ran out "
        "(svqa_retries_exhausted_total).",
    "breaker trips":
        "Circuit transitions to open (svqa_breaker_trips_total).",
    "breaker short-circuits":
        "Calls rejected by an open circuit "
        "(svqa_breaker_short_circuits_total).",
    "deadline cutoffs":
        "Queries cut off by their budget "
        "(svqa_deadline_cutoffs_total).",
    "degraded answers":
        "Answers salvaged by the degradation ladder "
        "(svqa_degraded_answers_total).",
}


def explain_lines() -> list[str]:
    """The ``repro bench --explain`` section, one definition per row."""
    width = max(len(name) for name in BENCH_GLOSSARY)
    return [f"  {name:<{width}}  {definition}"
            for name, definition in BENCH_GLOSSARY.items()]
