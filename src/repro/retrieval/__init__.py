"""Retrieval tier: ANN-accelerated embedding lookups and BM25 text
retrieval over merged-graph labels.

The embedding half lives in :mod:`repro.nlp.ann` (it needs numpy and
the vector cache); this package holds the stdlib-only pieces — the
:class:`~repro.retrieval.config.RetrievalConfig` knob that gates the
tier (``SVQAConfig.retrieval=None`` keeps every output bit-identical
to a build without it) and the refcounted
:class:`~repro.retrieval.lexical.LexicalIndex` powering the ranked
degraded-mode fallback in :mod:`repro.resilience.degrade`.
"""

from repro.retrieval.config import RetrievalConfig
from repro.retrieval.lexical import LexicalIndex, tokenize

__all__ = [
    "LexicalIndex",
    "RetrievalConfig",
    "tokenize",
]
