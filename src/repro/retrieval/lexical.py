"""Refcounted BM25 index over merged-graph vertex labels.

The degraded-parse ladder used to fall back to a flat known-noun
keyword match with a constant confidence; this index replaces it with
ranked retrieval: question tokens are scored against the live label
corpus with BM25 (Robertson-Sparck Jones idf, standard ``k1``/``b``
saturation), and the winning score — normalized by the label's
*self-score*, so it lands in [0, 1] — flows into
``Answer.confidence``.

Maintenance mirrors :class:`~repro.graph.candidates.VertexCandidateIndex`:
:class:`~repro.graph.model.Graph` feeds ``add_document`` /
``remove_document`` from ``add_vertex`` / ``remove_vertex`` /
``relabel_vertex`` behind its monotone epoch counter, refcounted so a
label leaves the corpus exactly when its last vertex does.  Like the
candidate index it carries no lock — mutation happens only on the
graph-mutation thread, and the ``note_read`` / ``note_write``
annotations let the tsan-lite sanitizer prove that claim at runtime.

Ranking is deterministic: ties break on label insertion order, idf
uses only corpus counts, and nothing here reads a clock or an
unseeded RNG.
"""

from __future__ import annotations

import math
import re
from collections import Counter

from repro.locks import note_read, note_write

#: BM25 term-frequency saturation / length-normalization constants
#: (the standard Okapi defaults).
BM25_K1 = 1.5
BM25_B = 0.75

_TOKEN_SPLIT = re.compile(r"[^0-9a-z]+")


def tokenize(text: str) -> list[str]:
    """Lowercased alphanumeric tokens of ``text``, in order."""
    return [t for t in _TOKEN_SPLIT.split(text.lower()) if t]


class LexicalIndex:
    """BM25 postings over a refcounted label corpus.

    Mutate only through the :class:`~repro.graph.model.Graph`
    mutation API; query freely from any thread once the graph is
    built.
    """

    def __init__(self, k1: float = BM25_K1, b: float = BM25_B) -> None:
        self._k1 = k1
        self._b = b
        self._refs: dict[str, int] = {}
        self._order: dict[str, int] = {}
        self._next_position = 0
        self._postings: dict[str, dict[str, int]] = {}
        self._lengths: dict[str, int] = {}
        self._total_length = 0

    # ------------------------------------------------------------------
    # maintenance (Graph mutation API only)
    # ------------------------------------------------------------------
    def add_document(self, label: str) -> None:
        """Register one more vertex carrying ``label``."""
        note_write("retrieval.lexical", label)
        count = self._refs.get(label, 0)
        self._refs[label] = count + 1
        if count:
            return
        self._order[label] = self._next_position
        self._next_position += 1
        terms = tokenize(label)
        self._lengths[label] = len(terms)
        self._total_length += len(terms)
        for term, tf in Counter(terms).items():
            self._postings.setdefault(term, {})[label] = tf

    def remove_document(self, label: str) -> None:
        """Unregister one vertex carrying ``label``; the label leaves
        the corpus when its last vertex goes."""
        note_write("retrieval.lexical", label)
        count = self._refs.get(label)
        if count is None:
            raise KeyError(f"label {label!r} is not indexed")
        if count > 1:
            self._refs[label] = count - 1
            return
        del self._refs[label]
        del self._order[label]
        self._total_length -= self._lengths.pop(label)
        for term in set(tokenize(label)):
            postings = self._postings[term]
            del postings[label]
            if not postings:
                del self._postings[term]

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------
    def rank(self, query: str,
             limit: int | None = None) -> list[tuple[str, float]]:
        """Labels scored against ``query`` by BM25, best first.

        Query terms are deduplicated, which both matches short-query
        practice and guarantees ``score(q, d) <= self_score(d)`` (the
        matched terms are a subset of the document's own), so
        normalized confidences stay in [0, 1].  Ties break on label
        insertion order; only labels with a positive score appear.
        """
        note_read("retrieval.lexical")
        return self._rank_terms(dict.fromkeys(tokenize(query)), limit)

    def self_score(self, label: str) -> float:
        """``label`` scored against its own distinct terms — the
        normalization ceiling for confidences."""
        note_read("retrieval.lexical", label)
        for candidate, score in self._rank_terms(
                dict.fromkeys(tokenize(label)), None):
            if candidate == label:
                return score
        return 0.0

    def _rank_terms(self, terms: dict[str, None],
                    limit: int | None) -> list[tuple[str, float]]:
        """BM25 over distinct ``terms`` (insertion-ordered dict)."""
        if not terms or not self._refs:
            return []
        n = len(self._refs)
        avgdl = (self._total_length / n) or 1.0
        scores: dict[str, float] = {}
        for term in terms:
            postings = self._postings.get(term)
            if not postings:
                continue
            df = len(postings)
            idf = math.log(1.0 + (n - df + 0.5) / (df + 0.5))
            for label, tf in postings.items():
                length_norm = 1.0 - self._b + \
                    self._b * self._lengths[label] / avgdl
                gain = idf * tf * (self._k1 + 1.0) \
                    / (tf + self._k1 * length_norm)
                scores[label] = scores.get(label, 0.0) + gain
        ranked = sorted(
            scores.items(),
            key=lambda ls: (-ls[1], self._order[ls[0]]),
        )
        return ranked if limit is None else ranked[:limit]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Distinct labels currently indexed."""
        return len(self._refs)

    def __contains__(self, label: str) -> bool:
        """Whether ``label`` is currently indexed."""
        return label in self._refs

    def count(self, label: str) -> int:
        """Number of vertices currently carrying ``label``."""
        return self._refs.get(label, 0)

    def stats(self) -> dict[str, int]:
        """Deterministic structural counters for ``repro retrieval``."""
        note_read("retrieval.lexical")
        return {
            "labels": len(self._refs),
            "terms": len(self._postings),
            "total_tokens": self._total_length,
        }


__all__ = [
    "BM25_B",
    "BM25_K1",
    "LexicalIndex",
    "tokenize",
]
