"""Configuration for the retrieval tier (off by default)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetrievalConfig:
    """Knobs for the ANN/BM25 retrieval tier.

    ``SVQAConfig.retrieval = RetrievalConfig()`` routes the
    executor's embedding lookups through the
    :class:`~repro.nlp.ann.EmbeddingANNIndex` score memo (answers
    stay byte-identical; only clock charges change) and upgrades the
    degraded-mode keyword fallback to BM25-ranked retrieval with a
    score-derived confidence.  ``None`` (the default) keeps every
    output bit-identical to a build without the tier.
    """

    #: minimum *normalized* BM25 score (candidate score over the
    #: label's self-score, in [0, 1]) for a fallback anchor to count
    fallback_floor: float = 0.05

    #: minimum ANN cosine for an indexed edge label to replace the
    #: fallback predicate guess (mirrors ``predicate_threshold`` in
    #: the executor)
    fallback_predicate_threshold: float = 0.55

    #: how many ANN neighbors the fallback (and the ``repro
    #: retrieval`` inspect verb) asks for per probe
    neighbor_limit: int = 8
