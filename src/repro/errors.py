"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.  Sub-hierarchies
mirror the subsystems: graph substrate, vision substrate, NLP substrate,
and the SVQA core.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """Base class for graph-substrate errors."""


class VertexNotFoundError(GraphError, KeyError):
    """A vertex id was not present in the graph."""

    def __init__(self, vertex_id: object) -> None:
        super().__init__(f"vertex not found: {vertex_id!r}")
        self.vertex_id = vertex_id


class EdgeNotFoundError(GraphError, KeyError):
    """An edge id was not present in the graph."""

    def __init__(self, edge_id: object) -> None:
        super().__init__(f"edge not found: {edge_id!r}")
        self.edge_id = edge_id


class DuplicateVertexError(GraphError, ValueError):
    """A vertex id was added twice."""

    def __init__(self, vertex_id: object) -> None:
        super().__init__(f"duplicate vertex id: {vertex_id!r}")
        self.vertex_id = vertex_id


class StoreError(GraphError):
    """Persistence failed (corrupt file, bad version, ...)."""


class VisionError(ReproError):
    """Base class for vision-substrate errors."""


class SceneError(VisionError, ValueError):
    """A synthetic scene specification is invalid."""


class NLPError(ReproError):
    """Base class for NLP-substrate errors."""


class TokenizationError(NLPError, ValueError):
    """Input text could not be tokenized."""


class ParseError(NLPError):
    """Dependency parsing failed to produce a tree.

    ``term`` optionally names the offending surface word (e.g. the
    unknown foreign word of the Fig. 8(a) failure mode) so callers can
    attribute the failure without parsing the message.
    """

    def __init__(self, message: str, *, term: str | None = None) -> None:
        super().__init__(message)
        self.term = term


class QueryError(ReproError):
    """Base class for SVQA-core query errors."""


class QueryParseError(QueryError):
    """A complex question could not be decomposed into a query graph.

    Structured attribution for diagnostics: ``clause_index`` is the
    index of the clause that failed (``None`` when the failure
    precedes clause segmentation) and ``term`` is the offending
    term/text, so validator output and Fig. 8(a)-style failures point
    at a specific clause instead of only a prose message.
    """

    def __init__(
        self,
        message: str,
        *,
        clause_index: int | None = None,
        term: str | None = None,
    ) -> None:
        super().__init__(message)
        self.clause_index = clause_index
        self.term = term


class QueryValidationError(QueryError):
    """A query graph failed semantic validation in fail-fast mode.

    ``diagnostics`` holds the full
    :class:`~repro.analysis.diagnostics.DiagnosticReport` so callers
    can render or filter the individual findings.
    """

    def __init__(self, message: str, diagnostics: object = None) -> None:
        super().__init__(message)
        self.diagnostics = diagnostics


class ExecutionError(QueryError):
    """Query-graph execution over the merged graph failed."""


class DatasetError(ReproError):
    """Dataset construction or loading failed."""
