"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.  Sub-hierarchies
mirror the subsystems: graph substrate, vision substrate, NLP substrate,
and the SVQA core.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """Base class for graph-substrate errors."""


class VertexNotFoundError(GraphError, KeyError):
    """A vertex id was not present in the graph."""

    def __init__(self, vertex_id: object) -> None:
        super().__init__(f"vertex not found: {vertex_id!r}")
        self.vertex_id = vertex_id


class EdgeNotFoundError(GraphError, KeyError):
    """An edge id was not present in the graph."""

    def __init__(self, edge_id: object) -> None:
        super().__init__(f"edge not found: {edge_id!r}")
        self.edge_id = edge_id


class DuplicateVertexError(GraphError, ValueError):
    """A vertex id was added twice."""

    def __init__(self, vertex_id: object) -> None:
        super().__init__(f"duplicate vertex id: {vertex_id!r}")
        self.vertex_id = vertex_id


class DuplicateEdgeError(GraphError, ValueError):
    """An explicit edge id was added twice."""

    def __init__(self, edge_id: object) -> None:
        super().__init__(f"duplicate edge id: {edge_id!r}")
        self.edge_id = edge_id


class StoreError(GraphError):
    """Persistence failed (corrupt file, bad version, ...).

    Structured attribution mirrors :class:`QueryParseError`'s style so
    recovery diagnostics can point at the damage without parsing prose:
    ``path`` is the offending file, ``lineno`` the 1-based record line
    (``None`` when the failure precedes record framing), and ``reason``
    a stable machine-readable slug (``"bad-digest"``, ``"torn-record"``,
    ``"bad-version"``, ...) used by the recovery report and the
    crash-torture harness.
    """

    def __init__(
        self,
        message: str,
        *,
        path: object = None,
        lineno: int | None = None,
        reason: str | None = None,
    ) -> None:
        super().__init__(message)
        self.path = None if path is None else str(path)
        self.lineno = lineno
        self.reason = reason


class VisionError(ReproError):
    """Base class for vision-substrate errors."""


class SceneError(VisionError, ValueError):
    """A synthetic scene specification is invalid."""


class NLPError(ReproError):
    """Base class for NLP-substrate errors."""


class TokenizationError(NLPError, ValueError):
    """Input text could not be tokenized."""


class ParseError(NLPError):
    """Dependency parsing failed to produce a tree.

    ``term`` optionally names the offending surface word (e.g. the
    unknown foreign word of the Fig. 8(a) failure mode) so callers can
    attribute the failure without parsing the message.
    """

    def __init__(self, message: str, *, term: str | None = None) -> None:
        super().__init__(message)
        self.term = term


class QueryError(ReproError):
    """Base class for SVQA-core query errors."""


class QueryParseError(QueryError):
    """A complex question could not be decomposed into a query graph.

    Structured attribution for diagnostics: ``clause_index`` is the
    index of the clause that failed (``None`` when the failure
    precedes clause segmentation) and ``term`` is the offending
    term/text, so validator output and Fig. 8(a)-style failures point
    at a specific clause instead of only a prose message.
    """

    def __init__(
        self,
        message: str,
        *,
        clause_index: int | None = None,
        term: str | None = None,
    ) -> None:
        super().__init__(message)
        self.clause_index = clause_index
        self.term = term


class QueryValidationError(QueryError):
    """A query graph failed semantic validation in fail-fast mode.

    ``diagnostics`` holds the full
    :class:`~repro.analysis.diagnostics.DiagnosticReport` so callers
    can render or filter the individual findings.
    """

    def __init__(self, message: str, diagnostics: object = None) -> None:
        super().__init__(message)
        self.diagnostics = diagnostics


class ExecutionError(QueryError):
    """Query-graph execution over the merged graph failed."""


class FaultToleranceError(ReproError):
    """A guarded pipeline stage failed permanently.

    Raised by the resilience layer when a fault site exhausts its
    retry budget and no degradation fallback was provided.  Structured
    attribution mirrors :class:`QueryParseError`'s style: ``site`` is
    the registered fault-site name (see
    :data:`repro.resilience.faults.FAULT_SITES`), ``attempts`` is how
    many attempts were made before giving up, and ``elapsed_budget``
    is the simulated seconds consumed of the per-query deadline (or
    ``None`` when no deadline was active).
    """

    def __init__(
        self,
        message: str,
        *,
        site: str | None = None,
        attempts: int = 0,
        elapsed_budget: float | None = None,
    ) -> None:
        super().__init__(message)
        self.site = site
        self.attempts = attempts
        self.elapsed_budget = elapsed_budget


class InjectedFaultError(FaultToleranceError):
    """A single injected fault fired at a registered fault site.

    This is what :class:`repro.resilience.faults.FaultInjector` raises
    per attempt; the retry loop in
    :class:`repro.resilience.manager.ResilienceManager` absorbs it and
    only lets a :class:`FaultToleranceError` escape when the retry
    budget is exhausted.
    """


class DeadlineExceededError(FaultToleranceError):
    """A per-query deadline budget ran out (simulated time).

    ``elapsed_budget`` carries the simulated seconds actually consumed
    when the budget tripped.
    """


class CircuitOpenError(FaultToleranceError):
    """A per-stage circuit breaker is open and short-circuited the call.

    ``attempts`` counts the consecutive failures that tripped the
    breaker.
    """


class DatasetError(ReproError):
    """Dataset construction or loading failed."""
