"""SPOC extraction: clause -> [c_s, c_p, c_o, c_c] (§IV-B, step 2).

The extractor is a small state machine over the clause's dependency
arcs:

1. the clause head's verb group (auxiliaries, particles) forms the raw
   predicate;
2. ``nsubj``/``nsubj:pass`` gives the surface subject, ``obj``/``obl``
   the surface object(s);
3. passives are voice-normalized ("are worn by the wizard" becomes
   subject=wizard, predicate=wear, object=<surface subject>), exactly
   as Example 4 converts *are worn* to *wear*;
4. relative pronouns ("who"/"that") are replaced by their antecedent
   noun through the ``acl`` link, per the paper's cross-sentence
   reference rule;
5. superlative adverbials ("most frequently") become the constraint
   ``c_c``;
6. the WH phrase marks the answer slot, and the main clause's shape
   decides the question type (judgment / counting / reasoning).
"""

from __future__ import annotations

from repro.errors import QueryParseError
from repro.nlp.depparse import DependencyTree
from repro.nlp.morphology import normalize_predicate, noun_singular
from repro.core.clauses import Clause
from repro.core.spoc import QuestionType, SPOC, Term

_KIND_WORDS = {"kind", "type", "sort"}
_RELATIVE_PRONOUNS = {"who", "that", "which", "whom"}

#: the predefined constraint word set S of Algorithm 3 (from [35])
CONSTRAINT_WORDS: tuple[str, ...] = (
    "most frequently",
    "least frequently",
    "most",
    "least",
)


def extract_spoc(
    tree: DependencyTree, clause: Clause, clause_index: int
) -> SPOC:
    """Extract the SPOC of one clause."""
    head = clause.head
    is_copular = tree.tokens[head].lemma == "be"

    subject_index = _child_any(tree, head, ("nsubj", "nsubj:pass"))
    object_index = _child_any(tree, head, ("obj", "attr"))
    obliques = tree.children(head, "obl")

    passive = (
        _child_any(tree, head, ("aux:pass",)) is not None
        or (subject_index is not None
            and tree.labels[subject_index] == "nsubj:pass")
    )

    subject_term = _build_term(tree, subject_index, clause)
    object_term = _build_term(tree, object_index, clause)

    predicate_words = _predicate_words(tree, head)
    oblique_used: int | None = None

    if passive:
        agent = _oblique_with_case(tree, obliques, "by")
        if agent is not None:
            # voice normalization: the by-agent becomes the subject,
            # the surface subject becomes the object
            object_term = subject_term
            subject_term = _build_term(tree, agent, clause)
            oblique_used = agent
        # agentless passive ("pets that were situated in the car"):
        # keep the surface subject; the PP becomes the object below
    if object_term is None:
        # intransitive with a PP: fold the preposition into the
        # predicate ("sit on", "appear in front of", "be near")
        remaining = [o for o in obliques if o != oblique_used]
        if remaining:
            oblique = remaining[0]
            case = tree.child(oblique, "case")
            if case is not None:
                predicate_words.append(tree.tokens[case].lemma)
            object_term = _build_term(tree, oblique, clause)

    predicate = normalize_predicate(predicate_words)
    if is_copular and predicate == "be" and object_term is not None \
            and _child_any(tree, head, ("attr",)) is None:
        # copular relative like "that is near the fence": the
        # preposition IS the predicate
        case_words = [w for w in predicate_words if w not in {"be"}]
        if case_words:
            predicate = " ".join(case_words)

    constraint = _extract_constraint(tree, head)

    spoc = SPOC(
        subject=subject_term,
        predicate=predicate,
        object=object_term,
        constraint=constraint,
        clause_index=clause_index,
        depth=clause.depth,
        is_main=clause.is_main,
        source_text=tree.text_of_subtree(head),
    )
    if clause.is_main:
        spoc.question_type, spoc.answer_role = _classify_question(tree, spoc)
    else:
        spoc.answer_role = "subject"
    return spoc


# ---------------------------------------------------------------------------
# term construction
# ---------------------------------------------------------------------------

def _build_term(
    tree: DependencyTree, index: int | None, clause: Clause
) -> Term | None:
    if index is None:
        return None
    token = tree.tokens[index]

    # relative pronoun -> antecedent replacement (the acl rule)
    if token.lower in _RELATIVE_PRONOUNS and clause.antecedent is not None:
        return _build_term(tree, clause.antecedent, clause)

    # "kind of X": the nmod child is the real head
    kind_of = False
    head_index = index
    if token.lemma in _KIND_WORDS:
        nmod = tree.child(index, "nmod")
        if nmod is not None:
            kind_of = True
            head_index = nmod

    head_token = tree.tokens[head_index]
    is_wh = _has_wh_marker(tree, index)

    owner = None
    poss = tree.child(head_index, "nmod:poss")
    if poss is not None:
        owner = _name_of(tree, poss)

    text = tree.text_of_subtree(
        index,
        exclude_labels={"acl", "acl:relcl", "nmod:poss"},
        exclude_direct={"det", "case", "advmod"},
    )
    if head_token.tag in {"NNP", "NNPS"}:
        head = _name_of(tree, head_index)  # keep proper names verbatim
    else:
        head = noun_singular(head_token.lemma)
    return Term(text=text, head=head, kind_of=kind_of, owner=owner,
                is_wh=is_wh)


def _name_of(tree: DependencyTree, index: int) -> str:
    """A proper-name head with its compound parts ("Harry Potter")."""
    parts = [tree.tokens[i].text
             for i in sorted(tree.children(index, "compound")) + [index]]
    return " ".join(parts)


def _has_wh_marker(tree: DependencyTree, index: int) -> bool:
    for child in tree.children(index):
        token = tree.tokens[child]
        if token.tag in {"WP", "WDT"} and token.lower in {"what", "which"}:
            return True
        if tree.labels[child] == "amod" and token.lower in {"many", "much"}:
            grand = tree.children(child, "advmod")
            if grand and tree.tokens[grand[0]].lower == "how":
                return True
    return False


def _has_how_many(tree: DependencyTree, term_index: int | None) -> bool:
    if term_index is None:
        return False
    for child in tree.children(term_index, "amod"):
        if tree.tokens[child].lower in {"many", "much"}:
            grand = tree.children(child, "advmod")
            if grand and tree.tokens[grand[0]].lower == "how":
                return True
    return False


# ---------------------------------------------------------------------------
# predicate / constraint helpers
# ---------------------------------------------------------------------------

def _predicate_words(tree: DependencyTree, head: int) -> list[str]:
    indices = [head]
    for child in tree.children(head):
        if tree.labels[child] in {"aux", "aux:pass", "compound:prt"}:
            indices.append(child)
    return [tree.tokens[i].text for i in sorted(indices)]


def _extract_constraint(tree: DependencyTree, head: int) -> str | None:
    for adv in tree.children(head, "advmod"):
        token = tree.tokens[adv]
        inner = tree.children(adv, "advmod")
        if inner and tree.tokens[inner[0]].tag == "RBS":
            return f"{tree.tokens[inner[0]].lower} {token.lower}"
        if token.tag == "RBS":
            return token.lower
    return None


def _child_any(
    tree: DependencyTree, head: int, labels: tuple[str, ...]
) -> int | None:
    for label in labels:
        child = tree.child(head, label)
        if child is not None:
            return child
    return None


def _oblique_with_case(
    tree: DependencyTree, obliques: list[int], case: str
) -> int | None:
    for oblique in obliques:
        case_child = tree.child(oblique, "case")
        if case_child is not None and tree.tokens[case_child].lower == case:
            return oblique
    return None


# ---------------------------------------------------------------------------
# question typing
# ---------------------------------------------------------------------------

def _classify_question(
    tree: DependencyTree, spoc: SPOC
) -> tuple[QuestionType, str]:
    """Question type + answer slot of the main clause."""
    for role in ("subject", "object"):
        term = spoc.slot(role)
        if term is not None and term.is_wh:
            # WH slot present: counting if "how many", else reasoning
            if _wh_is_counting(tree, spoc, role):
                return QuestionType.COUNTING, role
            return QuestionType.REASONING, role
    # no WH phrase: yes/no question
    return QuestionType.JUDGMENT, "subject"


def _wh_is_counting(tree: DependencyTree, spoc: SPOC, role: str) -> bool:
    """Distinguish "how many dogs ..." from "what kind of ..."."""
    for index, token in enumerate(tree.tokens):
        if token.lower == "how":
            nxt = index + 1
            if nxt < len(tree.tokens) and \
                    tree.tokens[nxt].lower in {"many", "much"}:
                return True
    return False


def validate_spoc(spoc: SPOC) -> None:
    """Reject degenerate SPOCs early with a clear, attributable error.

    The raised :class:`~repro.errors.QueryParseError` carries the
    clause index and the offending clause text as structured
    attributes, so Fig. 8(a)-style failures point at a specific
    clause.
    """
    if spoc.subject is None and spoc.object is None:
        raise QueryParseError(
            f"clause {spoc.clause_index} has neither subject nor object: "
            f"{spoc.source_text!r}",
            clause_index=spoc.clause_index,
            term=spoc.source_text,
        )
    if not spoc.predicate:
        raise QueryParseError(
            f"clause {spoc.clause_index} has no predicate: "
            f"{spoc.source_text!r}",
            clause_index=spoc.clause_index,
            term=spoc.source_text,
        )
