"""Cost-based multi-query planning: whole-plan sharing across a batch.

The key-centric cache (§V-B) memoizes per-item scope and path results,
but every scheduled query still *executes* its plan independently: two
queries whose SPOC chains touch the same subject neighborhood each scan
that neighborhood once (the path key includes the object side, so a
shared subject with different objects is a cache miss both times).  On
the seed bench this left ``edge_scan`` as the dominant charge by two
orders of magnitude.

This module pushes key-centric reuse from per-item memoization to
whole-plan sharing:

* **canonicalize** — every query graph becomes a :class:`QueryPlan` of
  plan nodes with canonical keys under the current graph epoch:
  ``scope`` nodes (one per statically-resolvable slot, keyed exactly
  like the scope store), ``path`` nodes (one per non-copular clause
  whose endpoints are both static, keyed exactly like the path store),
  and ``neighborhood`` nodes (``("nbr", epoch, direction, head)`` — the
  *full* non-structural edge set on one side of a static endpoint, from
  which any path request over that endpoint can be derived by
  membership filtering);
* **share** — nodes whose canonical key recurs across the batch are
  executed exactly once, in deterministic key order, on the main thread
  before the batch starts; results fan out to every consumer through a
  frozen :class:`PlanOverlay` that the executor consults inside its
  cache-miss closures (so derived results still land in the scope/path
  stores and stay single-flight under concurrency);
* **order** — queries are clustered by shared-key affinity (union-find
  over shared canonical keys) and clusters run back to back, largest
  shared mass first, which maximizes scope/path reuse while entries are
  hot in the bounded pool; within a cluster the §V-B frequency-ratio
  order is kept;
* **predict** — a makespan predictor calibrated from the per-operation
  clock counts in ``BENCH_baseline.json`` (schema v2) walks the plan
  nodes in scheduled order, simulating first-touch misses and fan-out
  fills, and packs the per-query costs onto the worker lanes — the
  plan-aware successor of the retired bin-packing estimate, validated
  against the measured makespan by ``repro bench`` / ``repro plan``.

Epoch interaction: every canonical key carries the *plan-time* graph
epoch at index 1 (the RP007 key convention).  A mid-batch mutation
bumps the epoch, so executors build keys under the new epoch and every
overlay entry becomes unreachable — a shared sub-plan result can never
leak across epochs.  Degraded slot resolution (resilience fallbacks)
is guarded the same way: a neighborhood entry records the vertex ids
it was computed from, and derivation only applies when the runtime
endpoint set matches exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.scheduler import schedule_queries
from repro.core.spoc import QueryGraph, SPOC, Term

if TYPE_CHECKING:
    from repro.core.executor import QueryGraphExecutor
    from repro.core.stats import ExecutorStats
    from repro.graph import RelationPair


@dataclass
class PlannerConfig:
    """Configuration of the cost-based multi-query planner.

    ``share_threshold`` is how many uses a canonical node needs across
    the batch before the share phase precomputes it (2 = any reuse).
    ``reorder`` enables affinity-cluster ordering; ``False`` keeps the
    plain §V-B frequency-ratio order while still sharing nodes.
    """

    share_threshold: int = 2
    reorder: bool = True


#: the three plan-node kinds (also the ``kind`` label values of the
#: ``svqa_plan_*`` metric families); built from a list so RP007 does
#: not mistake the literal for a "scope"-tagged cache key
NODE_KINDS: tuple[str, ...] = tuple(["scope", "path", "neighborhood"])


@dataclass(frozen=True)
class PlanNode:
    """One canonical unit of plan work inside a query plan.

    ``key`` is the node's canonical identity: for ``scope`` and
    ``path`` nodes it is byte-for-byte the cache key the executor will
    present to the key-centric store, for ``neighborhood`` nodes it is
    the ``("nbr", epoch, direction, head)`` overlay key.  ``shareable``
    marks nodes the share phase knows how to precompute (possessive
    scopes, for example, are canonical but not precomputed).
    ``derives_from`` links a ``path`` node to the neighborhood key that
    can serve it by membership filtering, if any.
    """

    kind: str
    key: tuple[Any, ...]
    shareable: bool = True
    derives_from: tuple[Any, ...] | None = None


@dataclass
class QueryPlan:
    """One query graph, canonicalized into plan nodes.

    ``dynamic_scopes`` / ``dynamic_paths`` count the requests whose
    keys depend on runtime bindings (slots fed by provider clauses) —
    unplannable statically, but still priced by the predictor through
    the calibrated hit rates.
    """

    index: int
    vertices: int
    score: float
    nodes: list[PlanNode]
    dynamic_scopes: int
    dynamic_paths: int

    def signature(self) -> tuple[Any, ...]:
        """A canonical, comparable identity for determinism tests."""
        return (
            self.vertices,
            tuple((n.kind, n.key) for n in self.nodes),
            self.dynamic_scopes,
            self.dynamic_paths,
        )


@dataclass(frozen=True)
class SharedNode:
    """A canonical node used by enough plans to execute exactly once."""

    node: PlanNode
    uses: int
    consumers: tuple[int, ...]


@dataclass
class PlanForest:
    """The batch-wide sharing structure over a list of query plans."""

    epoch: int
    plans: list[QueryPlan]
    shared: dict[tuple[Any, ...], SharedNode]

    def shared_by_kind(self, kind: str) -> list[SharedNode]:
        """Shared nodes of one kind, in deterministic key order."""
        return [self.shared[key] for key in sorted(self.shared)
                if self.shared[key].node.kind == kind]

    def node_counts(self) -> dict[str, int]:
        """Total canonical nodes discovered, by kind."""
        counts = dict.fromkeys(NODE_KINDS, 0)
        for plan in self.plans:
            for node in plan.nodes:
                counts[node.kind] += 1
        return counts

    def shared_counts(self) -> dict[str, int]:
        """Shared (precomputed) nodes, by kind."""
        counts = dict.fromkeys(NODE_KINDS, 0)
        for shared in self.shared.values():
            counts[shared.node.kind] += 1
        return counts

    def fanout_uses(self) -> int:
        """Total uses served by shared nodes across the batch."""
        return sum(s.uses for s in self.shared.values())

    def signature(self) -> tuple[Any, ...]:
        """Canonical identity of the whole forest (determinism tests)."""
        return (
            self.epoch,
            tuple(plan.signature() for plan in self.plans),
            tuple(sorted(
                (key, s.uses, s.consumers) for key, s in self.shared.items()
            )),
        )


def _term_scope_node(term: Term, epoch: int) -> PlanNode:
    """The scope node a static term slot will request."""
    if term.owner is not None:
        return PlanNode(
            kind="scope",
            key=("scope-poss", epoch, term.owner.lower(),
                 term.head.lower()),
            shareable=False,
        )
    return PlanNode(kind="scope", key=("scope", epoch, term.head.lower()))


def _static_slot_key(term: Term | None) -> tuple[str, ...]:
    """The executor's ``_slot_key`` for an unbound slot."""
    if term is None:
        return ("*",)
    return (term.head.lower(), term.owner.lower() if term.owner else "")


def canonicalize(graph: QueryGraph, epoch: int,
                 index: int = 0, score: float = 0.0) -> QueryPlan:
    """Canonicalize one query graph into a :class:`QueryPlan`.

    A slot is *static* when no dependency edge feeds it (its
    ``consumer_slot`` never names it), so its cache key is known before
    execution.  Copular ("be") clauses retrieve no relation pairs and
    therefore contribute no path or neighborhood nodes.
    """
    dynamic: list[set[str]] = [set() for _ in graph.vertices]
    for _, dst, kind in graph.edges:
        dynamic[dst].add(kind.consumer_slot)

    nodes: list[PlanNode] = []
    dynamic_scopes = 0
    dynamic_paths = 0
    for i, spoc in enumerate(graph.vertices):
        subject_static = "subject" not in dynamic[i]
        object_static = "object" not in dynamic[i]
        for slot, static in (("subject", subject_static),
                             ("object", object_static)):
            term = spoc.slot(slot)
            if not static:
                dynamic_scopes += 1
            elif term is not None:
                nodes.append(_term_scope_node(term, epoch))
        if spoc.predicate == "be":
            continue
        if not (subject_static and object_static):
            dynamic_paths += 1
            continue
        nbr_key = _neighborhood_key(spoc, epoch)
        path_key = (
            "path",
            epoch,
            _static_slot_key(spoc.subject),
            _static_slot_key(spoc.object),
        )
        nodes.append(PlanNode(kind="path", key=path_key, shareable=False,
                              derives_from=nbr_key))
        if nbr_key is not None:
            nodes.append(PlanNode(kind="neighborhood", key=nbr_key))
    return QueryPlan(
        index=index,
        vertices=len(graph.vertices),
        score=score,
        nodes=nodes,
        dynamic_scopes=dynamic_scopes,
        dynamic_paths=dynamic_paths,
    )


def _neighborhood_key(spoc: SPOC, epoch: int) -> tuple[Any, ...] | None:
    """The derivable-neighborhood key of a static non-copular clause.

    Mirrors the executor's branch choice in ``_relation_pairs``: a
    present subject scans subject out-edges, an absent subject scans
    object in-edges.  Possessive endpoints are excluded — their scope
    sets depend on embedding scoring the share phase does not replay.
    """
    if spoc.subject is not None:
        if spoc.subject.owner is not None:
            return None
        return ("nbr", epoch, "out", spoc.subject.head.lower())
    if spoc.object is not None:
        if spoc.object.owner is not None:
            return None
        return ("nbr", epoch, "in", spoc.object.head.lower())
    return None


def build_plans(graphs: list[QueryGraph], epoch: int) -> list[QueryPlan]:
    """Canonicalize a batch, scoring each plan by §V-B frequency ratio."""
    schedule = schedule_queries(graphs)
    return [
        canonicalize(graph, epoch, index=i, score=schedule.graph_scores[i])
        for i, graph in enumerate(graphs)
    ]


def build_forest(plans: list[QueryPlan], epoch: int,
                 threshold: int = 2) -> PlanForest:
    """Detect structurally shared sub-plans across the batch.

    A shareable node whose canonical key is used at least ``threshold``
    times (across all plans, repeated uses within one plan included —
    each use is a store request) becomes a :class:`SharedNode` the
    share phase executes exactly once.
    """
    if threshold < 2:
        raise ValueError(f"share_threshold must be >= 2, got {threshold}")
    uses: dict[tuple[Any, ...], int] = {}
    consumers: dict[tuple[Any, ...], list[int]] = {}
    nodes: dict[tuple[Any, ...], PlanNode] = {}
    for plan in plans:
        for node in plan.nodes:
            if not node.shareable:
                continue
            uses[node.key] = uses.get(node.key, 0) + 1
            nodes[node.key] = node
            plan_consumers = consumers.setdefault(node.key, [])
            if not plan_consumers or plan_consumers[-1] != plan.index:
                plan_consumers.append(plan.index)
    shared = {
        key: SharedNode(node=nodes[key], uses=count,
                        consumers=tuple(consumers[key]))
        for key, count in uses.items() if count >= threshold
    }
    return PlanForest(epoch=epoch, plans=plans, shared=shared)


def plan_order(plans: list[QueryPlan], forest: PlanForest,
               reorder: bool = True) -> list[int]:
    """Choose the batch execution order (positions into ``plans``).

    Plans are clustered by shared-key affinity (union-find over the
    forest's shared canonical keys) and clusters run back to back in
    descending shared-use weight, so every consumer of a shared scope
    or neighborhood executes while those entries — and the exact path
    entries derived from them — are still hot in the bounded pool.
    Within a cluster (and for the weight-0 tail) the §V-B
    frequency-ratio order is kept, with the input index as the final
    deterministic tiebreak.
    """
    member_key = {
        plan.index: (-plan.score, -plan.vertices, plan.index)
        for plan in plans
    }
    if not reorder:
        return sorted((p.index for p in plans), key=lambda i: member_key[i])

    parent = {plan.index: plan.index for plan in plans}

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    for shared in forest.shared.values():
        first = shared.consumers[0]
        for other in shared.consumers[1:]:
            union(first, other)

    weight: dict[int, int] = {}
    for shared in forest.shared.values():
        root = find(shared.consumers[0])
        weight[root] = weight.get(root, 0) + shared.uses

    clusters: dict[int, list[int]] = {}
    for plan in plans:
        clusters.setdefault(find(plan.index), []).append(plan.index)
    ranked = sorted(
        clusters.items(),
        key=lambda item: (-weight.get(item[0], 0),
                          min(member_key[i] for i in item[1])),
    )
    order: list[int] = []
    for _, members in ranked:
        order.extend(sorted(members, key=lambda i: member_key[i]))
    return order


class PlanOverlay:
    """Per-batch fan-out store for shared sub-plan results.

    Written only by the share phase (single-threaded, before the batch
    starts) and frozen before any worker runs, so executors read it
    without locks; the thread-pool fork provides the happens-before
    edge.  Every key carries the plan-time graph epoch at index 1, so
    after a mid-batch epoch bump the executor's freshly-built keys can
    never match an overlay entry — stale shared results are
    unreachable, not merely retired.
    """

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch
        self._scope: dict[tuple[Any, ...],
                          tuple[list[int], int, int]] = {}
        self._nbr: dict[tuple[Any, ...],
                        tuple[tuple[int, ...], list[RelationPair]]] = {}
        self._frozen = False

    def _check_writable(self) -> None:
        if self._frozen:
            raise RuntimeError("PlanOverlay is frozen")

    def put_scope(self, key: tuple[Any, ...],
                  value: tuple[list[int], int, int]) -> None:
        """Record one shared scope result (share phase only)."""
        self._check_writable()
        self._scope[key] = value

    def put_neighborhood(
        self, key: tuple[Any, ...], source_ids: tuple[int, ...],
        pairs: list[RelationPair],
    ) -> None:
        """Record one shared neighborhood with its source vertex ids."""
        self._check_writable()
        self._nbr[key] = (source_ids, pairs)

    def freeze(self) -> None:
        """Make the overlay read-only (called before the batch runs)."""
        self._frozen = True

    def scope(
        self, key: tuple[Any, ...]
    ) -> tuple[list[int], int, int] | None:
        """The shared scope entry for ``key``, if any."""
        return self._scope.get(key)

    def neighborhood(
        self, key: tuple[Any, ...]
    ) -> tuple[tuple[int, ...], list[RelationPair]] | None:
        """The shared ``(source_ids, pairs)`` neighborhood, if any."""
        return self._nbr.get(key)

    @property
    def size(self) -> int:
        """Entries held (scope + neighborhood)."""
        return len(self._scope) + len(self._nbr)


@dataclass(frozen=True)
class ShareReport:
    """What the share phase executed and charged."""

    shared_scopes: int
    shared_neighborhoods: int
    fanout_uses: int
    charged_seconds: float


def execute_shared(
    forest: PlanForest,
    executor: QueryGraphExecutor,
    overlay: PlanOverlay,
    stats: ExecutorStats | None = None,
) -> ShareReport:
    """Execute every shared node exactly once, fanning results out.

    Runs on the main thread before the batch starts, in sorted
    canonical-key order (deterministic), charging the executor's clock
    with the same costs an uncached request would have paid.  Scope
    results are also written through to the key-centric scope store, so
    consumer queries observe ordinary warm hits; neighborhoods live
    only in the overlay (they are supersets of path-store entries, not
    path entries themselves) and the executor derives exact path
    results from them inside its miss closures.
    """
    start = executor.clock.snapshot() if executor.clock is not None \
        else None
    scope_values: dict[str, tuple[list[int], int, int]] = {}

    def scope_for(label: str) -> tuple[list[int], int, int]:
        if label not in scope_values:
            key, value = executor.plan_scope_entry(label)
            scope_values[label] = value
            executor.cache.put_scope(key, value)
        return scope_values[label]

    shared_scopes = 0
    for shared in forest.shared_by_kind("scope"):
        label = str(shared.node.key[2])
        overlay.put_scope(shared.node.key, scope_for(label))
        shared_scopes += 1
        if stats is not None:
            stats.record_plan_shared("scope")

    shared_neighborhoods = 0
    for shared in forest.shared_by_kind("neighborhood"):
        direction = str(shared.node.key[2])
        label = str(shared.node.key[3])
        ids, _, _ = scope_for(label)
        vertices = [executor.graph.vertex(i) for i in ids]
        pairs = executor.plan_neighborhood(direction, vertices)
        overlay.put_neighborhood(shared.node.key, tuple(ids), pairs)
        shared_neighborhoods += 1
        if stats is not None:
            stats.record_plan_shared("neighborhood")

    charged = start.interval if start is not None else 0.0
    return ShareReport(
        shared_scopes=shared_scopes,
        shared_neighborhoods=shared_neighborhoods,
        fanout_uses=forest.fanout_uses(),
        charged_seconds=charged,
    )


@dataclass
class PlannedBatch:
    """Everything ``answer_many`` decided for one planned batch."""

    forest: PlanForest
    positions: list[int]    # execution order, as positions into plans
    order: list[int]        # submission order, as input indices
    share: ShareReport


# ----------------------------------------------------------------------
# plan-aware makespan prediction
# ----------------------------------------------------------------------
def _series_value(metrics: dict[str, Any], family: str,
                  **labels: str) -> float:
    """Read one series value out of a baseline's metrics snapshot."""
    payload = metrics.get(family)
    if not isinstance(payload, dict):
        return 0.0
    total = 0.0
    for row in payload.get("series", []):
        if not labels or row.get("labels") == labels:
            total += float(row.get("value", 0.0))
    return total


@dataclass(frozen=True)
class CalibratedCosts:
    """Per-operation unit costs calibrated from a recorded baseline.

    The means are maximum-likelihood under the cost model: e.g.
    ``mean_edge_mass`` is the baseline's total ``edge_scan`` charges
    divided by the number of uncached (non-derived) path computations
    that run, so ``path_probe + edge_scan * mean_edge_mass`` prices an
    average cold path request.
    """

    scope_hit: float
    scope_miss: float
    path_hit: float
    path_miss: float
    path_fill: float
    embed_per_query: float
    scope_hit_rate: float
    path_hit_rate: float
    mean_edge_mass: float

    @classmethod
    def from_baseline(cls, baseline: dict[str, Any],
                      costs: dict[str, float]) -> CalibratedCosts:
        """Calibrate from a ``BENCH_baseline.json`` payload (schema v2)."""
        counts = baseline.get("clock_counts", {})
        metrics = baseline.get("metrics", {})
        requests = "svqa_cache_requests_total"
        scope_hits = _series_value(metrics, requests,
                                   store="scope", outcome="hit")
        scope_misses = _series_value(metrics, requests,
                                     store="scope", outcome="miss")
        path_hits = _series_value(metrics, requests,
                                  store="path", outcome="hit")
        path_misses = _series_value(metrics, requests,
                                    store="path", outcome="miss")
        fills = "svqa_plan_overlay_fills_total"
        path_fills = _series_value(metrics, fills, store="path")
        shared = "svqa_plan_shared_nodes_total"
        shared_scopes = _series_value(metrics, shared, kind="scope")
        shared_nbrs = _series_value(metrics, shared, kind="neighborhood")
        queries = _series_value(metrics, "svqa_queries_total") or 1.0

        scope_computes = scope_misses + shared_scopes
        mean_examined = (counts.get("vertex_match", 0) / scope_computes
                         if scope_computes else 0.0)
        cold_paths = (path_misses - path_fills) + shared_nbrs
        mean_edge_mass = (counts.get("edge_scan", 0) / cold_paths
                          if cold_paths else 0.0)
        pair_filters = counts.get("pair_filter", 0)
        mean_pair_mass = (pair_filters / path_fills
                          if path_fills else mean_edge_mass)
        embed_per_query = (counts.get("embed_score", 0)
                           * costs["embed_score"] / queries)
        return cls(
            scope_hit=costs["cache_hit"],
            scope_miss=costs["scope_scan"]
            + costs["vertex_match"] * mean_examined,
            path_hit=costs["cache_hit"],
            path_miss=costs["path_probe"]
            + costs["edge_scan"] * mean_edge_mass,
            path_fill=costs["path_probe"]
            + costs["pair_filter"] * mean_pair_mass,
            embed_per_query=embed_per_query,
            scope_hit_rate=(scope_hits / (scope_hits + scope_misses)
                            if scope_hits + scope_misses else 0.0),
            path_hit_rate=(path_hits / (path_hits + path_misses)
                           if path_hits + path_misses else 0.0),
            mean_edge_mass=mean_edge_mass,
        )


@dataclass(frozen=True)
class MakespanPrediction:
    """The predictor's output for one planned batch."""

    per_query: tuple[float, ...]   # predicted cost, in execution order
    makespan: float                # predicted busiest-lane seconds
    share_cost: float              # predicted share-phase seconds
    total: float                   # predicted total batch work


def _pack(latencies: list[float], workers: int) -> float:
    """Greedy longest-first bin packing (the §V parallel model)."""
    lanes = [0.0] * max(workers, 1)
    for latency in sorted(latencies, reverse=True):
        lanes[lanes.index(min(lanes))] += latency
    return max(lanes) if lanes else 0.0


def predict_makespan(
    forest: PlanForest,
    positions: list[int],
    workers: int,
    calibration: CalibratedCosts,
) -> MakespanPrediction:
    """Predict the batch makespan from the plan forest.

    Walks the plans in execution order, simulating the key-centric
    store: the first touch of an unshared static key pays the
    calibrated miss cost, later touches pay the hit cost; keys the
    share phase precomputed pay a warm hit (scope) or an overlay
    derivation (path) on first touch; dynamic requests are priced by
    the calibrated hit rates.  Per-query costs are then packed onto
    ``workers`` lanes greedily (the measured batch submits in the same
    order, so the busiest predicted lane approximates the measured
    makespan).
    """
    plans = {plan.index: plan for plan in forest.plans}
    seen: set[tuple[Any, ...]] = set()
    per_query: list[float] = []
    for position in positions:
        plan = plans[position]
        cost = calibration.embed_per_query
        for node in plan.nodes:
            if node.kind == "neighborhood":
                continue
            if node.kind == "scope":
                if node.key in seen or node.key in forest.shared:
                    cost += calibration.scope_hit
                else:
                    cost += calibration.scope_miss
                seen.add(node.key)
                continue
            # path node
            if node.key in seen:
                cost += calibration.path_hit
            elif node.derives_from is not None \
                    and node.derives_from in forest.shared:
                cost += calibration.path_fill
            else:
                cost += calibration.path_miss
            seen.add(node.key)
        cost += plan.dynamic_scopes * (
            calibration.scope_hit_rate * calibration.scope_hit
            + (1 - calibration.scope_hit_rate) * calibration.scope_miss
        )
        cost += plan.dynamic_paths * (
            calibration.path_hit_rate * calibration.path_hit
            + (1 - calibration.path_hit_rate) * calibration.path_miss
        )
        per_query.append(cost)

    share_cost = (
        len(forest.shared_by_kind("scope")) * calibration.scope_miss
        + len(forest.shared_by_kind("neighborhood"))
        * calibration.path_miss
    )
    return MakespanPrediction(
        per_query=tuple(per_query),
        makespan=_pack(per_query, workers),
        share_cost=share_cost,
        total=sum(per_query),
    )


def render_forest(forest: PlanForest, limit: int = 12) -> str:
    """A deterministic text rendering of the shared-sub-plan forest."""
    nodes = forest.node_counts()
    shared = forest.shared_counts()
    lines = [
        f"plan forest: {len(forest.plans)} queries, epoch {forest.epoch}",
        f"  canonical nodes: {nodes['scope']} scope, "
        f"{nodes['path']} path, {nodes['neighborhood']} neighborhood",
        f"  shared nodes: {shared['scope']} scope, "
        f"{shared['neighborhood']} neighborhood "
        f"({forest.fanout_uses()} fan-out uses)",
    ]
    ranked = sorted(
        forest.shared.values(),
        key=lambda s: (-s.uses, s.node.key),
    )
    for shared_node in ranked[:limit]:
        key = shared_node.node.key
        if shared_node.node.kind == "neighborhood":
            what = f"neighborhood {key[2]} '{key[3]}'"
        else:
            what = f"scope '{key[2]}'"
        lines.append(
            f"    {what}: uses={shared_node.uses} "
            f"consumers={len(shared_node.consumers)}"
        )
    if len(ranked) > limit:
        lines.append(f"    ... and {len(ranked) - limit} more shared nodes")
    return "\n".join(lines)
